//! Derive macros for the offline `serde` stand-in.
//!
//! Hand-rolled over `proc_macro::TokenTree` (no `syn`/`quote` in the
//! offline build): supports non-generic structs (named, tuple, unit) and
//! externally-tagged enums (unit, tuple, struct variants), plus the
//! `#[serde(skip)]` helper attribute. This covers every derived type in
//! the workspace; unsupported shapes fail loudly at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Body {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum.
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    /// Skips leading attributes; returns true if any was `#[serde(..)]`
    /// containing the ident `skip`.
    fn skip_attrs(&mut self) -> bool {
        let mut skip = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.bump(); // '#'
            if let Some(TokenTree::Group(g)) = self.bump() {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let is_serde = matches!(
                    inner.first(),
                    Some(TokenTree::Ident(id)) if id.to_string() == "serde"
                );
                if is_serde {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        for t in args.stream() {
                            if matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip") {
                                skip = true;
                            }
                        }
                    }
                }
            }
        }
        skip
    }

    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.bump();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.bump();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.bump() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected {what}, got {other:?}"),
        }
    }

    /// Consumes tokens up to (and including) the next `,` at angle-bracket
    /// depth zero. Returns false if the cursor hit the end instead.
    fn skip_until_comma(&mut self) -> bool {
        let mut depth: i32 = 0;
        while let Some(t) = self.bump() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn parse_item(input: TokenStream) -> (String, Body) {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive shim: generic type `{name}` is not supported");
    }
    let body = match kw.as_str() {
        "struct" => match c.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(parse_tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match c.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}`"),
    };
    (name, body)
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    while !c.at_end() {
        let skip = c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let name = c.expect_ident("field name");
        match c.bump() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        c.skip_until_comma();
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_arity(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut arity = 0;
    while !c.at_end() {
        let skip = c.skip_attrs();
        if skip {
            panic!("serde derive shim: #[serde(skip)] on tuple fields is not supported");
        }
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        arity += 1;
        if !c.skip_until_comma() {
            break;
        }
    }
    arity
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream());
                c.bump();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.bump();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        c.skip_until_comma();
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::Struct(fields) => {
            let mut s = String::from("let mut o: Vec<(String, serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "o.push((String::from(\"{n}\"), serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            s.push_str("serde::Value::Object(o)");
            s
        }
        Body::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Unit => "serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::Str(String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(x0) => serde::Value::Object(vec![(String::from(\"{v}\"), serde::Serialize::to_value(x0))]),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(x{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({b}) => serde::Value::Object(vec![(String::from(\"{v}\"), serde::Value::Array(vec![{it}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            it = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "o.push((String::from(\"{n}\"), serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {b} }} => {{ let mut o: Vec<(String, serde::Value)> = Vec::new();\n{p}serde::Value::Object(vec![(String::from(\"{v}\"), serde::Value::Object(o))]) }},\n",
                            v = v.name,
                            b = binds.join(", "),
                            p = pushes
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic, clippy::nursery)]\nimpl serde::Serialize for {name} {{\nfn to_value(&self) -> serde::Value {{\n{body_code}\n}}\n}}\n"
    )
}

fn gen_named_build(type_path: &str, fields: &[Field], obj_var: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{n}: ::core::default::Default::default(),\n",
                n = f.name
            ));
        } else {
            inits.push_str(&format!(
                "{n}: serde::__field({obj_var}, \"{n}\")?,\n",
                n = f.name
            ));
        }
    }
    format!("{type_path} {{\n{inits}}}")
}

fn gen_deserialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::Struct(fields) => {
            format!(
                "let o = serde::__object(v)?;\nOk({})",
                gen_named_build(name, fields, "o")
            )
        }
        Body::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::__index(a, {i})?"))
                .collect();
            format!(
                "let a = serde::__array(v)?;\nOk({name}({}))",
                items.join(", ")
            )
        }
        Body::Unit => format!("match v {{ serde::Value::Null => Ok({name}), other => Err(serde::Error::msg(format!(\"expected null for unit struct, got {{other:?}}\"))) }}"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}(serde::Deserialize::from_value(inner)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::__index(a, {i})?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ let a = serde::__array(inner)?; Ok({name}::{v}({it})) }},\n",
                            v = v.name,
                            it = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let build =
                            gen_named_build(&format!("{name}::{}", v.name), fields, "o");
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ let o = serde::__object(inner)?; Ok({build}) }},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(serde::Error::msg(format!(\"unknown variant `{{other}}`\"))),\n}},\n\
                 serde::Value::Object(o) if o.len() == 1 => {{\n\
                 let (tag, inner) = &o[0];\nlet _ = inner;\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => Err(serde::Error::msg(format!(\"unknown variant `{{other}}`\"))),\n}}\n}},\n\
                 other => Err(serde::Error::msg(format!(\"bad enum encoding {{other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic, clippy::nursery)]\nimpl serde::Deserialize for {name} {{\nfn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n{body_code}\n}}\n}}\n"
    )
}

/// Derives the offline stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    gen_serialize(&name, &body)
        .parse()
        .expect("serde derive shim: generated invalid Serialize impl")
}

/// Derives the offline stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    gen_deserialize(&name, &body)
        .parse()
        .expect("serde derive shim: generated invalid Deserialize impl")
}
