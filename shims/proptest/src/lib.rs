//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators, macros, and runner this workspace's
//! property tests use: integer/float range strategies, tuples, a small
//! character-class regex string strategy, `prop::collection::vec`,
//! `prop::option::of`, `any::<T>()`, `prop_map`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a fixed
//! deterministic RNG; failing inputs are reported but not shrunk.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic RNG (SplitMix64)
// ---------------------------------------------------------------------

/// Deterministic generator feeding all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Core strategy trait
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Integer / float ranges
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span)) as $t
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64 + 1;
                lo.wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident),*) => {
        impl<$($s: Strategy),*> Strategy for ($($s,)*) {
            type Value = ($($s::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)*) = self;
                ($($s.generate(rng),)*)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);
tuple_strategy!(A, B, C, D, E, G, H);
tuple_strategy!(A, B, C, D, E, G, H, I);

// ---------------------------------------------------------------------
// `any::<T>()`
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------
// String strategies from character-class regexes
// ---------------------------------------------------------------------

enum Atom {
    Class(Vec<char>),
    Lit(char),
}

struct RegexAtom {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_simple_regex(pattern: &str) -> Vec<RegexAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in `{pattern}`"
                );
                i += 1; // ']'
                Atom::Class(set)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition bound"),
                    hi.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition bound");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(RegexAtom { atom, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_simple_regex(self);
        let mut out = String::new();
        for ra in &atoms {
            let count = ra.min + rng.below((ra.max - ra.min + 1) as u64) as usize;
            for _ in 0..count {
                match &ra.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "empty character class");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collection / option strategies
// ---------------------------------------------------------------------

/// `prop::collection` — sized containers of generated elements.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of values from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option` — optional values.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`; `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Optional values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// `proptest::test_runner` — configuration and execution.
pub mod test_runner {
    use super::{Strategy, TestRng};

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed or rejected test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The input did not satisfy a `prop_assume!` precondition.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives a strategy through the configured number of cases.
    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed deterministic seed.
        pub fn new(config: Config) -> Self {
            TestRunner {
                config,
                rng: TestRng::new(0x243f_6a88_85a3_08d3),
            }
        }

        /// Runs `f` against `config.cases` generated inputs, panicking on
        /// the first failure (inputs are reported, not shrunk).
        pub fn run<S, F>(&mut self, strategy: S, mut f: F)
        where
            S: Strategy,
            S::Value: std::fmt::Debug,
            F: FnMut(S::Value) -> TestCaseResult,
        {
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let display = format!("{value:?}");
                match f(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= 65_536,
                            "proptest: too many inputs rejected by prop_assume!"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {msg}\n  input: {display}")
                    }
                }
            }
        }
    }
}

/// Alias matching `proptest::prelude::ProptestConfig`.
pub use test_runner::Config as ProptestConfig;

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(($($strat,)*), |__proptest_input| {
                let ($($pat,)*) = __proptest_input;
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips inputs that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_strategy_shapes() {
        let mut rng = super::TestRng::new(1);
        for _ in 0..64 {
            let s = Strategy::generate(&"[A-Z][A-Z0-9-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = super::TestRng::new(2);
        for _ in 0..256 {
            let v = (0u8..=32).generate(&mut rng);
            assert!(v <= 32);
            let w = (1usize..100).generate(&mut rng);
            assert!((1..100).contains(&w));
            let f = (0.0f64..1e9).generate(&mut rng);
            assert!((0.0..1e9).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(v in prop::collection::vec((any::<u32>(), 0u8..4), 1..8), flag in any::<bool>()) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 8);
            prop_assert_eq!(flag, flag);
            for (_, small) in &v {
                prop_assert!(*small < 4, "small was {}", small);
            }
        }
    }
}
