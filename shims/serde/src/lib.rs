//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework under the same crate name:
//! a JSON-shaped [`Value`] model, [`Serialize`]/[`Deserialize`] traits
//! over it, and derive macros (re-exported from `serde_derive`) that
//! understand plain structs, tuple structs and externally-tagged enums,
//! plus the `#[serde(skip)]` helper attribute.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    Uint(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for non-objects and misses.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds an error from anything printable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

/// Converts a value into the [`Value`] data model.
pub trait Serialize {
    /// The [`Value`] representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Derive-macro support (stable names the generated code calls into).
// ---------------------------------------------------------------------

#[doc(hidden)]
pub fn __object(v: &Value) -> Result<&[(String, Value)], Error> {
    match v {
        Value::Object(o) => Ok(o),
        other => Err(Error::msg(format!("expected object, got {other:?}"))),
    }
}

#[doc(hidden)]
pub fn __array(v: &Value) -> Result<&[Value], Error> {
    match v {
        Value::Array(a) => Ok(a),
        other => Err(Error::msg(format!("expected array, got {other:?}"))),
    }
}

#[doc(hidden)]
pub fn __field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
        }
    }
}

#[doc(hidden)]
pub fn __index<T: Deserialize>(arr: &[Value], idx: usize) -> Result<T, Error> {
    match arr.get(idx) {
        Some(v) => T::from_value(v),
        None => Err(Error::msg(format!("missing tuple element {idx}"))),
    }
}

/// Map keys serialize through [`Value`]; JSON object keys are strings, so
/// numeric keys are rendered in decimal (as `serde_json` does).
#[doc(hidden)]
pub fn __key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Uint(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key {other:?}"),
    }
}

#[doc(hidden)]
pub fn __key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Uint(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(n)) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("cannot parse map key `{s}`")))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Uint(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Uint(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::msg(format!("expected unsigned, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
uint_impl!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Uint(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).map(|n| n as usize)
    }
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::Uint(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::Uint(n) => i64::try_from(*n).map_err(|_| Error::msg("overflow"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::msg(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
int_impl!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).map(|n| n as isize)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Uint(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected char, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::msg(format!("expected null, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        __array(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = __array(v)?;
        if arr.len() != N {
            return Err(Error::msg(format!("expected {N}-element array")));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = __array(v)?;
                Ok(($(__index::<$t>(arr, $idx)?,)+))
            }
        }
    )+};
}
tuple_impl!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Rc::new)
    }
}

macro_rules! map_impl {
    ($name:ident, $($bound:tt)+) => {
        impl<K: Serialize + $($bound)+, V: Serialize> Serialize for $name<K, V> {
            fn to_value(&self) -> Value {
                let mut entries: Vec<(String, Value)> = self
                    .iter()
                    .map(|(k, v)| (__key_to_string(&k.to_value()), v.to_value()))
                    .collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Object(entries)
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $name<K, V> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                __object(v)?
                    .iter()
                    .map(|(k, v)| Ok((__key_from_string::<K>(k)?, V::from_value(v)?)))
                    .collect()
            }
        }
    };
}
map_impl!(HashMap, Eq + Hash);
map_impl!(BTreeMap, Ord);

macro_rules! set_impl {
    ($name:ident, $($bound:tt)+) => {
        impl<T: Serialize + $($bound)+> Serialize for $name<T> {
            fn to_value(&self) -> Value {
                Value::Array(self.iter().map(Serialize::to_value).collect())
            }
        }
        impl<T: Deserialize + $($bound)+> Deserialize for $name<T> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                __array(v)?.iter().map(T::from_value).collect()
            }
        }
    };
}
set_impl!(HashSet, Eq + Hash);
set_impl!(BTreeSet, Ord);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let round: Vec<(u32, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);

        let mut m = HashMap::new();
        m.insert(3u32, vec![1u8, 2]);
        let round: HashMap<u32, Vec<u8>> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(round, m);
    }

    #[test]
    fn option_null_round_trip() {
        let some: Option<u8> = Some(5);
        let none: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&some.to_value()), Ok(Some(5)));
        assert_eq!(Option::<u8>::from_value(&none.to_value()), Ok(None));
    }

    #[test]
    fn arrays_round_trip() {
        let mac = [1u8, 2, 3, 4, 5, 6];
        assert_eq!(<[u8; 6]>::from_value(&mac.to_value()), Ok(mac));
    }
}
