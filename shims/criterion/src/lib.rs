//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`/`iter_batched`, and `BatchSize` — with a simple
//! wall-clock measurement loop (calibrated batch size, median of N
//! samples). No statistical analysis, plots, or baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much setup cost `iter_batched` amortizes per batch. The shim runs
/// one routine call per batch regardless, so this is a marker only.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver: owns configuration and prints results.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Passed to benchmark closures; measures the routine.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, amortizing over a calibrated batch size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch costs ≥ ~2 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed.as_secs_f64() * 1e9 / batch as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group, mirroring criterion's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn runs_benchmarks() {
        let mut c = Criterion::default().sample_size(3);
        trivial(&mut c);
    }
}
