//! Offline stand-in for `serde_json`: a small JSON writer and recursive
//! descent parser over the `serde` shim's [`Value`] model.

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Uint(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep a float marker so the value parses back as a float.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Decode a surrogate pair if present.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.eat_keyword("\\u") {
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::new("bad \\u escape"))?);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid utf-8 in string"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::Uint)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(from_str::<u32>(&to_string(&7u32).unwrap()).unwrap(), 7);
        assert_eq!(from_str::<i64>("-12").unwrap(), -12);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb \\u0041\"").unwrap(), "a\nb A");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![1u64, 2, 3];
        assert_eq!(from_str::<Vec<u64>>(&to_string(&v).unwrap()).unwrap(), v);
        let opt: Option<String> = Some("hi \"quoted\"".into());
        let s = to_string(&opt).unwrap();
        assert_eq!(from_str::<Option<String>>(&s).unwrap(), opt);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, String)>>(&s).unwrap(), v);
    }

    #[test]
    fn float_marker_survives() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 3.0);
    }
}
