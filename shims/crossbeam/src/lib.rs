//! Offline stand-in for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Only multi-producer/single-consumer channels are provided, which is the
//! shape the parallel executor uses (each worker owns its inbox receiver;
//! every other worker holds a cloned sender).

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a channel; cheap to clone.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking only for bounded channels at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Bounded sending half (rendezvous when capacity is 0).
    pub struct SyncSender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            SyncSender(self.0.clone())
        }
    }

    impl<T> SyncSender<T> {
        /// Sends a message, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over messages until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }

        /// Drains currently-queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// Creates a channel buffering at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (SyncSender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn unbounded_delivers_in_order() {
            let (tx, rx) = super::unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn senders_clone_across_threads() {
            let (tx, rx) = super::unbounded::<usize>();
            std::thread::scope(|s| {
                for t in 0..4 {
                    let tx = tx.clone();
                    s.spawn(move || tx.send(t).unwrap());
                }
                drop(tx);
                let mut got: Vec<usize> = rx.iter().collect();
                got.sort_unstable();
                assert_eq!(got, vec![0, 1, 2, 3]);
            });
        }
    }
}
