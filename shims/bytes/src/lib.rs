//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable, sliceable view over an `Arc<[u8]>`;
//! [`BytesMut`] is a growable buffer that freezes into [`Bytes`]. The
//! [`Buf`]/[`BufMut`] traits cover the big-endian cursor operations the
//! packet codecs use. Only the API surface exercised by this workspace is
//! provided.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the readable bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.as_slice()
                .iter()
                .map(|&b| serde::Value::Uint(u64::from(b)))
                .collect(),
        )
    }
}

impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let bytes: Vec<u8> = serde::Deserialize::from_value(v)?;
        Ok(Bytes::from(bytes))
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the written bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read-side cursor operations (big-endian), as in the real `bytes` crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Discards the next `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Write-side operations (big-endian), as in the real `bytes` crate.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_cursor() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.len(), 10);
        assert_eq!(b.get_u8(), 0xab);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xdead_beef);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(b.is_empty());
    }

    #[test]
    fn slices_share_backing() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let t = b.slice(..2);
        assert_eq!(&t[..], &[1, 2]);
    }

    #[test]
    fn equality_and_clone() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.clone(), a);
        assert_eq!(a, b"hello"[..]);
    }
}
