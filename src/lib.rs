//! Facade crate: re-exports the CrystalNet reproduction workspace.

/// The operator walkthrough ([`OPERATIONS.md`](https://github.com/crystalnet-rs/crystalnet)),
/// included here so every snippet in it compiles and runs under
/// `cargo test --doc`.
#[doc = include_str!("../OPERATIONS.md")]
pub mod operations {}

/// The project [`README.md`](https://github.com/crystalnet-rs/crystalnet),
/// included here so its runnable snippets (the illustrative ones are
/// marked `ignore`) compile and run under `cargo test --doc`.
#[doc = include_str!("../README.md")]
pub mod readme {}

pub use crystalnet as core;
pub use crystalnet::prelude;
pub use crystalnet_boundary as boundary;
pub use crystalnet_config as config;
pub use crystalnet_dataplane as dataplane;
pub use crystalnet_net as net;
pub use crystalnet_routing as routing;
pub use crystalnet_sim as sim;
pub use crystalnet_telemetry as telemetry;
pub use crystalnet_vnet as vnet;
