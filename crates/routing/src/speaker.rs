//! Static speaker devices (§5.1).
//!
//! Speakers replace the un-emulatable world beyond the boundary. They do
//! exactly two things: keep links and routing sessions alive with boundary
//! devices, and inject a *fixed*, pre-recorded set of announcements. They
//! deliberately never react to anything they hear — the safety theory of
//! §5 exists precisely so this non-reactivity cannot be observed from
//! inside a safe boundary. (The production implementation was ExaBGP; it
//! likewise "does not reflect announcements to other peers", §6.2.)

use crate::attrs::PathAttrs;
use crate::msg::{BgpMsg, Frame};
use crate::os::{DeviceOs, MgmtCommand, MgmtResponse, OsActions, OsEvent};
use crate::provenance::{OriginKind, Provenance};
use crystalnet_dataplane::Fib;
use crystalnet_net::{Asn, Ipv4Addr, Ipv4Prefix};
use crystalnet_sim::{EventId, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// The announcement program for one speaker session.
#[derive(Debug, Clone, Default)]
pub struct SpeakerScript {
    /// Routes to announce once the session is up.
    pub routes: Vec<(Ipv4Prefix, Arc<PathAttrs>)>,
}

/// A static BGP speaker standing in for one external device.
#[derive(Clone)]
pub struct SpeakerOs {
    hostname: String,
    asn: Asn,
    router_id: Ipv4Addr,
    /// Per-interface scripts (one boundary device per interface).
    scripts: HashMap<u32, SpeakerScript>,
    /// Sessions currently up, keyed by interface, holding the peer's
    /// session token.
    established: HashMap<u32, Option<u64>>,
    /// Everything received from boundary devices, dumped for analysis
    /// ("dump the received announcements for potential analysis", §6.2).
    received: Vec<(u32, Ipv4Prefix, Option<Arc<PathAttrs>>)>,
    fib: Fib,
    down: bool,
    /// Incarnation counter mixed into the session token. A speaker agent
    /// restarted by crash recovery must present a *fresh* token, otherwise
    /// boundary peers treat its Open as the same incarnation completing
    /// the old exchange and never flush/resync the session.
    epoch: u64,
    /// Stable id of the event being handled; stamps the origin of every
    /// announced route's causal chain (Lemma 5.1 audits the kind).
    cur_event: EventId,
}

impl SpeakerOs {
    /// A speaker with `asn`/`router_id` and per-interface scripts.
    #[must_use]
    pub fn new(hostname: String, asn: Asn, router_id: Ipv4Addr) -> Self {
        SpeakerOs {
            hostname,
            asn,
            router_id,
            scripts: HashMap::new(),
            established: HashMap::new(),
            received: Vec::new(),
            fib: Fib::default(),
            down: false,
            epoch: 0,
            cur_event: EventId::ZERO,
        }
    }

    /// Sets the announcement script for the session on `iface`.
    pub fn set_script(&mut self, iface: u32, script: SpeakerScript) {
        self.scripts.insert(iface, script);
    }

    /// Marks this instance as the `epoch`-th incarnation of the agent.
    ///
    /// Crash recovery builds a fresh [`SpeakerOs`] and bumps the epoch;
    /// the changed session token makes every boundary peer flush the old
    /// session and re-establish, after which the script replays — the
    /// restart-resync path.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The incarnation epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The session token this incarnation presents in its Opens.
    #[must_use]
    pub fn session_token(&self) -> u64 {
        (u64::from(self.router_id.0) << 20) | (self.epoch & 0xfffff)
    }

    /// The speaker's AS.
    #[must_use]
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// Everything received (announcements as `Some`, withdrawals as
    /// `None`), in arrival order.
    #[must_use]
    pub fn received(&self) -> &[(u32, Ipv4Prefix, Option<Arc<PathAttrs>>)] {
        &self.received
    }

    /// Whether the session on `iface` is established.
    #[must_use]
    pub fn session_up(&self, iface: u32) -> bool {
        self.established.get(&iface).copied().flatten().is_some()
    }

    fn announce(&self, iface: u32, actions: &mut OsActions) {
        if let Some(script) = self.scripts.get(&iface) {
            if !script.routes.is_empty() {
                actions.route_ops += script.routes.len();
                // Every scripted route starts a Speaker-kind causal chain
                // here: one interner hit per event, free clones after.
                let prov =
                    Provenance::originated(OriginKind::Speaker, self.router_id, self.cur_event);
                actions.out.push((
                    iface,
                    Frame::Bgp(BgpMsg::Update {
                        announced: script
                            .routes
                            .iter()
                            .map(|(p, a)| (*p, a.clone(), prov.clone()))
                            .collect(),
                        withdrawn: vec![],
                    }),
                ));
            }
        }
    }
}

impl DeviceOs for SpeakerOs {
    fn clone_boxed(&self) -> Box<dyn DeviceOs> {
        Box::new(self.clone())
    }

    fn handle(&mut self, _now: SimTime, event: OsEvent) -> OsActions {
        if self.down {
            return OsActions::default();
        }
        let mut actions = OsActions::default();
        match event {
            OsEvent::Boot | OsEvent::LinkUp(_) => {
                let ifaces: Vec<u32> = self.scripts.keys().copied().collect();
                let targets = match event {
                    OsEvent::LinkUp(i) => vec![i],
                    _ => ifaces,
                };
                for iface in targets {
                    actions.out.push((
                        iface,
                        Frame::Bgp(BgpMsg::Open {
                            asn: self.asn,
                            router_id: self.router_id,
                            // Speakers never police hold time: the session
                            // must stay up no matter what.
                            hold_secs: 0,
                            session_token: self.session_token(),
                        }),
                    ));
                }
            }
            OsEvent::LinkDown(iface) => {
                self.established.insert(iface, None);
            }
            OsEvent::Frame { iface, frame } => match frame {
                Frame::Bgp(BgpMsg::Open { session_token, .. }) => {
                    // A new peer incarnation (fresh token): answer the
                    // exchange and replay the script — a rebooted boundary
                    // device must hear the announcements again.
                    let known = self.established.get(&iface).copied().flatten();
                    if known != Some(session_token) {
                        actions.out.push((
                            iface,
                            Frame::Bgp(BgpMsg::Open {
                                asn: self.asn,
                                router_id: self.router_id,
                                hold_secs: 0,
                                session_token: self.session_token(),
                            }),
                        ));
                        actions.out.push((iface, Frame::Bgp(BgpMsg::Keepalive)));
                        self.established.insert(iface, Some(session_token));
                        self.announce(iface, &mut actions);
                    }
                }
                Frame::Bgp(BgpMsg::Keepalive) => {}
                Frame::Bgp(BgpMsg::Update {
                    announced,
                    withdrawn,
                }) => {
                    // Record, never react, never reflect.
                    for (p, a, _) in announced {
                        self.received.push((iface, p, Some(a)));
                    }
                    for p in withdrawn {
                        self.received.push((iface, p, None));
                    }
                }
                Frame::Bgp(BgpMsg::Notification { .. }) => {
                    self.established.insert(iface, None);
                }
                Frame::Bgp(BgpMsg::RouteRefresh) if self.session_up(iface) => {
                    // Replaying the fixed script is the one "response" a
                    // static speaker is allowed: it re-states what it
                    // already said, so non-reactivity is preserved.
                    self.announce(iface, &mut actions);
                }
                _ => {}
            },
            OsEvent::Timer(_) => {}
            OsEvent::Mgmt(cmd) => match cmd {
                MgmtCommand::ShowBgpSummary => {
                    let rows = self
                        .scripts
                        .keys()
                        .map(|&i| (Ipv4Addr(i), self.session_up(i), 0))
                        .collect();
                    actions.response = Some(MgmtResponse::BgpSummary(rows));
                }
                MgmtCommand::DeviceShutdown => {
                    self.down = true;
                    actions.response = Some(MgmtResponse::Ok);
                }
                _ => {
                    actions.response =
                        Some(MgmtResponse::Error("speakers are not configurable".into()));
                }
            },
        }
        actions
    }

    fn fib(&self) -> &Fib {
        &self.fib
    }

    fn rib_size(&self) -> usize {
        0
    }

    fn is_down(&self) -> bool {
        self.down
    }

    fn hostname(&self) -> &str {
        &self.hostname
    }

    fn begin_event(&mut self, id: EventId) {
        self.cur_event = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::PathAttrs;

    fn script(prefix: &str) -> SpeakerScript {
        SpeakerScript {
            routes: vec![(
                prefix.parse().unwrap(),
                Arc::new(PathAttrs {
                    as_path: vec![Asn(64600)],
                    ..PathAttrs::originated(Ipv4Addr(1))
                }),
            )],
        }
    }

    #[test]
    fn speaker_announces_script_after_session_up() {
        let mut s = SpeakerOs::new("sp0".into(), Asn(64600), Ipv4Addr(1));
        s.set_script(0, script("0.0.0.0/0"));
        // Boot: speaker opens.
        let a = s.handle(SimTime::ZERO, OsEvent::Boot);
        assert_eq!(a.out.len(), 1);
        assert!(!s.session_up(0));
        // Peer's Open arrives: speaker answers Open+Keepalive+Update.
        let a = s.handle(
            SimTime::ZERO,
            OsEvent::Frame {
                iface: 0,
                frame: Frame::Bgp(BgpMsg::Open {
                    asn: Asn(65000),
                    router_id: Ipv4Addr(9),
                    hold_secs: 180,
                    session_token: 7,
                }),
            },
        );
        assert!(s.session_up(0));
        let kinds: Vec<bool> = a
            .out
            .iter()
            .map(|(_, f)| matches!(f, Frame::Bgp(BgpMsg::Update { .. })))
            .collect();
        assert_eq!(a.out.len(), 3);
        assert!(kinds[2], "script announced last");
    }

    #[test]
    fn speaker_never_reacts_to_updates() {
        let mut s = SpeakerOs::new("sp0".into(), Asn(64600), Ipv4Addr(1));
        s.set_script(0, script("0.0.0.0/0"));
        s.handle(SimTime::ZERO, OsEvent::Boot);
        s.handle(
            SimTime::ZERO,
            OsEvent::Frame {
                iface: 0,
                frame: Frame::Bgp(BgpMsg::Keepalive),
            },
        );
        // An update arrives from the boundary: recorded, nothing sent.
        let attrs = Arc::new(PathAttrs::originated(Ipv4Addr(7)));
        let prov = Provenance::originated(
            OriginKind::Network,
            Ipv4Addr(7),
            crystalnet_sim::EventId::ZERO,
        );
        let a = s.handle(
            SimTime::ZERO,
            OsEvent::Frame {
                iface: 0,
                frame: Frame::Bgp(BgpMsg::Update {
                    announced: vec![("10.1.0.0/16".parse().unwrap(), attrs, prov)],
                    withdrawn: vec!["10.2.0.0/16".parse().unwrap()],
                }),
            },
        );
        assert!(a.out.is_empty(), "static speakers never react");
        assert_eq!(s.received().len(), 2);
        assert!(s.received()[0].2.is_some());
        assert!(s.received()[1].2.is_none());
    }

    #[test]
    fn restarted_incarnation_presents_fresh_token() {
        let mut gen1 = SpeakerOs::new("sp0".into(), Asn(64600), Ipv4Addr(1));
        gen1.set_script(0, script("0.0.0.0/0"));
        let mut gen2 = SpeakerOs::new("sp0".into(), Asn(64600), Ipv4Addr(1));
        gen2.set_script(0, script("0.0.0.0/0"));
        gen2.set_epoch(1);
        assert_ne!(
            gen1.session_token(),
            gen2.session_token(),
            "a restarted speaker must look like a new incarnation to peers"
        );
        // The fresh incarnation opens with the bumped token, so a peer that
        // remembers the old token flushes and resyncs.
        let a = gen2.handle(SimTime::ZERO, OsEvent::Boot);
        match &a.out[0].1 {
            Frame::Bgp(BgpMsg::Open { session_token, .. }) => {
                assert_eq!(*session_token, gen2.session_token());
            }
            other => panic!("expected Open, got {other:?}"),
        }
        // And replays its script once the peer answers.
        let a = gen2.handle(
            SimTime::ZERO,
            OsEvent::Frame {
                iface: 0,
                frame: Frame::Bgp(BgpMsg::Open {
                    asn: Asn(65000),
                    router_id: Ipv4Addr(9),
                    hold_secs: 180,
                    session_token: 7,
                }),
            },
        );
        assert!(a
            .out
            .iter()
            .any(|(_, f)| matches!(f, Frame::Bgp(BgpMsg::Update { .. }))));
    }

    #[test]
    fn speaker_is_not_configurable() {
        let mut s = SpeakerOs::new("sp0".into(), Asn(64600), Ipv4Addr(1));
        let a = s.handle(
            SimTime::ZERO,
            OsEvent::Mgmt(MgmtCommand::AddNetwork("1.0.0.0/8".parse().unwrap())),
        );
        assert!(matches!(a.response, Some(MgmtResponse::Error(_))));
    }
}
