//! Route provenance: the causal record of *why* a RIB/FIB entry exists.
//!
//! Every route a device carries can be explained as a chain: an origin
//! announcement (a static speaker script, a `network` statement, an
//! aggregate, or an OSPF LSA), the sequence of propagation hops that
//! carried it here (each hop naming the re-announcing router and the
//! stable [`EventId`] of the event that sent it), and the best-path
//! decision that made it win. [`Provenance`] packs the first two;
//! [`DecisionReason`] names the third.
//!
//! Provenance records are hash-consed exactly like
//! [`PathAttrs`](crate::attrs::PathAttrs): in a Clos fabric thousands of
//! routes share a handful of propagation shapes, so interning keeps the
//! hot path clone-free — adj-RIB-in entries, Loc-RIB entries and exported
//! updates all hold the same `Arc`.

use crystalnet_net::{Ipv4Addr, Ipv4Prefix};
use crystalnet_sim::EventId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock};

/// What kind of origination started a route's causal chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OriginKind {
    /// A static speaker script (boundary injection, §5). Lemma 5.1 audits
    /// that every boundary-crossing route has this kind.
    Speaker,
    /// A `network` statement on an emulated device.
    Network,
    /// An `aggregate-address` synthesis.
    Aggregate,
    /// An OSPF-learned route redistributed into the FIB.
    Ospf,
}

impl OriginKind {
    /// Short label for traces and rendered explanations.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OriginKind::Speaker => "speaker",
            OriginKind::Network => "network",
            OriginKind::Aggregate => "aggregate",
            OriginKind::Ospf => "ospf",
        }
    }
}

/// One propagation hop: a router re-announced the route under an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProvHop {
    /// Router id (loopback) of the re-announcing device.
    pub router_id: Ipv4Addr,
    /// Stable id of the event whose firing sent the announcement.
    pub event: EventId,
}

/// The interned causal record attached to a route.
///
/// Hops run origin-first: `hops[0]` is the first re-announcement after
/// the origination, and the last hop is the neighbor that announced the
/// route to the holder. A directly learned route has a single hop; a
/// locally originated route has none.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Provenance {
    /// How the chain started.
    pub origin_kind: OriginKind,
    /// Router id (loopback) of the originating device.
    pub origin_router: Ipv4Addr,
    /// Stable id of the origination event ([`EventId::ZERO`] when the
    /// origination happened outside the event loop, e.g. at boot
    /// scheduling time).
    pub origin_event: EventId,
    /// Propagation chain, origin-first.
    pub hops: Vec<ProvHop>,
}

/// The process-wide hash-consing table (same pattern as
/// [`PathAttrs::intern`](crate::attrs::PathAttrs::intern)).
fn interner() -> &'static Mutex<HashSet<Arc<Provenance>>> {
    static INTERNER: OnceLock<Mutex<HashSet<Arc<Provenance>>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(HashSet::new()))
}

impl Provenance {
    /// Interns a freshly originated chain (no hops yet).
    #[must_use]
    pub fn originated(kind: OriginKind, router: Ipv4Addr, event: EventId) -> Arc<Provenance> {
        Provenance {
            origin_kind: kind,
            origin_router: router,
            origin_event: event,
            hops: Vec::new(),
        }
        .intern()
    }

    /// Interns a copy of `self` extended by one propagation hop.
    #[must_use]
    pub fn extended(&self, router_id: Ipv4Addr, event: EventId) -> Arc<Provenance> {
        let mut hops = Vec::with_capacity(self.hops.len() + 1);
        hops.extend_from_slice(&self.hops);
        hops.push(ProvHop { router_id, event });
        Provenance {
            origin_kind: self.origin_kind,
            origin_router: self.origin_router,
            origin_event: self.origin_event,
            hops,
        }
        .intern()
    }

    /// Hash-conses `self`: two interned handles are `Arc::ptr_eq` iff
    /// their contents are `==`.
    #[must_use]
    pub fn intern(self) -> Arc<Provenance> {
        let mut table = interner().lock().expect("provenance interner poisoned");
        if let Some(existing) = table.get(&self) {
            return Arc::clone(existing);
        }
        let arc = Arc::new(self);
        table.insert(Arc::clone(&arc));
        arc
    }

    /// Number of distinct chains currently interned.
    #[must_use]
    pub fn interned_count() -> usize {
        interner()
            .lock()
            .expect("provenance interner poisoned")
            .len()
    }

    /// Drops interned chains no longer referenced outside the table.
    pub fn intern_sweep() {
        interner()
            .lock()
            .expect("provenance interner poisoned")
            .retain(|p| Arc::strong_count(p) > 1);
    }

    /// The device chain implied by the provenance: origin router first,
    /// then each re-announcing router in propagation order.
    #[must_use]
    pub fn router_chain(&self) -> Vec<Ipv4Addr> {
        let mut chain = Vec::with_capacity(self.hops.len() + 1);
        chain.push(self.origin_router);
        chain.extend(self.hops.iter().map(|h| h.router_id));
        chain
    }

    /// A deterministic content digest (FNV-1a over the chain), used to
    /// reference this provenance compactly from packet-hop trace records.
    /// Deterministic because every component — kinds, router ids, event
    /// ids — is itself deterministic for a fixed seed.
    #[must_use]
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(match self.origin_kind {
            OriginKind::Speaker => 1,
            OriginKind::Network => 2,
            OriginKind::Aggregate => 3,
            OriginKind::Ospf => 4,
        });
        eat(u64::from(self.origin_router.0));
        eat(self.origin_event.time_ns);
        eat(self.origin_event.key);
        for hop in &self.hops {
            eat(u64::from(hop.router_id.0));
            eat(hop.event.time_ns);
            eat(hop.event.key);
        }
        h
    }
}

/// Why the best-path decision picked (or synthesized) this route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecisionReason {
    /// Locally originated routes beat everything learned.
    LocalOrigination,
    /// Synthesized by `aggregate-address`.
    AggregateSynthesis,
    /// The only viable candidate — no contest.
    OnlyCandidate,
    /// Won on higher `LOCAL_PREF`.
    HigherLocalPref,
    /// Won on shorter `AS_PATH`.
    ShorterAsPath,
    /// Won on lower origin code (IGP < EGP < Incomplete).
    LowerOriginCode,
    /// Won on lower MED.
    LowerMed,
    /// Tied through the attribute comparison; lowest peer address wins.
    LowerPeerAddr,
}

impl DecisionReason {
    /// Short label for traces and rendered explanations.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DecisionReason::LocalOrigination => "local-origination",
            DecisionReason::AggregateSynthesis => "aggregate-synthesis",
            DecisionReason::OnlyCandidate => "only-candidate",
            DecisionReason::HigherLocalPref => "higher-local-pref",
            DecisionReason::ShorterAsPath => "shorter-as-path",
            DecisionReason::LowerOriginCode => "lower-origin-code",
            DecisionReason::LowerMed => "lower-med",
            DecisionReason::LowerPeerAddr => "lower-peer-addr",
        }
    }
}

/// What a best-path run did to one prefix's FIB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// A (new or replacement) best path was installed.
    Install,
    /// The prefix lost its last viable path and was removed.
    Remove,
}

impl MutationKind {
    /// Short label for traces.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::Install => "fib_install",
            MutationKind::Remove => "fib_remove",
        }
    }
}

/// One RIB/FIB mutation performed while handling an event, reported by
/// [`DeviceOs::take_route_mutations`](crate::os::DeviceOs::take_route_mutations)
/// so the harness can emit trace records without the OS knowing about
/// recorders.
#[derive(Debug, Clone)]
pub struct RouteMutation {
    /// The mutated prefix.
    pub prefix: Ipv4Prefix,
    /// Install or remove.
    pub kind: MutationKind,
    /// Provenance of the winning path (`None` for removals).
    pub prov: Option<Arc<Provenance>>,
    /// Decision reason for the winning path (`None` for removals).
    pub reason: Option<DecisionReason>,
}

/// Everything known about one installed route, for `explain_route`.
#[derive(Debug, Clone)]
pub struct RouteDetail {
    /// The winning path's attributes.
    pub attrs: Arc<crate::attrs::PathAttrs>,
    /// The winning path's causal chain.
    pub prov: Arc<Provenance>,
    /// Why it won.
    pub reason: DecisionReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, k: u64) -> EventId {
        EventId { time_ns: t, key: k }
    }

    #[test]
    fn interning_shares_equal_chains() {
        let a = Provenance::originated(OriginKind::Speaker, Ipv4Addr(900_001), ev(5, 7));
        let b = Provenance::originated(OriginKind::Speaker, Ipv4Addr(900_001), ev(5, 7));
        assert!(Arc::ptr_eq(&a, &b));
        let c = a.extended(Ipv4Addr(900_002), ev(9, 11));
        let d = a.extended(Ipv4Addr(900_002), ev(9, 11));
        assert!(Arc::ptr_eq(&c, &d));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.hops.len(), 1);
        assert_eq!(c.origin_router, Ipv4Addr(900_001));
    }

    #[test]
    fn router_chain_runs_origin_first() {
        let p = Provenance::originated(OriginKind::Network, Ipv4Addr(1), ev(0, 1))
            .extended(Ipv4Addr(2), ev(1, 2))
            .extended(Ipv4Addr(3), ev(2, 3));
        assert_eq!(
            p.router_chain(),
            vec![Ipv4Addr(1), Ipv4Addr(2), Ipv4Addr(3)]
        );
    }

    #[test]
    fn digest_distinguishes_chains() {
        let a = Provenance::originated(OriginKind::Speaker, Ipv4Addr(800_001), ev(5, 7));
        let b = a.extended(Ipv4Addr(800_002), ev(9, 11));
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.digest());
        let a2 = Provenance::originated(OriginKind::Speaker, Ipv4Addr(800_001), ev(5, 7));
        assert_eq!(a.digest(), a2.digest());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(OriginKind::Speaker.label(), "speaker");
        assert_eq!(DecisionReason::LowerPeerAddr.label(), "lower-peer-addr");
        assert_eq!(MutationKind::Install.label(), "fib_install");
    }
}
