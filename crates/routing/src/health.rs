//! The deterministic in-run health plane: a Pingmesh-style probe mesh
//! scheduled as first-class engine events, per-pair SLO gauges with
//! rolling windows, and streaming gray-failure watchdogs.
//!
//! Everything here runs *inside* virtual time and is a pure function of
//! `(seed, round)` — which pairs probe in a round, which ECMP member a
//! probe hashes onto, when a hop arrives — so the probe matrix, the SLO
//! gauges, and the incident timeline are byte-identical across
//! repetitions and `workers` values. Probe events are **non-causal**
//! (like timers): they never count against route quiescence, so probing
//! a network does not change when it is declared converged, and a
//! probes-off run is byte-identical to a build without the health plane.
//!
//! The watchdog catalogue (each firing lands an [`Incident`]):
//!
//! * **Blackhole** — the device's FIB holds a route for the probe's
//!   destination, but the probe dies there anyway (forwarding silently
//!   disabled, or the chosen next hop points at a dead link). Emits a
//!   [`GrayFailureWitness`] carrying the stale FIB entry's provenance
//!   digest and the hop where the packet vanished — the evidence a
//!   final-FIB differential cannot produce, because the FIB is
//!   *correct*.
//! * **ForwardingLoop** — TTL exhausted before delivery.
//! * **SloBreach** — a pair's rolling loss window crossed the
//!   configured threshold (fires on the transition, re-arms when the
//!   window recovers).
//! * **FibChurnAnomaly** — a device performed more route operations
//!   between two probe ticks than the configured threshold.
//!
//! The traffic plane (`crate::traffic`) extends the catalogue with
//! congestion kinds — **LinkOversubscribed**, **EcmpPolarisation**,
//! **FlowSloBreach** — that land on the same [`Incident`] timeline.

#![warn(missing_docs)]

use crystalnet_net::{DeviceId, Ipv4Addr, Ipv4Prefix, LinkId};
use crystalnet_sim::rng::SimRng;
use crystalnet_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Probe-mesh configuration (the `MockupOptions::builder().health(...)`
/// knob lands here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Interval between probe rounds (must be positive).
    pub period: SimDuration,
    /// Ordered pairs sampled per round (sampling is with replacement
    /// over the device population, seeded per round).
    pub pairs_per_round: usize,
    /// Rolling SLO window length, in probes per pair.
    pub slo_window: usize,
    /// Loss percentage over a full window at which the pair breaches.
    pub slo_loss_pct: u8,
    /// Probe TTL (loop detection fires on exhaustion).
    pub ttl: u8,
    /// Route operations per device per round above which the churn
    /// watchdog fires.
    pub churn_threshold: u64,
    /// Probe-stream seed. `0` means "derive from the run seed" (the
    /// orchestrator substitutes its seed before enabling).
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            period: SimDuration::from_secs(5),
            pairs_per_round: 8,
            slo_window: 12,
            slo_loss_pct: 25,
            ttl: 64,
            churn_threshold: 10_000,
            seed: 0,
        }
    }
}

impl ProbeConfig {
    /// A config probing every `period` with the other knobs at their
    /// defaults.
    #[must_use]
    pub fn with_period(period: SimDuration) -> Self {
        ProbeConfig {
            period,
            ..ProbeConfig::default()
        }
    }
}

/// Reachability/latency/loss gauges for one ordered `(src, dst)` pair,
/// plus the rolling SLO window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PairStats {
    /// Probes launched from `src` toward `dst`.
    pub sent: u64,
    /// Probes that reached `dst`.
    pub delivered: u64,
    /// Probes that died en route (any cause).
    pub lost: u64,
    /// Sum of delivered probes' one-way latencies (ns).
    pub latency_ns_sum: u64,
    /// Worst delivered one-way latency (ns).
    pub latency_ns_max: u64,
    /// Outcomes of the last [`ProbeConfig::slo_window`] probes
    /// (`true` = delivered), newest at the back.
    pub window: VecDeque<bool>,
    /// Whether the pair is currently in SLO breach (set on the firing
    /// transition, cleared when the window recovers).
    pub breached: bool,
}

impl PairStats {
    /// Losses inside the current window.
    #[must_use]
    pub fn window_lost(&self) -> u64 {
        self.window.iter().filter(|d| !**d).count() as u64
    }

    /// Integer loss percentage over the lifetime of the pair.
    #[must_use]
    pub fn loss_pct(&self) -> u64 {
        (self.lost * 100).checked_div(self.sent).unwrap_or(0)
    }

    /// Records one probe outcome and reports whether the pair just
    /// *transitioned* into SLO breach (the watchdog fires exactly once
    /// per excursion).
    pub fn record(&mut self, delivered: bool, latency_ns: u64, cfg: &ProbeConfig) -> bool {
        self.record_windowed(delivered, latency_ns, cfg.slo_window, cfg.slo_loss_pct)
    }

    /// [`Self::record`] with the window parameters spelled out — the
    /// shared implementation behind probe gauges and the traffic
    /// plane's flow gauges (`crate::traffic`), which carry their own
    /// window configuration.
    pub fn record_windowed(
        &mut self,
        delivered: bool,
        latency_ns: u64,
        slo_window: usize,
        slo_loss_pct: u8,
    ) -> bool {
        self.sent += 1;
        if delivered {
            self.delivered += 1;
            self.latency_ns_sum += latency_ns;
            self.latency_ns_max = self.latency_ns_max.max(latency_ns);
        } else {
            self.lost += 1;
        }
        self.window.push_back(delivered);
        while self.window.len() > slo_window {
            self.window.pop_front();
        }
        if self.window.len() < slo_window {
            return false;
        }
        let breach = self.window_lost() * 100 > u64::from(slo_loss_pct) * (slo_window as u64);
        let fired = breach && !self.breached;
        self.breached = breach;
        fired
    }
}

/// Why a probe stopped where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Reached its destination.
    Delivered,
    /// Died at a device whose FIB *had* a route (gray failure).
    Blackhole,
    /// TTL exhausted before delivery.
    TtlExpired,
    /// A device on the path had no route for the destination.
    NoRoute,
    /// A device on the path was down or not yet booted.
    DeviceDown,
    /// Dropped by an ACL.
    AclDrop,
}

impl ProbeOutcome {
    /// Stable export label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProbeOutcome::Delivered => "delivered",
            ProbeOutcome::Blackhole => "blackhole",
            ProbeOutcome::TtlExpired => "ttl_expired",
            ProbeOutcome::NoRoute => "no_route",
            ProbeOutcome::DeviceDown => "device_down",
            ProbeOutcome::AclDrop => "acl_drop",
        }
    }

    /// Whether the probe reached its destination.
    #[must_use]
    pub fn delivered(self) -> bool {
        matches!(self, ProbeOutcome::Delivered)
    }
}

/// The evidence behind a blackhole incident: where the packet vanished
/// and the provenance digest of the FIB entry that *should* have carried
/// it — the stale state a final-FIB differential cannot flag, because
/// the entry is present and well-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayFailureWitness {
    /// The device where the probe died.
    pub device: DeviceId,
    /// Hop index at which it died (0 = the source itself).
    pub hop: u32,
    /// The FIB prefix the device matched for the destination.
    pub prefix: Option<Ipv4Prefix>,
    /// Provenance digest of the matched FIB entry (PR 4's causal-chain
    /// digest), when the OS keeps provenance.
    pub prov_digest: Option<u64>,
}

/// What kind of watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncidentKind {
    /// A probe died at a device whose FIB had a route.
    Blackhole(GrayFailureWitness),
    /// A probe's TTL expired at `device`.
    ForwardingLoop {
        /// Where the TTL ran out.
        device: DeviceId,
        /// Hop index at exhaustion.
        hop: u32,
    },
    /// A pair's rolling loss window crossed the threshold.
    SloBreach {
        /// Losses inside the window when the breach fired.
        window_lost: u64,
        /// Window length (probes).
        window: u64,
    },
    /// A device churned more routes between ticks than the threshold.
    FibChurnAnomaly {
        /// The churning device.
        device: DeviceId,
        /// Route operations observed since the previous tick.
        ops: u64,
        /// The configured threshold.
        threshold: u64,
    },
    /// A directional link carried more bytes between two traffic ticks
    /// than the configured fraction of its capacity-per-period
    /// (traffic-plane watchdog).
    LinkOversubscribed {
        /// The over-subscribed link.
        link: LinkId,
        /// The transmitting endpoint (link accounting is directional).
        device: DeviceId,
        /// Bytes carried in the period.
        bytes: u64,
        /// The link's modelled capacity for one period, in bytes.
        capacity_bytes: u64,
    },
    /// A device's ECMP traffic concentrated past the threshold on one
    /// member of a multi-member group (traffic-plane watchdog).
    EcmpPolarisation {
        /// The polarised device.
        device: DeviceId,
        /// The egress interface absorbing the traffic.
        iface: u32,
        /// Integer percentage of the device's ECMP bytes on that member.
        share_pct: u64,
        /// Largest ECMP group size observed in the period.
        members: u64,
    },
    /// A `(src, dst)` pair's rolling *flow*-loss window crossed the
    /// threshold (traffic-plane watchdog).
    FlowSloBreach {
        /// Losses inside the window when the breach fired.
        window_lost: u64,
        /// Window length (flows).
        window: u64,
    },
}

impl IncidentKind {
    /// Stable export label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            IncidentKind::Blackhole(_) => "blackhole",
            IncidentKind::ForwardingLoop { .. } => "forwarding_loop",
            IncidentKind::SloBreach { .. } => "slo_breach",
            IncidentKind::FibChurnAnomaly { .. } => "fib_churn_anomaly",
            IncidentKind::LinkOversubscribed { .. } => "link_oversubscribed",
            IncidentKind::EcmpPolarisation { .. } => "ecmp_polarisation",
            IncidentKind::FlowSloBreach { .. } => "flow_slo_breach",
        }
    }

    /// Rank for the deterministic incident sort (ties broken by kind).
    fn rank(&self) -> u8 {
        match self {
            IncidentKind::Blackhole(_) => 0,
            IncidentKind::ForwardingLoop { .. } => 1,
            IncidentKind::SloBreach { .. } => 2,
            IncidentKind::FibChurnAnomaly { .. } => 3,
            IncidentKind::LinkOversubscribed { .. } => 4,
            IncidentKind::EcmpPolarisation { .. } => 5,
            IncidentKind::FlowSloBreach { .. } => 6,
        }
    }
}

/// One watchdog firing on the incident timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Virtual time of the firing.
    pub at: SimTime,
    /// Probe source (for churn incidents, the churning device).
    pub src: DeviceId,
    /// Probe destination (for churn incidents, the churning device).
    pub dst: DeviceId,
    /// Ordinal that total-orders same-instant incidents of one kind:
    /// the probe sequence for probe-derived incidents, a `(1 << 63)`-
    /// tagged `(round, device)` composite for churn incidents, a
    /// `(1 << 61)`-tagged flow sequence for flow SLO breaches, and
    /// high-bit-tagged `(device, link/iface)` composites for the
    /// tick-time congestion watchdogs (`crate::traffic`). Same-instant
    /// incidents of *different* kinds are ordered by kind rank.
    pub seq: u64,
    /// What fired.
    pub kind: IncidentKind,
}

impl Incident {
    /// The deterministic timeline sort key.
    #[must_use]
    pub fn sort_key(&self) -> (u64, u64, u8) {
        (self.at.as_nanos(), self.seq, self.kind.rank())
    }
}

/// Live probe-mesh state inside a [`ControlPlaneWorld`]
/// (`crate::harness::ControlPlaneWorld`): gauges, the incident log, and
/// the churn-watchdog accounting. Cloned wholesale on fork; split and
/// re-merged around a parallel run (pair stats travel with the shard
/// that owns the pair's source, so rolling windows stay continuous).
#[derive(Debug, Clone)]
pub struct HealthState {
    /// The active configuration (seed already resolved).
    pub cfg: ProbeConfig,
    /// Probe targets: every device with an OS at enable time, with its
    /// loopback address, sorted by device id. Replicated on every shard
    /// so pair sampling is a shard-independent pure function.
    pub population: Vec<(DeviceId, Ipv4Addr)>,
    /// Per-pair gauges, keyed `(src, dst)`.
    pub pairs: BTreeMap<(DeviceId, DeviceId), PairStats>,
    /// The incident timeline, in deterministic order.
    pub incidents: Vec<Incident>,
    /// Total probes launched.
    pub probes_sent: u64,
    /// Total probes delivered.
    pub probes_delivered: u64,
    /// Total probes lost.
    pub probes_lost: u64,
    /// Route operations per device since the last probe tick (the churn
    /// watchdog's accounting; reset every tick).
    pub ops_since_tick: BTreeMap<DeviceId, u64>,
    /// Whether a tick has fired yet: the first tick only primes the
    /// churn baseline (boot-time convergence churn is not an anomaly).
    pub churn_primed: bool,
    /// Per-round sampling seed base, derived once from
    /// [`ProbeConfig::seed`] at enable time.
    pub derived_seed: u64,
}

impl HealthState {
    /// Fresh state over `population` (sorted by device id internally).
    #[must_use]
    pub fn new(cfg: ProbeConfig, mut population: Vec<(DeviceId, Ipv4Addr)>) -> Self {
        population.sort_by_key(|(d, _)| d.0);
        let derived_seed = SimRng::for_component(cfg.seed, "health-probe").next_u64();
        HealthState {
            cfg,
            population,
            pairs: BTreeMap::new(),
            incidents: Vec::new(),
            probes_sent: 0,
            probes_delivered: 0,
            probes_lost: 0,
            ops_since_tick: BTreeMap::new(),
            churn_primed: false,
            derived_seed,
        }
    }

    /// The pairs round `round` probes: a pure function of
    /// `(derived_seed, round)`, independent of shard layout and of every
    /// other round. Self-pairs are skipped by construction.
    #[must_use]
    pub fn sample_pairs(&self, round: u64) -> Vec<(usize, usize)> {
        let n = self.population.len();
        if n < 2 {
            return Vec::new();
        }
        let mut rng =
            SimRng::from_seed(self.derived_seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        (0..self.cfg.pairs_per_round)
            .map(|_| {
                let src = rng.below(n as u64) as usize;
                let mut dst = rng.below(n as u64 - 1) as usize;
                if dst >= src {
                    dst += 1;
                }
                (src, dst)
            })
            .collect()
    }

    /// Splits off the state a parallel shard carries: full config and
    /// population (sampling must replay identically everywhere), the
    /// live pair stats whose *source* the shard owns (rolling windows
    /// must stay continuous across the fork boundary), the churn
    /// residue for owned devices, and zeroed totals/incidents (merged
    /// back additively at the join).
    #[must_use]
    pub fn fork_for_shard(&self, owns: impl Fn(DeviceId) -> bool) -> HealthState {
        HealthState {
            cfg: self.cfg.clone(),
            population: self.population.clone(),
            pairs: self
                .pairs
                .iter()
                .filter(|((src, _), _)| owns(*src))
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            incidents: Vec::new(),
            probes_sent: 0,
            probes_delivered: 0,
            probes_lost: 0,
            ops_since_tick: self
                .ops_since_tick
                .iter()
                .filter(|(d, _)| owns(**d))
                .map(|(d, n)| (*d, *n))
                .collect(),
            churn_primed: self.churn_primed,
            derived_seed: self.derived_seed,
        }
    }

    /// Folds a shard's state back in after a parallel run: pair stats
    /// replace the serial entries (the shard carried the live
    /// continuation), totals add, incidents accumulate for a single
    /// deterministic sort by the caller.
    pub fn absorb_shard(&mut self, shard: HealthState) {
        for (k, v) in shard.pairs {
            self.pairs.insert(k, v);
        }
        for (d, n) in shard.ops_since_tick {
            self.ops_since_tick.insert(d, n);
        }
        self.probes_sent += shard.probes_sent;
        self.probes_delivered += shard.probes_delivered;
        self.probes_lost += shard.probes_lost;
        self.churn_primed |= shard.churn_primed;
        self.incidents.extend(shard.incidents);
    }

    /// Restores the deterministic timeline order after shard incident
    /// lists were concatenated.
    pub fn sort_incidents(&mut self) {
        self.incidents.sort_by_key(Incident::sort_key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(n: u32) -> Vec<(DeviceId, Ipv4Addr)> {
        (0..n)
            .map(|i| (DeviceId(i), Ipv4Addr(0x0a00_0000 + i)))
            .collect()
    }

    #[test]
    fn sampling_is_deterministic_and_skips_self_pairs() {
        let h = HealthState::new(
            ProbeConfig {
                pairs_per_round: 64,
                seed: 7,
                ..ProbeConfig::default()
            },
            pop(9),
        );
        let a = h.sample_pairs(3);
        let b = h.sample_pairs(3);
        assert_eq!(a, b, "same round must sample the same pairs");
        assert!(a.iter().all(|(s, d)| s != d), "no self-probes");
        assert!(a.iter().all(|(s, d)| *s < 9 && *d < 9));
        assert_ne!(h.sample_pairs(4), a, "rounds sample independently");
    }

    #[test]
    fn sampling_handles_degenerate_populations() {
        let h = HealthState::new(ProbeConfig::default(), pop(1));
        assert!(h.sample_pairs(0).is_empty());
        let h = HealthState::new(ProbeConfig::default(), pop(0));
        assert!(h.sample_pairs(0).is_empty());
    }

    #[test]
    fn window_breach_fires_on_transition_and_rearms() {
        let cfg = ProbeConfig {
            slo_window: 4,
            slo_loss_pct: 25,
            ..ProbeConfig::default()
        };
        let mut p = PairStats::default();
        // Fill the window with deliveries: no breach.
        for _ in 0..4 {
            assert!(!p.record(true, 1_000, &cfg));
        }
        // Two losses in a window of 4 = 50% > 25%: fires exactly once.
        assert!(!p.record(false, 0, &cfg), "1/4 lost is 25%, not > 25%");
        assert!(p.record(false, 0, &cfg), "2/4 lost crosses the threshold");
        assert!(!p.record(false, 0, &cfg), "still breached: no re-fire");
        // Recover the window, then breach again: re-fires.
        for _ in 0..4 {
            assert!(!p.record(true, 1_000, &cfg));
        }
        assert!(!p.breached, "window recovered");
        p.record(false, 0, &cfg);
        assert!(p.record(false, 0, &cfg), "a fresh excursion re-fires");
        assert_eq!(p.sent, 13);
        assert_eq!(p.lost, 5);
        assert_eq!(p.latency_ns_max, 1_000);
    }

    #[test]
    fn shard_split_keeps_windows_continuous() {
        let cfg = ProbeConfig {
            slo_window: 3,
            ..ProbeConfig::default()
        };
        let mut h = HealthState::new(cfg.clone(), pop(4));
        let key = (DeviceId(1), DeviceId(2));
        h.pairs.entry(key).or_default().record(true, 10, &cfg);
        h.ops_since_tick.insert(DeviceId(1), 5);
        h.ops_since_tick.insert(DeviceId(3), 7);

        let mut shard = h.fork_for_shard(|d| d.0 < 2);
        assert_eq!(shard.pairs[&key].window.len(), 1, "window travels");
        assert_eq!(shard.ops_since_tick.get(&DeviceId(1)), Some(&5));
        assert_eq!(shard.ops_since_tick.get(&DeviceId(3)), None);

        shard.pairs.get_mut(&key).unwrap().record(false, 0, &cfg);
        shard.probes_sent = 1;
        h.absorb_shard(shard);
        assert_eq!(h.pairs[&key].window.len(), 2, "continuation replaces");
        assert_eq!(h.probes_sent, 1);
    }
}
