//! Vendor behaviour profiles and injectable firmware quirks.
//!
//! CrystalNet's core argument (§2) is that production outages come from
//! *real firmware behaviour* — undocumented vendor divergence, outright
//! bugs, ambiguous format changes — which config-level simulators cannot
//! model ("there is no way to make Batfish bug compatible"). The
//! reproduction's firmware images are therefore parameterised by a
//! [`VendorProfile`]: documented divergences (aggregation AS-path
//! selection, FIB-overflow policy) plus a [`Quirks`] set reproducing the
//! §2 and §7 incident bugs. Emulating a network with the right profiles
//! makes the bugs *observable*, which is exactly the paper's pitch.

use crystalnet_net::Vendor;
use crystalnet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How a vendor builds the AS path of an `aggregate-address` route —
/// the Figure 1 divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateMode {
    /// Select one contributing route's path and prepend the local AS
    /// ("Vendor-A": R6's behaviour — `{6, 2, 1}`).
    SelectContributorPath,
    /// Announce the aggregate with only the local AS in the path
    /// ("Vendor-C": R7's behaviour — `{7}`), making it look shorter and
    /// attracting all of R8's traffic.
    EmptyPath,
}

/// What the firmware does when the FIB is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FibOverflow {
    /// Install fails silently; the route stays in the RIB and is
    /// re-advertised — the §2 load-balancer blackhole behaviour.
    SilentDrop,
    /// The route is rejected from the RIB too (not re-advertised), so
    /// upstreams route around the full device.
    RejectRoute,
}

/// Injectable firmware bugs (each reproduces a §2/§7 incident class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Quirks {
    /// "New router firmware erroneously stopped announcing certain IP
    /// prefixes": locally originated networks are never advertised.
    pub stop_announcing_networks: bool,
    /// "ARP refreshing failed when peering configuration was changed":
    /// after a config change the firmware stops refreshing ARP entries.
    pub arp_refresh_bug: bool,
    /// The firmware parses v1 ACL configuration with v2 field order
    /// (source/destination swapped) — the undocumented format change.
    pub acl_v2_misread: bool,
    /// Case 2 CTNR-B dev bug: "failing to update the default route when
    /// routes are learned from BGP".
    pub skip_default_route_fib: bool,
    /// Case 2 CTNR-B dev bug: "failing to forward ARP packets to CPU due
    /// to incorrect trap implementation" — inbound ARP is dropped.
    pub arp_trap_broken: bool,
    /// Case 2 CTNR-B dev bug: "crashing after several BGP sessions
    /// flapped" — the OS crashes after this many session losses.
    pub crash_after_flaps: Option<u32>,
}

impl Quirks {
    /// No bugs: a released, healthy image.
    #[must_use]
    pub fn none() -> Self {
        Quirks::default()
    }

    /// The §7 Case-2 CTNR-B *development build* with all three bugs the
    /// validation pipeline caught.
    #[must_use]
    pub fn ctnr_b_dev_build() -> Self {
        Quirks {
            skip_default_route_fib: true,
            arp_trap_broken: true,
            crash_after_flaps: Some(3),
            ..Quirks::default()
        }
    }
}

/// The behaviour profile of one vendor's firmware image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VendorProfile {
    /// Which vendor this is.
    pub vendor: Vendor,
    /// Mean firmware boot time (containers boot much faster than nested
    /// VM images; §8.2 finds vendor boot speed dominates Mockup).
    pub boot_time: SimDuration,
    /// Aggregation AS-path behaviour.
    pub aggregate_mode: AggregateMode,
    /// FIB overflow policy.
    pub fib_overflow: FibOverflow,
    /// CPU cost per processed route operation.
    pub cpu_per_route_op: SimDuration,
    /// CPU cost of booting the image.
    pub cpu_boot: SimDuration,
    /// MRAI: minimum route advertisement interval (batches updates).
    pub mrai: SimDuration,
    /// Injected bugs.
    pub quirks: Quirks,
}

impl VendorProfile {
    /// CTNR-A: the large commercial vendor's container image (runs the
    /// paper's Border/Spine/Leaf layers).
    #[must_use]
    pub fn ctnr_a() -> Self {
        VendorProfile {
            vendor: Vendor::CtnrA,
            boot_time: SimDuration::from_secs(75),
            aggregate_mode: AggregateMode::SelectContributorPath,
            fib_overflow: FibOverflow::SilentDrop,
            cpu_per_route_op: SimDuration::from_micros(220),
            cpu_boot: SimDuration::from_secs(40),
            mrai: SimDuration::from_millis(400),
            quirks: Quirks::none(),
        }
    }

    /// CTNR-B: the open-source switch OS (runs ToRs). Released build.
    #[must_use]
    pub fn ctnr_b() -> Self {
        VendorProfile {
            vendor: Vendor::CtnrB,
            boot_time: SimDuration::from_secs(55),
            aggregate_mode: AggregateMode::SelectContributorPath,
            fib_overflow: FibOverflow::RejectRoute,
            cpu_per_route_op: SimDuration::from_micros(180),
            cpu_boot: SimDuration::from_secs(25),
            mrai: SimDuration::from_millis(300),
            quirks: Quirks::none(),
        }
    }

    /// CTNR-B development build under test in the §7 Case-2 pipeline.
    #[must_use]
    pub fn ctnr_b_dev() -> Self {
        VendorProfile {
            quirks: Quirks::ctnr_b_dev_build(),
            ..VendorProfile::ctnr_b()
        }
    }

    /// VM-A: a commercial vendor shipping only VM images (nested
    /// virtualization; slow boot, heavier memory).
    #[must_use]
    pub fn vm_a() -> Self {
        VendorProfile {
            vendor: Vendor::VmA,
            boot_time: SimDuration::from_secs(240),
            aggregate_mode: AggregateMode::SelectContributorPath,
            fib_overflow: FibOverflow::SilentDrop,
            cpu_per_route_op: SimDuration::from_micros(350),
            cpu_boot: SimDuration::from_secs(120),
            mrai: SimDuration::from_millis(500),
            quirks: Quirks::none(),
        }
    }

    /// VM-B: the second VM-image vendor — "Vendor-C" of Figure 1, whose
    /// aggregates carry an empty AS path.
    #[must_use]
    pub fn vm_b() -> Self {
        VendorProfile {
            vendor: Vendor::VmB,
            boot_time: SimDuration::from_secs(210),
            aggregate_mode: AggregateMode::EmptyPath,
            fib_overflow: FibOverflow::SilentDrop,
            cpu_per_route_op: SimDuration::from_micros(300),
            cpu_boot: SimDuration::from_secs(100),
            mrai: SimDuration::from_millis(500),
            quirks: Quirks::none(),
        }
    }

    /// The released profile for a vendor enum value.
    #[must_use]
    pub fn for_vendor(vendor: Vendor) -> Self {
        match vendor {
            Vendor::CtnrA => VendorProfile::ctnr_a(),
            Vendor::CtnrB => VendorProfile::ctnr_b(),
            Vendor::VmA => VendorProfile::vm_a(),
            Vendor::VmB => VendorProfile::vm_b(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_vendors() {
        for v in Vendor::ALL {
            assert_eq!(VendorProfile::for_vendor(v).vendor, v);
        }
    }

    #[test]
    fn vm_images_boot_slower_than_containers() {
        assert!(VendorProfile::vm_a().boot_time > VendorProfile::ctnr_a().boot_time);
        assert!(VendorProfile::vm_b().boot_time > VendorProfile::ctnr_b().boot_time);
    }

    #[test]
    fn fig1_divergence_is_encoded() {
        assert_eq!(
            VendorProfile::ctnr_a().aggregate_mode,
            AggregateMode::SelectContributorPath
        );
        assert_eq!(
            VendorProfile::vm_b().aggregate_mode,
            AggregateMode::EmptyPath
        );
    }

    #[test]
    fn dev_build_is_buggy_release_is_not() {
        assert_eq!(VendorProfile::ctnr_b().quirks, Quirks::none());
        let dev = VendorProfile::ctnr_b_dev().quirks;
        assert!(dev.skip_default_route_fib);
        assert!(dev.arp_trap_broken);
        assert_eq!(dev.crash_after_flaps, Some(3));
        assert!(!dev.stop_announcing_networks);
    }
}
