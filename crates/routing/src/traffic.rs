//! The deterministic flow-level traffic plane: seeded per-device
//! server/user profiles generating flow arrivals as first-class engine
//! events, ECMP hash-spread over the dataplane's [`decide`]
//! (`crystalnet_dataplane::decide`) path, per-link utilisation gauges
//! accumulated in virtual time, and streaming congestion watchdogs.
//!
//! Everything here is a pure function of `(seed, round)` — which flows
//! launch in a round, which ECMP member each flow hashes onto, when a
//! hop arrives — so the utilisation gauges, the flow SLO windows, and
//! the congestion incidents are byte-identical across repetitions and
//! `workers` values. Flow events are **non-causal** (like probes and
//! timers): they never count against route quiescence, so driving load
//! through a network does not change when it is declared converged, and
//! a traffic-off run is byte-identical to a build without the traffic
//! plane.
//!
//! Determinism under sharding follows the health plane's discipline:
//! every piece of mutable accounting is keyed by a single owning device
//! (per-pair flow gauges travel with the flow's *source* shard; link
//! and ECMP residues with the *transmitting* device's shard — link
//! accounting is directional on purpose, a cut link's two directions
//! are charged on different shards), so each shard's broadcast-tick
//! watchdog evaluation is complete for the keys it owns and the union
//! across shards equals the serial run.
//!
//! The congestion watchdog catalogue (each firing lands an
//! [`Incident`] on the shared timeline, alongside the health plane's):
//!
//! * **LinkOversubscribed** — a directional link carried more bytes
//!   between two traffic ticks than the configured fraction of its
//!   capacity-per-period.
//! * **EcmpPolarisation** — a device's ECMP traffic concentrated past
//!   the configured share on one member of a multi-member group (the
//!   classic hash-polarisation pathology).
//! * **FlowSloBreach** — a `(src, dst)` pair's rolling flow-loss
//!   window crossed the threshold (fires on the transition, re-arms
//!   when the window recovers).

#![warn(missing_docs)]

use crate::health::{Incident, PairStats};
use crystalnet_dataplane::FibEntry;
use crystalnet_net::{DeviceId, Ipv4Addr, Ipv4Prefix, LinkId};
use crystalnet_sim::rng::SimRng;
use crystalnet_sim::SimDuration;
use std::collections::BTreeMap;

/// Traffic-plane configuration (the `MockupOptions::builder()
/// .traffic(...)` knob lands here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Interval between flow-arrival rounds (must be positive).
    pub period: SimDuration,
    /// Flows launched per round (sampled over the server/user profile
    /// split, seeded per round).
    pub flows_per_round: usize,
    /// Size of a user→server request flow, in bytes.
    pub request_bytes: u64,
    /// Size of a server→user response flow, in bytes.
    pub response_bytes: u64,
    /// Percentage of devices assigned the *server* profile at enable
    /// time (the rest are *users*; the split is seeded and at least one
    /// of each is forced when the population allows).
    pub server_share_pct: u8,
    /// Modelled per-direction link capacity in bits per second.
    pub link_capacity_bps: u64,
    /// Percentage of a link's capacity-per-period above which the
    /// over-subscription watchdog fires.
    pub oversub_pct: u8,
    /// Percentage of a device's ECMP bytes on a single member (of a
    /// group with ≥ 2 members) above which the polarisation watchdog
    /// fires.
    pub polarisation_pct: u8,
    /// Minimum ECMP bytes per device per round before the polarisation
    /// watchdog is consulted (suppresses verdicts on trivial samples).
    pub polarisation_min_bytes: u64,
    /// Rolling SLO window length, in flows per pair.
    pub slo_window: usize,
    /// Loss percentage over a full window at which a pair breaches.
    pub slo_loss_pct: u8,
    /// Flow TTL (loops surface as lost flows; the loop *witness* is the
    /// probe mesh's job).
    pub ttl: u8,
    /// Flow-stream seed. `0` means "derive from the run seed" (the
    /// orchestrator substitutes its seed before enabling).
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            period: SimDuration::from_secs(5),
            flows_per_round: 8,
            request_bytes: 2_000,
            response_bytes: 100_000,
            server_share_pct: 25,
            link_capacity_bps: 10_000_000_000,
            oversub_pct: 80,
            polarisation_pct: 90,
            polarisation_min_bytes: 64_000,
            slo_window: 12,
            slo_loss_pct: 25,
            ttl: 64,
            seed: 0,
        }
    }
}

impl TrafficConfig {
    /// A config launching flows every `period` with the other knobs at
    /// their defaults.
    #[must_use]
    pub fn with_period(period: SimDuration) -> Self {
        TrafficConfig {
            period,
            ..TrafficConfig::default()
        }
    }

    /// How many bytes one direction of a link can carry in one period
    /// at the modelled capacity.
    #[must_use]
    pub fn capacity_bytes_per_period(&self) -> u64 {
        let bits = u128::from(self.link_capacity_bps) * u128::from(self.period.as_nanos());
        u64::try_from(bits / (8 * 1_000_000_000)).unwrap_or(u64::MAX)
    }
}

/// One flow the sampler planned for a round: population indices plus
/// the flow size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source index into [`TrafficState::population`].
    pub src: usize,
    /// Destination index into [`TrafficState::population`].
    pub dst: usize,
    /// Flow size in bytes.
    pub bytes: u64,
}

/// Per-device ECMP spread residue between two traffic ticks: bytes per
/// chosen egress member, counted only for forwards through groups with
/// at least two members.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EcmpResidue {
    /// Bytes per chosen egress interface since the last tick.
    pub by_iface: BTreeMap<u32, u64>,
    /// Largest ECMP group size observed since the last tick.
    pub members_max: u64,
}

/// A content digest of a FIB entry's next-hop set, used to detect that
/// a device's route for a prefix *changed* between two packets of the
/// same transient (the "rerouted" signal in rehearsal deltas). Pure
/// function of the entry, so every shard computes the same digest.
#[must_use]
pub fn entry_sig(entry: &FibEntry) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for hop in &entry.next_hops {
        h ^= (u64::from(hop.iface) << 32) | u64::from(hop.via.0);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ entry.next_hops.len() as u64
}

/// Live traffic-plane state inside a `ControlPlaneWorld`
/// (`crate::harness::ControlPlaneWorld`): utilisation gauges, flow SLO
/// windows, the congestion incident log, and the per-tick residues the
/// watchdogs evaluate. Cloned wholesale on fork; split and re-merged
/// around a parallel run (every keyed entry travels with the shard
/// owning its device, so gauges stay continuous and byte-identical).
#[derive(Debug, Clone)]
pub struct TrafficState {
    /// The active configuration (seed already resolved).
    pub cfg: TrafficConfig,
    /// Flow endpoints: every device with an OS at enable time, with its
    /// loopback address, sorted by device id. Replicated on every shard
    /// so flow sampling is a shard-independent pure function.
    pub population: Vec<(DeviceId, Ipv4Addr)>,
    /// Seeded profile split, parallel to `population`: `true` = server.
    pub servers: Vec<bool>,
    /// Per-pair flow gauges (reusing the health plane's rolling-window
    /// [`PairStats`]), keyed `(src, dst)`.
    pub pairs: BTreeMap<(DeviceId, DeviceId), PairStats>,
    /// Bytes transmitted per directional link since the last tick,
    /// keyed `(transmitting device, link)` — the over-subscription
    /// watchdog's residue, reset every tick.
    pub tx_since_tick: BTreeMap<(DeviceId, LinkId), u64>,
    /// Cumulative bytes transmitted per directional link.
    pub link_bytes: BTreeMap<(DeviceId, LinkId), u64>,
    /// Worst per-period byte count seen per directional link (the peak
    /// the utilisation report renders against capacity-per-period).
    pub link_peak: BTreeMap<(DeviceId, LinkId), u64>,
    /// Per-device ECMP spread residue, reset every tick.
    pub ecmp_since_tick: BTreeMap<DeviceId, EcmpResidue>,
    /// Last observed next-hop-set digest per `(device, prefix)` — the
    /// reroute detector's memory.
    pub route_sig: BTreeMap<(DeviceId, Ipv4Prefix), u64>,
    /// The congestion incident timeline, in deterministic order.
    pub incidents: Vec<Incident>,
    /// Total flows launched.
    pub flows_sent: u64,
    /// Total flows whose last byte reached the destination.
    pub flows_delivered: u64,
    /// Total flows lost en route (any cause).
    pub flows_lost: u64,
    /// Total flows that crossed a device whose route for the flow's
    /// destination had changed since last observed.
    pub flows_rerouted: u64,
    /// Bytes offered by launched flows.
    pub bytes_offered: u64,
    /// Bytes of delivered flows.
    pub bytes_delivered: u64,
    /// Bytes of lost flows.
    pub bytes_lost: u64,
    /// Per-round sampling seed base, derived once from
    /// [`TrafficConfig::seed`] at enable time.
    pub derived_seed: u64,
}

impl TrafficState {
    /// Fresh state over `population` (sorted by device id internally),
    /// with the server/user profile split drawn from the seed. When the
    /// population has at least two devices, at least one server and one
    /// user are forced so every round can sample flows.
    #[must_use]
    pub fn new(cfg: TrafficConfig, mut population: Vec<(DeviceId, Ipv4Addr)>) -> Self {
        population.sort_by_key(|(d, _)| d.0);
        let derived_seed = SimRng::for_component(cfg.seed, "traffic-flow").next_u64();
        let mut profile_rng = SimRng::for_component(cfg.seed, "traffic-profile");
        let mut servers: Vec<bool> = population
            .iter()
            .map(|_| profile_rng.below(100) < u64::from(cfg.server_share_pct))
            .collect();
        if servers.len() >= 2 {
            if !servers.iter().any(|s| *s) {
                servers[0] = true;
            }
            if servers.iter().all(|s| *s) {
                let last = servers.len() - 1;
                servers[last] = false;
            }
        }
        TrafficState {
            cfg,
            population,
            servers,
            pairs: BTreeMap::new(),
            tx_since_tick: BTreeMap::new(),
            link_bytes: BTreeMap::new(),
            link_peak: BTreeMap::new(),
            ecmp_since_tick: BTreeMap::new(),
            route_sig: BTreeMap::new(),
            incidents: Vec::new(),
            flows_sent: 0,
            flows_delivered: 0,
            flows_lost: 0,
            flows_rerouted: 0,
            bytes_offered: 0,
            bytes_delivered: 0,
            bytes_lost: 0,
            derived_seed,
        }
    }

    /// The flows round `round` launches: a pure function of
    /// `(derived_seed, round)`, independent of shard layout and of every
    /// other round. Even-indexed flows are user→server requests,
    /// odd-indexed flows server→user responses (Elvis-style paired
    /// request/response traffic at flow granularity).
    #[must_use]
    pub fn sample_flows(&self, round: u64) -> Vec<FlowSpec> {
        let servers: Vec<usize> = (0..self.population.len())
            .filter(|i| self.servers[*i])
            .collect();
        let users: Vec<usize> = (0..self.population.len())
            .filter(|i| !self.servers[*i])
            .collect();
        if servers.is_empty() || users.is_empty() {
            return Vec::new();
        }
        let mut rng =
            SimRng::from_seed(self.derived_seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        (0..self.cfg.flows_per_round)
            .map(|i| {
                let s = servers[rng.below(servers.len() as u64) as usize];
                let u = users[rng.below(users.len() as u64) as usize];
                if i % 2 == 0 {
                    FlowSpec {
                        src: u,
                        dst: s,
                        bytes: self.cfg.request_bytes,
                    }
                } else {
                    FlowSpec {
                        src: s,
                        dst: u,
                        bytes: self.cfg.response_bytes,
                    }
                }
            })
            .collect()
    }

    /// Records that `dev` observed next-hop digest `sig` for `prefix`
    /// and reports whether that *differs* from the previous observation
    /// (first observations prime silently). Drives the "rerouted during
    /// the transient" counter.
    pub fn note_route(&mut self, dev: DeviceId, prefix: Ipv4Prefix, sig: u64) -> bool {
        match self.route_sig.insert((dev, prefix), sig) {
            Some(prev) => prev != sig,
            None => false,
        }
    }

    /// Splits off the state a parallel shard carries: full config,
    /// population, and profile split (flow sampling must replay
    /// identically everywhere), the live pair stats whose *source* the
    /// shard owns, every device-keyed gauge and residue for owned
    /// devices, and zeroed totals/incidents (merged back additively at
    /// the join).
    #[must_use]
    pub fn fork_for_shard(&self, owns: impl Fn(DeviceId) -> bool) -> TrafficState {
        TrafficState {
            cfg: self.cfg.clone(),
            population: self.population.clone(),
            servers: self.servers.clone(),
            pairs: self
                .pairs
                .iter()
                .filter(|((src, _), _)| owns(*src))
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            tx_since_tick: filter_keyed(&self.tx_since_tick, &owns),
            link_bytes: filter_keyed(&self.link_bytes, &owns),
            link_peak: filter_keyed(&self.link_peak, &owns),
            ecmp_since_tick: self
                .ecmp_since_tick
                .iter()
                .filter(|(d, _)| owns(**d))
                .map(|(d, r)| (*d, r.clone()))
                .collect(),
            route_sig: self
                .route_sig
                .iter()
                .filter(|((d, _), _)| owns(*d))
                .map(|(k, v)| (*k, *v))
                .collect(),
            incidents: Vec::new(),
            flows_sent: 0,
            flows_delivered: 0,
            flows_lost: 0,
            flows_rerouted: 0,
            bytes_offered: 0,
            bytes_delivered: 0,
            bytes_lost: 0,
            derived_seed: self.derived_seed,
        }
    }

    /// Folds a shard's state back in after a parallel run: keyed
    /// entries replace the serial ones (each key is exclusively owned
    /// by one shard, which carried the live continuation), totals add,
    /// incidents accumulate for a single deterministic sort by the
    /// caller.
    pub fn absorb_shard(&mut self, shard: TrafficState) {
        for (k, v) in shard.pairs {
            self.pairs.insert(k, v);
        }
        for (k, v) in shard.tx_since_tick {
            self.tx_since_tick.insert(k, v);
        }
        for (k, v) in shard.link_bytes {
            self.link_bytes.insert(k, v);
        }
        for (k, v) in shard.link_peak {
            self.link_peak.insert(k, v);
        }
        for (k, v) in shard.ecmp_since_tick {
            self.ecmp_since_tick.insert(k, v);
        }
        for (k, v) in shard.route_sig {
            self.route_sig.insert(k, v);
        }
        self.flows_sent += shard.flows_sent;
        self.flows_delivered += shard.flows_delivered;
        self.flows_lost += shard.flows_lost;
        self.flows_rerouted += shard.flows_rerouted;
        self.bytes_offered += shard.bytes_offered;
        self.bytes_delivered += shard.bytes_delivered;
        self.bytes_lost += shard.bytes_lost;
        self.incidents.extend(shard.incidents);
    }

    /// Restores the deterministic timeline order after shard incident
    /// lists were concatenated.
    pub fn sort_incidents(&mut self) {
        self.incidents.sort_by_key(Incident::sort_key);
    }
}

/// Filters a `(device, link)`-keyed map down to the entries whose
/// device `owns` claims.
fn filter_keyed<V: Clone>(
    map: &BTreeMap<(DeviceId, LinkId), V>,
    owns: impl Fn(DeviceId) -> bool,
) -> BTreeMap<(DeviceId, LinkId), V> {
    map.iter()
        .filter(|((d, _), _)| owns(*d))
        .map(|(k, v)| (*k, v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystalnet_dataplane::NextHop;

    fn pop(n: u32) -> Vec<(DeviceId, Ipv4Addr)> {
        (0..n)
            .map(|i| (DeviceId(i), Ipv4Addr(0x0a00_0000 + i)))
            .collect()
    }

    #[test]
    fn flow_sampling_is_deterministic_and_respects_profiles() {
        let t = TrafficState::new(
            TrafficConfig {
                flows_per_round: 64,
                seed: 7,
                ..TrafficConfig::default()
            },
            pop(9),
        );
        let a = t.sample_flows(3);
        assert_eq!(a, t.sample_flows(3), "same round samples the same flows");
        assert_ne!(t.sample_flows(4), a, "rounds sample independently");
        for (i, f) in a.iter().enumerate() {
            assert_ne!(f.src, f.dst, "profiles are disjoint: no self-flows");
            let (from_user, size) = if i % 2 == 0 {
                (true, t.cfg.request_bytes)
            } else {
                (false, t.cfg.response_bytes)
            };
            assert_eq!(f.bytes, size);
            assert_eq!(t.servers[f.src], !from_user, "src profile matches parity");
            assert_eq!(t.servers[f.dst], from_user, "dst profile matches parity");
        }
    }

    #[test]
    fn profile_split_always_has_both_roles_when_possible() {
        for share in [0u8, 100] {
            let t = TrafficState::new(
                TrafficConfig {
                    server_share_pct: share,
                    ..TrafficConfig::default()
                },
                pop(5),
            );
            assert!(
                t.servers.iter().any(|s| *s),
                "share {share}: a server exists"
            );
            assert!(
                t.servers.iter().any(|s| !*s),
                "share {share}: a user exists"
            );
            assert!(!t.sample_flows(0).is_empty());
        }
        let t = TrafficState::new(TrafficConfig::default(), pop(1));
        assert!(t.sample_flows(0).is_empty(), "one device cannot flow");
    }

    #[test]
    fn capacity_per_period_scales_with_period() {
        let cfg = TrafficConfig {
            link_capacity_bps: 8_000_000_000,
            period: SimDuration::from_secs(2),
            ..TrafficConfig::default()
        };
        assert_eq!(cfg.capacity_bytes_per_period(), 2_000_000_000);
    }

    #[test]
    fn entry_sig_tracks_next_hop_set_content() {
        let mk = |hops: &[(u32, u32)]| FibEntry {
            next_hops: hops
                .iter()
                .map(|&(iface, via)| NextHop {
                    iface,
                    via: Ipv4Addr(via),
                })
                .collect(),
        };
        let a = mk(&[(1, 10), (2, 20)]);
        assert_eq!(entry_sig(&a), entry_sig(&a.clone()));
        assert_ne!(entry_sig(&a), entry_sig(&mk(&[(1, 10)])));
        assert_ne!(entry_sig(&a), entry_sig(&mk(&[(1, 10), (3, 20)])));
    }

    #[test]
    fn shard_split_travels_device_keyed_state_and_merges_totals() {
        let mut t = TrafficState::new(TrafficConfig::default(), pop(4));
        let l = LinkId(9);
        t.tx_since_tick.insert((DeviceId(1), l), 500);
        t.tx_since_tick.insert((DeviceId(3), l), 700);
        t.link_peak.insert((DeviceId(1), l), 500);
        t.route_sig
            .insert((DeviceId(1), Ipv4Prefix::new(Ipv4Addr(0), 0)), 42);
        t.pairs.entry((DeviceId(1), DeviceId(2))).or_default().sent = 3;

        let mut shard = t.fork_for_shard(|d| d.0 < 2);
        assert_eq!(shard.tx_since_tick.get(&(DeviceId(1), l)), Some(&500));
        assert_eq!(shard.tx_since_tick.get(&(DeviceId(3), l)), None);
        assert_eq!(shard.pairs.len(), 1, "pair travels with its source");
        assert_eq!(shard.route_sig.len(), 1);

        shard.flows_sent = 2;
        shard.tx_since_tick.insert((DeviceId(1), l), 900);
        t.absorb_shard(shard);
        assert_eq!(t.flows_sent, 2);
        assert_eq!(
            t.tx_since_tick.get(&(DeviceId(1), l)),
            Some(&900),
            "owned keys replace"
        );
        assert_eq!(
            t.tx_since_tick.get(&(DeviceId(3), l)),
            Some(&700),
            "unowned keys survive"
        );
    }

    #[test]
    fn note_route_primes_then_flags_changes() {
        let mut t = TrafficState::new(TrafficConfig::default(), pop(2));
        let p = Ipv4Prefix::new(Ipv4Addr(0x0a00_0000), 24);
        assert!(!t.note_route(DeviceId(0), p, 1), "first observation primes");
        assert!(!t.note_route(DeviceId(0), p, 1), "unchanged route is quiet");
        assert!(t.note_route(DeviceId(0), p, 2), "changed digest flags");
        assert!(!t.note_route(DeviceId(0), p, 2), "and re-primes");
    }
}
