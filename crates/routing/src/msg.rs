//! Control-plane and data-plane messages carried over virtual links.
//!
//! The emulation's virtual links carry two traffic classes: control
//! messages (BGP/OSPF sessions between device firmwares) and data packets
//! (operator-injected probes, ARP). Control messages travel as structured
//! values shared via `Arc` — one allocation per announcement batch no
//! matter how many links it crosses — while data packets use the real wire
//! encodings from `crystalnet-dataplane`.

use crate::attrs::PathAttrs;
use crate::provenance::Provenance;
use crystalnet_dataplane::{ArpMessage, Ipv4Packet};
use crystalnet_net::{Asn, Ipv4Addr, Ipv4Prefix};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A BGP message (RFC 4271 shapes, simplified to the fields the decision
/// process consumes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BgpMsg {
    /// Session open.
    Open {
        /// Sender AS.
        asn: Asn,
        /// Sender router id.
        router_id: Ipv4Addr,
        /// Proposed hold time in seconds; `0` disables keepalive policing
        /// (used by static speakers, which must never tear sessions down).
        hold_secs: u16,
        /// Identity of the sender's control-plane incarnation (models the
        /// TCP connection): a peer seeing a *new* token knows the sender
        /// restarted and must flush the session; a repeated token is the
        /// same session (duplicate Open exchange) and is ignored.
        session_token: u64,
    },
    /// Route advertisement/withdrawal. Announcements share attribute and
    /// provenance objects; real BGP packs many prefixes per UPDATE the
    /// same way.
    Update {
        /// Newly announced prefixes with their attributes and the causal
        /// chain that produced them (both interned, so the fan-out cost
        /// per link is two `Arc` clones per prefix).
        announced: Vec<(Ipv4Prefix, Arc<PathAttrs>, Arc<Provenance>)>,
        /// Withdrawn prefixes.
        withdrawn: Vec<Ipv4Prefix>,
    },
    /// Session keepalive.
    Keepalive,
    /// Route-refresh request (RFC 2918 shape): "re-send me everything you
    /// advertised on this session". Sent after a soft policy refresh —
    /// the receiver's Adj-RIB-In holds only *post*-import-policy routes,
    /// so relaxing an inbound policy needs the peer to replay its
    /// announcements. Replays are attribute-identical for unchanged
    /// routes and deduplicated on receipt, so the refresh is idempotent.
    RouteRefresh,
    /// Fatal notification; the session closes.
    Notification {
        /// RFC 4271 error code.
        code: u8,
    },
}

impl BgpMsg {
    /// Number of route operations this message carries (for CPU costing).
    #[must_use]
    pub fn route_ops(&self) -> usize {
        match self {
            BgpMsg::Update {
                announced,
                withdrawn,
            } => announced.len() + withdrawn.len(),
            _ => 1,
        }
    }
}

/// An OSPF message (v2 shapes, single area).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OspfMsg {
    /// Neighbor discovery and DR/BDR election input.
    Hello {
        /// Sender router id.
        router_id: Ipv4Addr,
        /// Sender priority (0 = never DR).
        priority: u8,
        /// Neighbors the sender has heard from.
        seen: Vec<Ipv4Addr>,
    },
    /// Link-state advertisement flood.
    Lsa(Arc<crate::ospf::RouterLsa>),
    /// Acknowledgement of an LSA.
    LsAck {
        /// Originating router of the acknowledged LSA.
        origin: Ipv4Addr,
        /// Acknowledged sequence number.
        seq: u32,
    },
}

/// Anything that traverses a virtual link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Frame {
    /// BGP control traffic.
    Bgp(BgpMsg),
    /// OSPF control traffic.
    Ospf(OspfMsg),
    /// ARP request/reply.
    Arp(ArpMessage),
    /// An IPv4 data packet (probe/telemetry traffic).
    Data(Ipv4Packet),
}

impl Frame {
    /// Short label for logs and traces.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Bgp(_) => "bgp",
            Frame::Ospf(_) => "ospf",
            Frame::Arp(_) => "arp",
            Frame::Data(_) => "data",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_prov() -> Arc<Provenance> {
        Provenance::originated(
            crate::provenance::OriginKind::Network,
            Ipv4Addr(1),
            crystalnet_sim::EventId::ZERO,
        )
    }

    #[test]
    fn update_route_ops() {
        let attrs = Arc::new(PathAttrs::originated(Ipv4Addr(1)));
        let prov = test_prov();
        let m = BgpMsg::Update {
            announced: vec![
                ("10.0.0.0/24".parse().unwrap(), attrs.clone(), prov.clone()),
                ("10.0.1.0/24".parse().unwrap(), attrs, prov),
            ],
            withdrawn: vec!["10.0.2.0/24".parse().unwrap()],
        };
        assert_eq!(m.route_ops(), 3);
        assert_eq!(BgpMsg::Keepalive.route_ops(), 1);
    }

    #[test]
    fn frame_kinds() {
        assert_eq!(Frame::Bgp(BgpMsg::Keepalive).kind(), "bgp");
        let arp = ArpMessage {
            is_request: true,
            sender_ip: Ipv4Addr(1),
            sender_mac: crystalnet_net::MacAddr::from_id(1),
            target_ip: Ipv4Addr(2),
        };
        assert_eq!(Frame::Arp(arp).kind(), "arp");
    }

    #[test]
    fn shared_attrs_are_cheap_to_fan_out() {
        let attrs = Arc::new(PathAttrs::originated(Ipv4Addr(1)));
        let prov = test_prov();
        let updates: Vec<BgpMsg> = (0..100)
            .map(|_| BgpMsg::Update {
                announced: vec![("10.0.0.0/24".parse().unwrap(), attrs.clone(), prov.clone())],
                withdrawn: vec![],
            })
            .collect();
        assert_eq!(Arc::strong_count(&attrs), 101);
        drop(updates);
        assert_eq!(Arc::strong_count(&attrs), 1);
    }
}
