//! The control-plane simulation harness: wires device OSes together over a
//! topology and runs them to convergence in virtual time.
//!
//! This is the engine room shared by the boundary differential validator
//! and the orchestrator: device firmwares ([`DeviceOs`]) exchange frames
//! over the topology's links, processing costs and link latencies are
//! provided by a pluggable [`WorkModel`] (the orchestrator plugs in one
//! backed by per-VM CPU servers, which is where Figure 9's curves come
//! from), and convergence is detected by route-activity quiescence —
//! matching the paper's route-ready definition, "the moment when all
//! routes are installed and stabilized in all switches" (§8.1).

use crate::os::{DeviceOs, MgmtCommand, MgmtResponse, OsActions, OsEvent};
use crystalnet_dataplane::{decide, Fib, ForwardDecision, Ipv4Packet};
use crystalnet_net::{DeviceId, LinkId, Topology};
use crystalnet_sim::{Engine, SimDuration, SimTime};
use std::collections::HashMap;

/// Work classes a device performs (costed by the [`WorkModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Firmware boot.
    Boot,
    /// Handling an event that touched `n` routes.
    RouteOps(usize),
}

/// Provides processing-completion times and link latencies.
///
/// The plain harness uses [`UniformWorkModel`]; the orchestrator
/// substitutes a model that queues work on the hosting VM's CPU cores,
/// coupling convergence time to VM packing density.
pub trait WorkModel {
    /// When work of `kind` submitted by `dev` at `now` completes.
    fn completion(&mut self, dev: DeviceId, kind: WorkKind, now: SimTime) -> SimTime;
    /// One-way delay of a frame sent on `link` at `now`. Implementations
    /// may charge encap/decap CPU to the hosting VMs here.
    fn link_delay(&mut self, link: LinkId, now: SimTime) -> SimDuration;
    /// Downcasting hook so orchestration layers can reach their concrete
    /// model (e.g. to install per-device cost tables after construction).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Fixed-cost work model for protocol-level tests.
#[derive(Debug, Clone)]
pub struct UniformWorkModel {
    /// CPU time per route operation.
    pub per_route_op: SimDuration,
    /// Boot duration.
    pub boot: SimDuration,
    /// One-way link latency.
    pub latency: SimDuration,
}

impl Default for UniformWorkModel {
    fn default() -> Self {
        UniformWorkModel {
            per_route_op: SimDuration::from_micros(2),
            boot: SimDuration::from_secs(30),
            latency: SimDuration::from_micros(50),
        }
    }
}

impl WorkModel for UniformWorkModel {
    fn completion(&mut self, _dev: DeviceId, kind: WorkKind, now: SimTime) -> SimTime {
        match kind {
            WorkKind::Boot => now + self.boot,
            WorkKind::RouteOps(n) => now + self.per_route_op * (n as u64),
        }
    }

    fn link_delay(&mut self, _link: LinkId, _now: SimTime) -> SimDuration {
        self.latency
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Adjacency {
    remote_dev: DeviceId,
    remote_iface: u32,
    link: LinkId,
}

/// The simulated world: OS instances plus wiring.
pub struct ControlPlaneWorld {
    oses: Vec<Option<Box<dyn DeviceOs>>>,
    booted: Vec<bool>,
    /// adjacency[device][iface] (None when unwired).
    adjacency: Vec<Vec<Option<Adjacency>>>,
    link_up: HashMap<LinkId, bool>,
    work: Box<dyn WorkModel>,
    /// Completion time of the last event that changed routes.
    pub last_route_activity: SimTime,
    /// Total route operations performed across all devices.
    pub route_ops_total: u64,
    /// Per-device route-operation counters (diagnostics).
    pub route_ops_by_dev: HashMap<DeviceId, u64>,
    /// Devices that crashed while handling events (health-monitor feed).
    pub crashes: Vec<(SimTime, DeviceId)>,
    /// Responses to asynchronously delivered management commands.
    pub mgmt_responses: Vec<(DeviceId, MgmtResponse)>,
    /// Scheduled events that can still cause route activity (frames in
    /// flight, pending boots, link changes). Pure timers are excluded.
    /// `run_until_quiet` only declares convergence when this hits zero.
    causal_pending: u64,
}

impl ControlPlaneWorld {
    /// Mutable access to the work model (orchestrator hook).
    pub fn work_mut(&mut self) -> &mut dyn WorkModel {
        &mut *self.work
    }
}

/// The control-plane simulation: an [`Engine`] over [`ControlPlaneWorld`].
pub struct ControlPlaneSim {
    /// The event engine (exposed for orchestration layers).
    pub engine: Engine<ControlPlaneWorld>,
}

impl ControlPlaneSim {
    /// An empty harness wired to `topo`'s links.
    #[must_use]
    pub fn new(topo: &Topology, work: Box<dyn WorkModel>) -> Self {
        let n = topo.device_count();
        let mut adjacency: Vec<Vec<Option<Adjacency>>> = (0..n)
            .map(|i| {
                let dev = topo.device(DeviceId(i as u32));
                (0..dev.ifaces.len()).map(|_| None).collect()
            })
            .collect();
        let mut link_up = HashMap::new();
        for (lid, link) in topo.links() {
            link_up.insert(lid, true);
            adjacency[link.a.device.index()][link.a.iface as usize] = Some(Adjacency {
                remote_dev: link.b.device,
                remote_iface: link.b.iface,
                link: lid,
            });
            adjacency[link.b.device.index()][link.b.iface as usize] = Some(Adjacency {
                remote_dev: link.a.device,
                remote_iface: link.a.iface,
                link: lid,
            });
        }
        ControlPlaneSim {
            engine: Engine::new(ControlPlaneWorld {
                oses: (0..n).map(|_| None).collect(),
                booted: vec![false; n],
                adjacency,
                link_up,
                work,
                last_route_activity: SimTime::ZERO,
                route_ops_total: 0,
                route_ops_by_dev: HashMap::new(),
                crashes: Vec::new(),
                mgmt_responses: Vec::new(),
                causal_pending: 0,
            }),
        }
    }

    /// Installs a firmware instance on `dev` (not yet booted).
    pub fn add_os(&mut self, dev: DeviceId, os: Box<dyn DeviceOs>) {
        self.engine.world.oses[dev.index()] = Some(os);
    }

    /// Schedules `dev` to boot at `at` (firmware boot latency is added by
    /// the work model).
    pub fn boot_device(&mut self, dev: DeviceId, at: SimTime) {
        self.engine.world.causal_pending += 1;
        self.engine.schedule_at(at, move |e| {
            let ready = e.world.work.completion(dev, WorkKind::Boot, e.now());
            e.schedule_at(ready, move |e| {
                e.world.causal_pending -= 1;
                e.world.booted[dev.index()] = true;
                dispatch(e, dev, OsEvent::Boot);
            });
        });
    }

    /// Boots every device with an installed OS at `at`.
    pub fn boot_all(&mut self, at: SimTime) {
        let devs: Vec<DeviceId> = self
            .engine
            .world
            .oses
            .iter()
            .enumerate()
            .filter(|(_, os)| os.is_some())
            .map(|(i, _)| DeviceId(i as u32))
            .collect();
        for dev in devs {
            self.boot_device(dev, at);
        }
    }

    /// Takes a link down at `at`: both ends get `LinkDown`, and in-flight
    /// frames on the link are dropped from then on.
    pub fn link_down(&mut self, topo_link: (DeviceId, u32, DeviceId, u32, LinkId), at: SimTime) {
        let (a, ia, b, ib, lid) = topo_link;
        self.engine.world.causal_pending += 1;
        self.engine.schedule_at(at, move |e| {
            e.world.causal_pending -= 1;
            e.world.link_up.insert(lid, false);
            dispatch(e, a, OsEvent::LinkDown(ia));
            dispatch(e, b, OsEvent::LinkDown(ib));
        });
    }

    /// Brings a link back up at `at`.
    pub fn link_up(&mut self, topo_link: (DeviceId, u32, DeviceId, u32, LinkId), at: SimTime) {
        let (a, ia, b, ib, lid) = topo_link;
        self.engine.world.causal_pending += 1;
        self.engine.schedule_at(at, move |e| {
            e.world.causal_pending -= 1;
            e.world.link_up.insert(lid, true);
            dispatch(e, a, OsEvent::LinkUp(ia));
            dispatch(e, b, OsEvent::LinkUp(ib));
        });
    }

    /// Resolves a link's endpoints for [`Self::link_down`]/[`Self::link_up`].
    #[must_use]
    pub fn link_endpoints(topo: &Topology, lid: LinkId) -> (DeviceId, u32, DeviceId, u32, LinkId) {
        let link = topo.link(lid);
        (
            link.a.device,
            link.a.iface,
            link.b.device,
            link.b.iface,
            lid,
        )
    }

    /// Delivers a management command at `at`; the response lands in
    /// [`ControlPlaneWorld::mgmt_responses`].
    pub fn mgmt(&mut self, dev: DeviceId, cmd: MgmtCommand, at: SimTime) {
        self.engine.world.causal_pending += 1;
        self.engine.schedule_at(at, move |e| {
            e.world.causal_pending -= 1;
            dispatch(e, dev, OsEvent::Mgmt(cmd));
        });
    }

    /// Synchronously executes a management command right now and returns
    /// the response (the jumpbox SSH round trip is treated as instant).
    pub fn mgmt_sync(&mut self, dev: DeviceId, cmd: MgmtCommand) -> Option<MgmtResponse> {
        let before = self.engine.world.mgmt_responses.len();
        dispatch(&mut self.engine, dev, OsEvent::Mgmt(cmd));
        self.engine
            .world
            .mgmt_responses
            .get(before)
            .map(|(_, r)| r.clone())
    }

    /// Runs until no route activity occurs within `quiet` of the last
    /// route change, or gives up past `deadline`.
    ///
    /// Returns the route-ready instant (the completion time of the last
    /// route-changing work) on convergence; `None` on deadline overrun.
    pub fn run_until_quiet(&mut self, quiet: SimDuration, deadline: SimTime) -> Option<SimTime> {
        loop {
            if self.engine.now() > deadline {
                return None;
            }
            let last = self.engine.world.last_route_activity;
            match self.engine.next_event_time() {
                // Nothing left to happen: converged.
                None => return Some(last),
                // Only pure timers remain and the next one lies beyond
                // the quiet horizon: every causal chain has played out.
                Some(t) if self.engine.world.causal_pending == 0 && t > last + quiet => {
                    return Some(last)
                }
                Some(_) => {
                    self.engine.step();
                }
            }
        }
    }

    /// The FIB of `dev`.
    #[must_use]
    pub fn fib(&self, dev: DeviceId) -> Option<&Fib> {
        self.engine.world.oses[dev.index()]
            .as_deref()
            .map(|os| os.fib())
    }

    /// The OS instance on `dev`.
    #[must_use]
    pub fn os(&self, dev: DeviceId) -> Option<&dyn DeviceOs> {
        self.engine.world.oses[dev.index()].as_deref()
    }

    /// Mutable OS access (test instrumentation).
    pub fn os_mut(&mut self, dev: DeviceId) -> Option<&mut Box<dyn DeviceOs>> {
        self.engine.world.oses[dev.index()].as_mut()
    }

    /// Powers a device's sandbox off instantly (VM failure, kill):
    /// frames stop reaching it until a later [`Self::boot_device`].
    pub fn power_off(&mut self, dev: DeviceId) {
        self.engine.world.booted[dev.index()] = false;
    }

    /// Replaces a device's OS instance (used when a VM is rebuilt and its
    /// sandboxes restart from scratch). The device must be re-booted.
    pub fn replace_os(&mut self, dev: DeviceId, os: Box<dyn DeviceOs>) {
        self.engine.world.booted[dev.index()] = false;
        self.engine.world.oses[dev.index()] = Some(os);
    }

    /// Whether `dev` booted and is still up.
    #[must_use]
    pub fn is_up(&self, dev: DeviceId) -> bool {
        self.engine.world.booted[dev.index()] && self.os(dev).is_some_and(|os| !os.is_down())
    }

    /// Synchronously traces `packet` hop by hop from `from` using the
    /// current FIBs (the `InjectPackets` + `PullPackets` path over a
    /// converged network). Returns the device path and the final fate.
    pub fn trace_packet(
        &self,
        from: DeviceId,
        packet: &Ipv4Packet,
    ) -> (Vec<DeviceId>, ForwardDecision) {
        let mut path = vec![from];
        let mut current = from;
        let mut ingress: Option<u32> = None;
        let mut pkt = packet.clone();
        let mut last = ForwardDecision::DropNoRoute;
        // TTL bounds the walk, but guard against accidental loops anyway.
        for _ in 0..512 {
            let world = &self.engine.world;
            let Some(os) = world.oses[current.index()].as_deref() else {
                return (path, ForwardDecision::DropNoRoute);
            };
            if !world.booted[current.index()] || os.is_down() {
                return (path, ForwardDecision::DropNoRoute);
            }
            let locals = os.local_addrs();
            let decision = decide(os.fib(), &locals, &pkt, |src, dst| {
                os.filter_permits(ingress, src, dst)
            });
            last = decision;
            match decision {
                ForwardDecision::Forward(hop) => {
                    if hop.iface == crate::bgp::LOCAL_IFACE {
                        // Locally attached subnet: delivered here.
                        return (path, ForwardDecision::Deliver);
                    }
                    let Some(Some(adj)) = world.adjacency[current.index()].get(hop.iface as usize)
                    else {
                        return (path, ForwardDecision::DropNoRoute);
                    };
                    if !world.link_up.get(&adj.link).copied().unwrap_or(false) {
                        return (path, ForwardDecision::DropNoRoute);
                    }
                    let Some(next_pkt) = pkt.forwarded() else {
                        return (path, ForwardDecision::DropTtlExpired);
                    };
                    pkt = next_pkt;
                    current = adj.remote_dev;
                    ingress = Some(adj.remote_iface);
                    path.push(current);
                }
                _ => return (path, decision),
            }
        }
        (path, last)
    }
}

/// Core dispatcher: feeds `event` to `dev`'s OS and schedules the actions.
fn dispatch(e: &mut Engine<ControlPlaneWorld>, dev: DeviceId, event: OsEvent) {
    let now = e.now();
    let idx = dev.index();
    let actions: OsActions = {
        let world = &mut e.world;
        let Some(os) = world.oses[idx].as_mut() else {
            return;
        };
        // Frames reach only booted devices; timers/mgmt likewise.
        let is_boot = matches!(event, OsEvent::Boot);
        if !is_boot && !world.booted[idx] {
            return;
        }
        os.handle(now, event)
    };
    let done = if actions.route_ops > 0 {
        let t = e
            .world
            .work
            .completion(dev, WorkKind::RouteOps(actions.route_ops), now);
        e.world.route_ops_total += actions.route_ops as u64;
        *e.world.route_ops_by_dev.entry(dev).or_insert(0) += actions.route_ops as u64;
        e.world.last_route_activity = e.world.last_route_activity.max(t);
        t
    } else {
        now
    };
    if actions.crashed {
        e.world.crashes.push((now, dev));
    }
    if let Some(resp) = actions.response {
        e.world.mgmt_responses.push((dev, resp));
    }
    for (delay, kind) in actions.timers {
        e.schedule_at(done + delay, move |e| {
            dispatch(e, dev, OsEvent::Timer(kind));
        });
    }
    for (iface, frame) in actions.out {
        let Some(Some(adj)) = e.world.adjacency[idx].get(iface as usize) else {
            continue;
        };
        let (rdev, riface, link) = (adj.remote_dev, adj.remote_iface, adj.link);
        if !e.world.link_up.get(&link).copied().unwrap_or(false) {
            continue;
        }
        let arrive = done + e.world.work.link_delay(link, done);
        e.world.causal_pending += 1;
        e.schedule_at(arrive, move |e| {
            e.world.causal_pending -= 1;
            // Re-check link state at delivery time.
            if e.world.link_up.get(&link).copied().unwrap_or(false) {
                dispatch(
                    e,
                    rdev,
                    OsEvent::Frame {
                        iface: riface,
                        frame,
                    },
                );
            }
        });
    }
}

/// Builds a harness where every device in `topo` runs a BGP firmware
/// image generated from its production configuration, with the vendor
/// profile chosen by `profile_for`.
///
/// Devices for which `profile_for` returns `None` get no OS (useful for
/// leaving externals dark or substituting speakers).
pub fn build_bgp_sim(
    topo: &Topology,
    work: Box<dyn WorkModel>,
    mut profile_for: impl FnMut(
        DeviceId,
        &crystalnet_net::Device,
    ) -> Option<crate::vendor::VendorProfile>,
) -> ControlPlaneSim {
    let mut sim = ControlPlaneSim::new(topo, work);
    for (id, dev) in topo.devices() {
        if let Some(profile) = profile_for(id, dev) {
            let cfg = crystalnet_config::generate_device(topo, id);
            let os = crate::bgp::BgpRouterOs::new(profile, cfg, dev.loopback);
            sim.add_os(id, Box::new(os));
        }
    }
    sim
}

/// [`build_bgp_sim`] with every device (externals included) running the
/// released profile of its own vendor — the "production ground truth"
/// configuration used for speaker synthesis and differential validation.
pub fn build_full_bgp_sim(topo: &Topology, work: Box<dyn WorkModel>) -> ControlPlaneSim {
    build_bgp_sim(topo, work, |_, dev| {
        Some(crate::vendor::VendorProfile::for_vendor(dev.vendor))
    })
}
