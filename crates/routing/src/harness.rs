//! The control-plane simulation harness: wires device OSes together over a
//! topology and runs them to convergence in virtual time.
//!
//! This is the engine room shared by the boundary differential validator
//! and the orchestrator: device firmwares ([`DeviceOs`]) exchange frames
//! over the topology's links, processing costs and link latencies are
//! provided by a pluggable [`WorkModel`] (the orchestrator plugs in one
//! backed by per-VM CPU servers, which is where Figure 9's curves come
//! from), and convergence is detected by route-activity quiescence —
//! matching the paper's route-ready definition, "the moment when all
//! routes are installed and stabilized in all switches" (§8.1).

use crate::health::{
    GrayFailureWitness, HealthState, Incident, IncidentKind, ProbeConfig, ProbeOutcome,
};
use crate::msg::{BgpMsg, Frame};
use crate::os::{DeviceOs, MgmtCommand, MgmtResponse, OsActions, OsEvent, TimerKind};
use crate::traffic::{entry_sig, TrafficConfig, TrafficState};
use crystalnet_dataplane::{decide, Fib, ForwardDecision, Ipv4Packet};
use crystalnet_net::{DeviceId, Ipv4Addr, Ipv4Prefix, LinkId, Partition, Topology};
use crystalnet_sim::parallel::{
    run_shards_until_quiet_matrix_profiled, GrantRecord, Limiter, LookaheadMatrix, ParallelProfile,
    ParallelWorld,
};
use crystalnet_sim::{Engine, EventFire, EventId, SimDuration, SimTime};
use crystalnet_telemetry::profile::keys;
use crystalnet_telemetry::{
    BlameBreakdown, CriticalLink, FieldValue, NoopRecorder, Recorder, ScalingDiagnosis, ShardLoad,
    TraceRecord,
};
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

/// Work classes a device performs (costed by the [`WorkModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Firmware boot.
    Boot,
    /// Handling an event that touched `n` routes.
    RouteOps(usize),
}

/// Provides processing-completion times and link latencies.
///
/// The plain harness uses [`UniformWorkModel`]; the orchestrator
/// substitutes a model that queues work on the hosting VM's CPU cores,
/// coupling convergence time to VM packing density.
pub trait WorkModel: Send {
    /// When work of `kind` submitted by `dev` at `now` completes.
    fn completion(&mut self, dev: DeviceId, kind: WorkKind, now: SimTime) -> SimTime;
    /// One-way delay of a frame sent on `link` at `now`. Implementations
    /// may charge encap/decap CPU to the hosting VMs here.
    fn link_delay(&mut self, link: LinkId, now: SimTime) -> SimDuration;
    /// Downcasting hook so orchestration layers can reach their concrete
    /// model (e.g. to install per-device cost tables after construction).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Shared-reference downcasting hook; lets a fork read the live
    /// model (to deep-copy it) without exclusive access to the world.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Fixed-cost work model for protocol-level tests.
#[derive(Debug, Clone)]
pub struct UniformWorkModel {
    /// CPU time per route operation.
    pub per_route_op: SimDuration,
    /// Boot duration.
    pub boot: SimDuration,
    /// One-way link latency.
    pub latency: SimDuration,
}

impl Default for UniformWorkModel {
    fn default() -> Self {
        UniformWorkModel {
            per_route_op: SimDuration::from_micros(2),
            boot: SimDuration::from_secs(30),
            latency: SimDuration::from_micros(50),
        }
    }
}

impl WorkModel for UniformWorkModel {
    fn completion(&mut self, _dev: DeviceId, kind: WorkKind, now: SimTime) -> SimTime {
        match kind {
            WorkKind::Boot => now + self.boot,
            WorkKind::RouteOps(n) => now + self.per_route_op * (n as u64),
        }
    }

    fn link_delay(&mut self, _link: LinkId, _now: SimTime) -> SimDuration {
        self.latency
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[derive(Clone, Copy)]
struct Adjacency {
    remote_dev: DeviceId,
    remote_iface: u32,
    link: LinkId,
}

/// Parallel-mode wiring: which shard owns each device, which shard this
/// world is, and the outbox of cross-shard events (drained at window
/// barriers). `None` in serial mode.
struct ShardRoute {
    self_shard: usize,
    shard_of: Vec<usize>,
    outbox: Vec<(usize, SimTime, HarnessEvent)>,
}

/// A typed harness event: no per-event heap allocation or dynamic
/// dispatch, and a content-derived tie-break key.
///
/// Keys are `(source + 1) << 32 | per-source counter` for device-sourced
/// events (frame deliveries, timers, boot completions — keyed by the
/// *emitting* device) and a plain counter for control-plane-script events
/// (boots, link flaps, management injections). Every key is globally
/// unique, so `(time, key)` totally orders harness events regardless of
/// the order they were pushed into any queue — the property the parallel
/// executor's cross-shard merge relies on for bit-identical replay.
///
/// The causal parent travels *inside* the event (not in engine
/// bookkeeping): the parallel executor drains, ships, and re-schedules
/// events across shard queues, and the cause link must survive that trip.
#[derive(Debug, Clone)]
pub struct HarnessEvent {
    key: u64,
    /// Stable id of the event whose firing scheduled this one; `None` for
    /// script-scheduled events (boots, link flaps, management injections).
    cause: Option<EventId>,
    kind: HarnessEventKind,
}

#[derive(Debug, Clone)]
enum HarnessEventKind {
    /// Boot requested: ask the work model for the boot completion time.
    BootStart(DeviceId),
    /// Boot work finished: the OS comes up.
    BootDone(DeviceId),
    /// A link changes state; both endpoint OSes are notified.
    LinkState {
        lid: LinkId,
        up: bool,
        a: DeviceId,
        ia: u32,
        b: DeviceId,
        ib: u32,
    },
    /// A management command arrives over the jumpbox.
    Mgmt(DeviceId, MgmtCommand),
    /// An armed OS timer fires.
    Timer(DeviceId, TimerKind),
    /// A frame arrives at `dev` on `iface` (link state re-checked on
    /// delivery).
    Deliver {
        dev: DeviceId,
        iface: u32,
        frame: Frame,
        link: LinkId,
    },
    /// A probe-mesh round begins (broadcast: every shard replays the
    /// identical tick and launches probes for the sources it owns).
    ProbeTick { round: u64 },
    /// A probe packet arrives at `dev` for a forwarding decision.
    ProbeHop {
        src: DeviceId,
        src_addr: Ipv4Addr,
        dst: DeviceId,
        dst_addr: Ipv4Addr,
        dev: DeviceId,
        ingress: Option<u32>,
        ttl: u8,
        probe_seq: u64,
        /// Accumulated forward-path latency (ns) — also the conservative
        /// return-trip bound the report is scheduled under.
        path_ns: u64,
    },
    /// A probe's fate travels back to its source's gauges.
    ProbeReport {
        src: DeviceId,
        dst: DeviceId,
        probe_seq: u64,
        outcome: ProbeOutcome,
        path_ns: u64,
    },
    /// A traffic round begins (broadcast: every shard replays the
    /// identical tick, runs the congestion watchdogs over its owned
    /// residue, and launches flows for the sources it owns).
    TrafficTick { round: u64 },
    /// A flow's leading packet arrives at `dev` for a forwarding
    /// decision (the flow-level abstraction: one walk stands in for the
    /// whole flow, `bytes` is charged per traversed link).
    FlowHop {
        src: DeviceId,
        src_addr: Ipv4Addr,
        dst: DeviceId,
        dst_addr: Ipv4Addr,
        dev: DeviceId,
        ingress: Option<u32>,
        ttl: u8,
        flow_seq: u64,
        bytes: u64,
        /// Whether any device on the path so far had *changed* its
        /// route for the destination since last observed.
        rerouted: bool,
        /// Accumulated forward-path latency (ns) — also the
        /// conservative return bound the report is scheduled under.
        path_ns: u64,
    },
    /// A flow's fate travels back to its source's gauges.
    FlowReport {
        src: DeviceId,
        dst: DeviceId,
        flow_seq: u64,
        outcome: ProbeOutcome,
        bytes: u64,
        rerouted: bool,
        path_ns: u64,
    },
}

/// Probe and traffic event keys live in ranges no other event can
/// reach: device keys are `(dev + 1) << 32 | seq` (far below `2^61` at
/// any real device count), control keys are a small counter, and the
/// synthetic packet-hop ids of `pull_trace` set bit 63. Probe ticks
/// take `[3 << 61, 4 << 61)`, probe hop/report flows
/// `[1 << 62, 3 << 61)`, traffic ticks `[1 << 61, 3 << 60)`, and flow
/// hops/reports `[3 << 60, 1 << 62)` — all content-derived, so
/// `(time, key)` stays a total order with no coordination between
/// shards. (At one instant the order is therefore: traffic tick, flow
/// hops/reports, probe hops/reports, probe tick.)
const PROBE_TICK_KEY: u64 = 0b11 << 61;
const PROBE_FLOW_KEY: u64 = 1 << 62;
const TRAFFIC_TICK_KEY: u64 = 1 << 61;
const TRAFFIC_FLOW_KEY: u64 = 0b11 << 60;

/// Key of hop `hop` of probe `probe_seq` (9 bits of hop per probe: TTLs
/// are 8-bit, plus one slot for the report).
fn probe_hop_key(probe_seq: u64, hop: u32) -> u64 {
    PROBE_FLOW_KEY | (probe_seq << 9) | u64::from(hop & 0xff)
}

/// Key of probe `probe_seq`'s report (the 257th slot of its flow range).
fn probe_report_key(probe_seq: u64) -> u64 {
    PROBE_FLOW_KEY | (probe_seq << 9) | 256
}

/// Key of hop `hop` of flow `flow_seq` (same 9-bit hop discipline as
/// probes).
fn flow_hop_key(flow_seq: u64, hop: u32) -> u64 {
    TRAFFIC_FLOW_KEY | (flow_seq << 9) | u64::from(hop & 0xff)
}

/// Key of flow `flow_seq`'s report (the 257th slot of its range).
fn flow_report_key(flow_seq: u64) -> u64 {
    TRAFFIC_FLOW_KEY | (flow_seq << 9) | 256
}

impl HarnessEvent {
    /// The device whose shard must process this event; `None` for global
    /// wiring events (link state), which every shard replays.
    fn target_device(&self) -> Option<DeviceId> {
        match &self.kind {
            HarnessEventKind::BootStart(d)
            | HarnessEventKind::BootDone(d)
            | HarnessEventKind::Mgmt(d, _)
            | HarnessEventKind::Timer(d, _) => Some(*d),
            HarnessEventKind::Deliver { dev, .. } => Some(*dev),
            HarnessEventKind::ProbeHop { dev, .. } => Some(*dev),
            HarnessEventKind::ProbeReport { src, .. } => Some(*src),
            HarnessEventKind::FlowHop { dev, .. } => Some(*dev),
            HarnessEventKind::FlowReport { src, .. } => Some(*src),
            HarnessEventKind::LinkState { .. }
            | HarnessEventKind::ProbeTick { .. }
            | HarnessEventKind::TrafficTick { .. } => None,
        }
    }

    /// Copies a broadcast (link-state / probe-tick / traffic-tick)
    /// event for another shard's queue.
    fn replicate(&self) -> Option<HarnessEvent> {
        match self.kind {
            HarnessEventKind::LinkState {
                lid,
                up,
                a,
                ia,
                b,
                ib,
            } => Some(HarnessEvent {
                key: self.key,
                cause: self.cause,
                kind: HarnessEventKind::LinkState {
                    lid,
                    up,
                    a,
                    ia,
                    b,
                    ib,
                },
            }),
            HarnessEventKind::ProbeTick { round } => Some(HarnessEvent {
                key: self.key,
                cause: self.cause,
                kind: HarnessEventKind::ProbeTick { round },
            }),
            HarnessEventKind::TrafficTick { round } => Some(HarnessEvent {
                key: self.key,
                cause: self.cause,
                kind: HarnessEventKind::TrafficTick { round },
            }),
            _ => None,
        }
    }

    /// Whether this event counts against `causal_pending` while queued.
    /// Everything but pure timers, the health plane, and the traffic
    /// plane does: boots, link changes, management injections, and
    /// frame deliveries can all trigger route activity. Probe and flow
    /// events are observers by construction — keeping them non-causal
    /// is what makes probing (or loading) a network not change when it
    /// is declared converged.
    fn is_causal(&self) -> bool {
        !matches!(
            self.kind,
            HarnessEventKind::Timer(..)
                | HarnessEventKind::ProbeTick { .. }
                | HarnessEventKind::ProbeHop { .. }
                | HarnessEventKind::ProbeReport { .. }
                | HarnessEventKind::TrafficTick { .. }
                | HarnessEventKind::FlowHop { .. }
                | HarnessEventKind::FlowReport { .. }
        )
    }
}

impl EventFire<ControlPlaneWorld> for HarnessEvent {
    fn key(&self) -> u64 {
        self.key
    }

    fn cause(&self) -> Option<EventId> {
        self.cause
    }

    fn fire(self, e: &mut ControlPlaneEngine) {
        match self.kind {
            HarnessEventKind::BootStart(dev) => {
                let ready = e.world.work.completion(dev, WorkKind::Boot, e.now());
                let key = e.world.device_key(dev);
                let cause = e.current_event();
                e.schedule_event_at(
                    ready,
                    HarnessEvent {
                        key,
                        cause,
                        kind: HarnessEventKind::BootDone(dev),
                    },
                );
            }
            HarnessEventKind::BootDone(dev) => {
                e.world.causal_pending -= 1;
                e.world.booted[dev.index()] = true;
                if e.world.recorder.enabled() {
                    let now = e.now().as_nanos();
                    e.world.recorder.counter_add("routing.devices_booted", 1);
                    e.world.recorder.gauge_max("routing.last_boot_done_ns", now);
                }
                if e.world.recorder.trace_enabled() {
                    trace_here(e, "boot_done", Some(dev), vec![]);
                }
                dispatch(e, dev, OsEvent::Boot);
            }
            HarnessEventKind::LinkState {
                lid,
                up,
                a,
                ia,
                b,
                ib,
            } => {
                e.world.causal_pending -= 1;
                e.world.link_up.insert(lid, up);
                let (ev_a, ev_b) = if up {
                    (OsEvent::LinkUp(ia), OsEvent::LinkUp(ib))
                } else {
                    (OsEvent::LinkDown(ia), OsEvent::LinkDown(ib))
                };
                // The transition is recorded per *endpoint* (guarded by OS
                // presence) so each record is emitted exactly once — on the
                // shard owning that endpoint — even though every shard
                // replays the wiring change itself.
                for (dev, _iface) in [(a, ia), (b, ib)] {
                    if e.world.recorder.trace_enabled() && e.world.oses[dev.index()].is_some() {
                        trace_here(
                            e,
                            "link_state",
                            Some(dev),
                            vec![
                                ("link", FieldValue::U64(u64::from(lid.0))),
                                ("up", FieldValue::Bool(up)),
                            ],
                        );
                    }
                }
                dispatch(e, a, ev_a);
                dispatch(e, b, ev_b);
            }
            HarnessEventKind::Mgmt(dev, cmd) => {
                e.world.causal_pending -= 1;
                if e.world.recorder.trace_enabled() {
                    trace_here(e, "mgmt", Some(dev), vec![]);
                }
                dispatch(e, dev, OsEvent::Mgmt(cmd));
            }
            HarnessEventKind::Timer(dev, kind) => {
                dispatch(e, dev, OsEvent::Timer(kind));
            }
            HarnessEventKind::Deliver {
                dev,
                iface,
                frame,
                link,
            } => {
                e.world.causal_pending -= 1;
                // Re-check link state at delivery time.
                if e.world.link_up.get(&link).copied().unwrap_or(false) {
                    if e.world.recorder.enabled() {
                        record_frame(&mut *e.world.recorder, &frame, false);
                    }
                    if e.world.recorder.trace_enabled() {
                        trace_here(
                            e,
                            "frame_rx",
                            Some(dev),
                            vec![
                                ("kind", FieldValue::Str(frame.kind().to_string())),
                                ("iface", FieldValue::U64(u64::from(iface))),
                            ],
                        );
                    }
                    dispatch(e, dev, OsEvent::Frame { iface, frame });
                }
            }
            HarnessEventKind::ProbeTick { round } => probe_tick(e, round),
            HarnessEventKind::ProbeHop {
                src,
                src_addr,
                dst,
                dst_addr,
                dev,
                ingress,
                ttl,
                probe_seq,
                path_ns,
            } => probe_hop(
                e, src, src_addr, dst, dst_addr, dev, ingress, ttl, probe_seq, path_ns,
            ),
            HarnessEventKind::ProbeReport {
                src,
                dst,
                probe_seq,
                outcome,
                path_ns,
            } => probe_report(e, src, dst, probe_seq, outcome, path_ns),
            HarnessEventKind::TrafficTick { round } => traffic_tick(e, round),
            HarnessEventKind::FlowHop {
                src,
                src_addr,
                dst,
                dst_addr,
                dev,
                ingress,
                ttl,
                flow_seq,
                bytes,
                rerouted,
                path_ns,
            } => flow_hop(
                e, src, src_addr, dst, dst_addr, dev, ingress, ttl, flow_seq, bytes, rerouted,
                path_ns,
            ),
            HarnessEventKind::FlowReport {
                src,
                dst,
                flow_seq,
                outcome,
                bytes,
                rerouted,
                path_ns,
            } => flow_report(e, src, dst, flow_seq, outcome, bytes, rerouted, path_ns),
        }
    }
}

/// Emits one trace record under the currently firing event. The id falls
/// back to [`EventId::ZERO`] for synchronous out-of-event calls
/// (`mgmt_sync`), which by construction happen before or after the run.
fn trace_here(
    e: &mut ControlPlaneEngine,
    name: &'static str,
    dev: Option<DeviceId>,
    fields: Vec<(&'static str, FieldValue)>,
) {
    let id = e.current_event().unwrap_or(EventId::ZERO);
    let cause = e.current_cause();
    let rec = TraceRecord::new(e.now(), id, cause, name, dev.map(|d| d.0), fields);
    e.world.recorder.trace(rec);
}

/// The simulated world: OS instances plus wiring.
pub struct ControlPlaneWorld {
    oses: Vec<Option<Box<dyn DeviceOs>>>,
    booted: Vec<bool>,
    /// adjacency[device][iface] (None when unwired).
    adjacency: Vec<Vec<Option<Adjacency>>>,
    link_up: HashMap<LinkId, bool>,
    work: Box<dyn WorkModel>,
    /// Completion time of the last event that changed routes.
    pub last_route_activity: SimTime,
    /// Total route operations performed across all devices.
    pub route_ops_total: u64,
    /// Per-device route-operation counters (diagnostics).
    pub route_ops_by_dev: HashMap<DeviceId, u64>,
    /// Devices that crashed while handling events (health-monitor feed).
    pub crashes: Vec<(SimTime, DeviceId)>,
    /// Responses to asynchronously delivered management commands.
    pub mgmt_responses: Vec<(DeviceId, MgmtResponse)>,
    /// Scheduled events that can still cause route activity (frames in
    /// flight, pending boots, link changes). Pure timers are excluded.
    /// `run_until_quiet` only declares convergence when this hits zero.
    causal_pending: u64,
    /// Per-device key counters (see [`HarnessEvent`]).
    dev_key_seq: Vec<u32>,
    /// Key counter for control-plane-script events.
    control_key_seq: u32,
    /// Set while this world is a shard of a parallel run.
    shard_route: Option<ShardRoute>,
    /// Health plane (probe mesh + watchdogs); `None` keeps every probe
    /// code path dormant at zero cost.
    health: Option<HealthState>,
    /// Traffic plane (flow generation + utilisation gauges + congestion
    /// watchdogs); `None` keeps every flow code path dormant at zero
    /// cost.
    traffic: Option<TrafficState>,
    /// Devices whose *dataplane* forwarding is silently dead while their
    /// control plane keeps running (gray-failure injection). Only probe
    /// forwarding consults this — sessions stay up, FIBs stay "correct".
    fwd_disabled: BTreeSet<DeviceId>,
    /// Observability sink. Defaults to the zero-cost [`NoopRecorder`];
    /// orchestration layers install a `MemRecorder` to collect a run
    /// report. Shards fork it and the join merges them back, so canonical
    /// counters are identical whichever shard recorded them.
    pub recorder: Box<dyn Recorder>,
}

impl ControlPlaneWorld {
    /// Mutable access to the work model (orchestrator hook).
    pub fn work_mut(&mut self) -> &mut dyn WorkModel {
        &mut *self.work
    }

    /// Shared access to the work model (fork hook).
    pub fn work_ref(&self) -> &dyn WorkModel {
        &*self.work
    }

    /// The next tie-break key for an event emitted by `dev`.
    fn device_key(&mut self, dev: DeviceId) -> u64 {
        let seq = &mut self.dev_key_seq[dev.index()];
        *seq += 1;
        ((u64::from(dev.0) + 1) << 32) | u64::from(*seq)
    }

    /// The next tie-break key for a control-plane-script event.
    fn control_key(&mut self) -> u64 {
        self.control_key_seq += 1;
        u64::from(self.control_key_seq)
    }
}

impl ParallelWorld for ControlPlaneWorld {
    type Ev = HarnessEvent;

    fn take_outbox(&mut self) -> Vec<(usize, SimTime, HarnessEvent)> {
        self.shard_route
            .as_mut()
            .map(|r| std::mem::take(&mut r.outbox))
            .unwrap_or_default()
    }

    fn accept_remote(&mut self, ev: &HarnessEvent) {
        self.causal_pending += u64::from(ev.is_causal());
    }

    fn is_causal(ev: &HarnessEvent) -> bool {
        ev.is_causal()
    }

    fn causal_pending(&self) -> u64 {
        self.causal_pending
    }

    fn last_activity(&self) -> SimTime {
        self.last_route_activity
    }
}

/// The engine type the harness runs on: typed events over the world.
pub type ControlPlaneEngine = Engine<ControlPlaneWorld, HarnessEvent>;

/// The control-plane simulation: an [`Engine`] over [`ControlPlaneWorld`].
pub struct ControlPlaneSim {
    /// The event engine (exposed for orchestration layers).
    pub engine: ControlPlaneEngine,
}

impl ControlPlaneSim {
    /// An empty harness wired to `topo`'s links.
    #[must_use]
    pub fn new(topo: &Topology, work: Box<dyn WorkModel>) -> Self {
        let n = topo.device_count();
        let mut adjacency: Vec<Vec<Option<Adjacency>>> = (0..n)
            .map(|i| {
                let dev = topo.device(DeviceId(i as u32));
                (0..dev.ifaces.len()).map(|_| None).collect()
            })
            .collect();
        let mut link_up = HashMap::new();
        for (lid, link) in topo.links() {
            link_up.insert(lid, true);
            adjacency[link.a.device.index()][link.a.iface as usize] = Some(Adjacency {
                remote_dev: link.b.device,
                remote_iface: link.b.iface,
                link: lid,
            });
            adjacency[link.b.device.index()][link.b.iface as usize] = Some(Adjacency {
                remote_dev: link.a.device,
                remote_iface: link.a.iface,
                link: lid,
            });
        }
        ControlPlaneSim {
            engine: Engine::new(ControlPlaneWorld {
                oses: (0..n).map(|_| None).collect(),
                booted: vec![false; n],
                adjacency,
                link_up,
                work,
                last_route_activity: SimTime::ZERO,
                route_ops_total: 0,
                route_ops_by_dev: HashMap::new(),
                crashes: Vec::new(),
                mgmt_responses: Vec::new(),
                causal_pending: 0,
                dev_key_seq: vec![0; n],
                control_key_seq: 0,
                shard_route: None,
                health: None,
                traffic: None,
                fwd_disabled: BTreeSet::new(),
                recorder: Box::new(NoopRecorder),
            }),
        }
    }

    /// Deep-copies the whole simulation — every OS (via
    /// [`DeviceOs::clone_boxed`]), the wiring, the key counters, and the
    /// engine's clock/queue/sequence position — over a caller-supplied
    /// work model and recorder.
    ///
    /// This is the control-plane half of an emulation fork. The copy is
    /// *positionally exact*: queued events keep their `(time, key, seq)`
    /// ranks and per-device key counters resume where the parent's
    /// stand, so identical inputs produce bit-identical behavior on
    /// parent and child. Interned route state (`Arc<PathAttrs>`,
    /// `Arc<Provenance>`) is shared structurally rather than duplicated.
    ///
    /// The caller supplies `work` and `recorder` because both typically
    /// need their own treatment on fork: the work model must stop
    /// sharing mutable CPU accounting with the parent, and the recorder
    /// is deep-copied via [`Recorder::snapshot`]. Parallel-shard wiring
    /// (`shard_route`) is never inherited — a fork starts in serial
    /// mode, mid-parallel-run forks are not supported.
    #[must_use]
    pub fn fork_with(&self, work: Box<dyn WorkModel>, recorder: Box<dyn Recorder>) -> Self {
        let w = &self.engine.world;
        debug_assert!(
            w.shard_route.is_none(),
            "fork_with on a shard of a parallel run"
        );
        let world = ControlPlaneWorld {
            oses: w
                .oses
                .iter()
                .map(|slot| slot.as_ref().map(|os| os.clone_boxed()))
                .collect(),
            booted: w.booted.clone(),
            adjacency: w.adjacency.clone(),
            link_up: w.link_up.clone(),
            work,
            last_route_activity: w.last_route_activity,
            route_ops_total: w.route_ops_total,
            route_ops_by_dev: w.route_ops_by_dev.clone(),
            crashes: w.crashes.clone(),
            mgmt_responses: w.mgmt_responses.clone(),
            causal_pending: w.causal_pending,
            dev_key_seq: w.dev_key_seq.clone(),
            control_key_seq: w.control_key_seq,
            shard_route: None,
            health: w.health.clone(),
            traffic: w.traffic.clone(),
            fwd_disabled: w.fwd_disabled.clone(),
            recorder,
        };
        ControlPlaneSim {
            engine: self.engine.replicate_with(world),
        }
    }

    /// Installs a firmware instance on `dev` (not yet booted).
    pub fn add_os(&mut self, dev: DeviceId, mut os: Box<dyn DeviceOs>) {
        os.set_tracing(self.engine.world.recorder.trace_enabled());
        self.engine.world.oses[dev.index()] = Some(os);
    }

    /// Pushes the recorder's tracing flag into every installed OS. Call
    /// after swapping the recorder on an already-populated sim (OSes
    /// installed later pick the flag up in [`Self::add_os`]).
    pub fn sync_tracing(&mut self) {
        let on = self.engine.world.recorder.trace_enabled();
        for os in self.engine.world.oses.iter_mut().flatten() {
            os.set_tracing(on);
        }
    }

    /// Schedules `dev` to boot at `at` (firmware boot latency is added by
    /// the work model).
    pub fn boot_device(&mut self, dev: DeviceId, at: SimTime) {
        self.engine.world.causal_pending += 1;
        let key = self.engine.world.control_key();
        self.engine.schedule_event_at(
            at,
            HarnessEvent {
                key,
                cause: None,
                kind: HarnessEventKind::BootStart(dev),
            },
        );
    }

    /// Boots every device with an installed OS at `at`.
    pub fn boot_all(&mut self, at: SimTime) {
        let devs: Vec<DeviceId> = self
            .engine
            .world
            .oses
            .iter()
            .enumerate()
            .filter(|(_, os)| os.is_some())
            .map(|(i, _)| DeviceId(i as u32))
            .collect();
        for dev in devs {
            self.boot_device(dev, at);
        }
    }

    /// Takes a link down at `at`: both ends get `LinkDown`, and in-flight
    /// frames on the link are dropped from then on.
    pub fn link_down(&mut self, topo_link: (DeviceId, u32, DeviceId, u32, LinkId), at: SimTime) {
        self.schedule_link_state(topo_link, at, false);
    }

    /// Brings a link back up at `at`.
    pub fn link_up(&mut self, topo_link: (DeviceId, u32, DeviceId, u32, LinkId), at: SimTime) {
        self.schedule_link_state(topo_link, at, true);
    }

    fn schedule_link_state(
        &mut self,
        topo_link: (DeviceId, u32, DeviceId, u32, LinkId),
        at: SimTime,
        up: bool,
    ) {
        let (a, ia, b, ib, lid) = topo_link;
        self.engine.world.causal_pending += 1;
        let key = self.engine.world.control_key();
        self.engine.schedule_event_at(
            at,
            HarnessEvent {
                key,
                cause: None,
                kind: HarnessEventKind::LinkState {
                    lid,
                    up,
                    a,
                    ia,
                    b,
                    ib,
                },
            },
        );
    }

    /// Resolves a link's endpoints for [`Self::link_down`]/[`Self::link_up`].
    #[must_use]
    pub fn link_endpoints(topo: &Topology, lid: LinkId) -> (DeviceId, u32, DeviceId, u32, LinkId) {
        let link = topo.link(lid);
        (
            link.a.device,
            link.a.iface,
            link.b.device,
            link.b.iface,
            lid,
        )
    }

    /// Delivers a management command at `at`; the response lands in
    /// [`ControlPlaneWorld::mgmt_responses`].
    pub fn mgmt(&mut self, dev: DeviceId, cmd: MgmtCommand, at: SimTime) {
        self.engine.world.causal_pending += 1;
        let key = self.engine.world.control_key();
        self.engine.schedule_event_at(
            at,
            HarnessEvent {
                key,
                cause: None,
                kind: HarnessEventKind::Mgmt(dev, cmd),
            },
        );
    }

    /// Synchronously executes a management command right now and returns
    /// the response (the jumpbox SSH round trip is treated as instant).
    pub fn mgmt_sync(&mut self, dev: DeviceId, cmd: MgmtCommand) -> Option<MgmtResponse> {
        let before = self.engine.world.mgmt_responses.len();
        dispatch(&mut self.engine, dev, OsEvent::Mgmt(cmd));
        self.engine
            .world
            .mgmt_responses
            .get(before)
            .map(|(_, r)| r.clone())
    }

    /// Runs every event with `time <= at`, then advances the clock to
    /// `at`, leaving later events queued.
    ///
    /// The fault subsystem uses this to interleave a fault timeline with
    /// convergence: run up to the next planned fault instant, mutate the
    /// world (power a VM's devices off, flap a link), and resume — so
    /// in-flight causal chains on untouched devices keep playing out
    /// across injections.
    pub fn run_until(&mut self, at: SimTime) {
        self.engine.run_until(at);
    }

    /// Runs until no route activity occurs within `quiet` of the last
    /// route change, or gives up past `deadline`.
    ///
    /// Returns the route-ready instant (the completion time of the last
    /// route-changing work) on convergence; `None` on deadline overrun.
    pub fn run_until_quiet(&mut self, quiet: SimDuration, deadline: SimTime) -> Option<SimTime> {
        let profiled = self
            .engine
            .world
            .recorder
            .profiling_enabled()
            .then(Instant::now);
        let out = loop {
            if self.engine.now() > deadline {
                break None;
            }
            let last = self.engine.world.last_route_activity;
            match self.engine.next_event_time() {
                // Nothing left to happen: converged.
                None => break Some(last),
                // Only pure timers remain and the next one lies beyond
                // the quiet horizon: every causal chain has played out.
                Some(t) if self.engine.world.causal_pending == 0 && t > last + quiet => {
                    break Some(last)
                }
                Some(_) => {
                    self.engine.step();
                }
            }
        };
        if let Some(t0) = profiled {
            self.engine
                .world
                .recorder
                .profile_add(keys::ENGINE_RUN, t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// [`Self::run_until_quiet`] on worker threads: forks the world into
    /// per-shard replicas, steps them concurrently inside conservative
    /// per-shard windows (each shard bounded by the per-shard-pair
    /// lookahead matrix over its *actual* cut links, not a global
    /// min-cut scalar), and joins the shards back into this sim.
    ///
    /// The result is **bit-identical** to the serial run — same FIBs, same
    /// route-ready instant, same counters — because harness event keys
    /// totally order same-time events and frames can never cross a shard
    /// boundary in less than the cut-link latency. Two caveats: entries in
    /// [`ControlPlaneWorld::crashes`] are merged sorted by `(time,
    /// device)` and [`ControlPlaneWorld::mgmt_responses`] by device (the
    /// serial orders interleave same-time entries by event key, which the
    /// merge does not reconstruct), and on deadline overrun (`None`)
    /// shards may have processed a handful of events past the deadline
    /// that the serial loop would have left queued.
    ///
    /// `shard_work` supplies one [`WorkModel`] per shard (the serial
    /// model stays untouched); they are returned for the orchestrator to
    /// fold accumulated state (e.g. CPU-queue depths) back in.
    /// Cross-shard lookahead is probed from the *serial* model's
    /// [`WorkModel::link_delay`] over each cut link — the minimum per
    /// ordered shard pair, ∞ where no link crosses — so per-link delays
    /// must be time-invariant lower bounds and identical across the
    /// serial and shard models.
    ///
    /// # Panics
    ///
    /// Panics if `shard_work.len() != partition.shard_count()` or the
    /// partition does not cover this topology.
    pub fn run_until_quiet_parallel(
        &mut self,
        quiet: SimDuration,
        deadline: SimTime,
        partition: &Partition,
        shard_work: Vec<Box<dyn WorkModel>>,
    ) -> (Option<SimTime>, Vec<Box<dyn WorkModel>>) {
        let k = partition.shard_count();
        assert_eq!(shard_work.len(), k, "one work model per shard");
        let n = self.engine.world.oses.len();
        assert_eq!(partition.shard_of.len(), n, "partition/topology mismatch");
        if self.engine.now() > deadline {
            // The serial loop bails before touching the queue; so do we.
            return (None, shard_work);
        }
        let profiling = self.engine.world.recorder.profiling_enabled();
        let t_all = profiling.then(Instant::now);

        // Per-pair conservative lookahead: no frame crosses from shard i
        // to shard j faster than their cheapest connecting cut link;
        // pairs sharing no edge do not bound each other at all. The
        // matrix is derived from the adjacency table (the same link set
        // `Partition::lookahead_matrix_nanos` walks).
        let now = self.engine.now();
        let mut direct = vec![u64::MAX; k * k];
        for i in 0..k {
            direct[i * k + i] = 0;
        }
        {
            let world = &mut self.engine.world;
            for dev in 0..n {
                let si = partition.shard_of[dev];
                for adj in world.adjacency[dev].iter().flatten() {
                    let sj = partition.shard_of[adj.remote_dev.index()];
                    if si == sj {
                        continue;
                    }
                    let link = adj.link;
                    let d = world.work.link_delay(link, now).as_nanos().max(1);
                    let e = &mut direct[si * k + sj];
                    *e = (*e).min(d);
                }
            }
        }
        let lookahead = LookaheadMatrix::from_nanos(k, direct);

        // ---- Fork: one world replica per shard. ----
        let t_fork = profiling.then(Instant::now);
        let pending = self.engine.drain_pending();
        let world = &mut self.engine.world;
        let mut engines: Vec<ControlPlaneEngine> = shard_work
            .into_iter()
            .enumerate()
            .map(|(s, work)| {
                Engine::new(ControlPlaneWorld {
                    oses: (0..n).map(|_| None).collect(),
                    booted: world.booted.clone(),
                    adjacency: world.adjacency.clone(),
                    link_up: world.link_up.clone(),
                    work,
                    last_route_activity: world.last_route_activity,
                    route_ops_total: 0,
                    route_ops_by_dev: HashMap::new(),
                    crashes: Vec::new(),
                    mgmt_responses: Vec::new(),
                    causal_pending: 0,
                    dev_key_seq: world.dev_key_seq.clone(),
                    control_key_seq: world.control_key_seq,
                    shard_route: Some(ShardRoute {
                        self_shard: s,
                        shard_of: partition.shard_of.clone(),
                        outbox: Vec::new(),
                    }),
                    // Pair gauges travel with their src-owning shard so
                    // rolling SLO windows continue across the fork; the
                    // traffic plane's link/ECMP gauges travel with the
                    // transmitting device's shard for the same reason.
                    health: world
                        .health
                        .as_ref()
                        .map(|h| h.fork_for_shard(|d| partition.shard_of[d.index()] == s)),
                    traffic: world
                        .traffic
                        .as_ref()
                        .map(|t| t.fork_for_shard(|d| partition.shard_of[d.index()] == s)),
                    fwd_disabled: world.fwd_disabled.clone(),
                    recorder: world.recorder.fork(),
                })
            })
            .collect();
        // OS instances move to their owning shard's worker thread.
        for dev in 0..n {
            if let Some(os) = world.oses[dev].take() {
                engines[partition.shard_of[dev]].world.oses[dev] = Some(os);
            }
        }
        // Device-targeted events go to the owner; link state is global
        // wiring and is replayed by every shard.
        for (t, ev) in pending {
            match ev.target_device() {
                Some(dev) => {
                    let eng = &mut engines[partition.shard_of[dev.index()]];
                    eng.world.causal_pending += u64::from(ev.is_causal());
                    eng.schedule_event_at(t, ev);
                }
                None => {
                    for eng in &mut engines {
                        let copy = ev.replicate().expect("broadcast events replicate");
                        eng.world.causal_pending += u64::from(copy.is_causal());
                        eng.schedule_event_at(t, copy);
                    }
                }
            }
        }

        if let Some(t0) = t_fork {
            self.engine
                .world
                .recorder
                .profile_add(keys::PARALLEL_FORK, t0.elapsed().as_nanos() as u64);
        }

        let t_run = profiling.then(Instant::now);
        let mut outcome =
            run_shards_until_quiet_matrix_profiled(engines, &lookahead, quiet, deadline, profiling);
        if let Some(t0) = t_run {
            self.engine
                .world
                .recorder
                .profile_add(keys::PARALLEL_RUN, t0.elapsed().as_nanos() as u64);
        }

        // ---- Join: merge shard state back into the serial world. ----
        let t_join = profiling.then(Instant::now);
        let mut shard_models: Vec<Box<dyn WorkModel>> = Vec::with_capacity(k);
        let mut crashes: Vec<(SimTime, DeviceId)> = Vec::new();
        let mut responses: Vec<(DeviceId, MgmtResponse)> = Vec::new();
        let mut remaining: Vec<(SimTime, HarnessEvent)> = Vec::new();
        let mut shard_executed: Vec<u64> = Vec::with_capacity(k);
        let mut shard_queue_high: Vec<u64> = Vec::with_capacity(k);
        for (s, mut eng) in outcome.shards.into_iter().enumerate() {
            shard_executed.push(eng.events_executed());
            shard_queue_high.push(eng.queue_high_water() as u64);
            let drained = eng.drain_pending();
            let mut sw = eng.world;
            let world = &mut self.engine.world;
            // Canonical shard metrics merge order-independently; the
            // per-shard execution-shape facts go in as diagnostics.
            world.recorder.absorb(sw.recorder);
            for &dev in &partition.shards[s] {
                let i = dev.index();
                world.oses[i] = sw.oses[i].take();
                world.booted[i] = sw.booted[i];
                world.dev_key_seq[i] = sw.dev_key_seq[i];
                if let Some(ops) = sw.route_ops_by_dev.get(&dev) {
                    *world.route_ops_by_dev.entry(dev).or_insert(0) += ops;
                }
            }
            world.route_ops_total += sw.route_ops_total;
            world.last_route_activity = world.last_route_activity.max(sw.last_route_activity);
            // Every shard replayed the same link-state history.
            world.link_up = sw.link_up;
            if let Some(sh) = sw.health.take() {
                if let Some(h) = world.health.as_mut() {
                    h.absorb_shard(sh);
                }
            }
            if let Some(st) = sw.traffic.take() {
                if let Some(t) = world.traffic.as_mut() {
                    t.absorb_shard(st);
                }
            }
            crashes.extend(sw.crashes);
            responses.extend(sw.mgmt_responses);
            // Broadcast events survive in every shard queue; keep one copy.
            for (t, ev) in drained {
                if s == 0 || ev.target_device().is_some() {
                    remaining.push((t, ev));
                }
            }
            shard_models.push(sw.work);
        }
        crashes.sort_by_key(|&(t, d)| (t, d.0));
        self.engine.world.crashes.extend(crashes);
        // Shard incident streams interleave; restore the canonical
        // (time, seq, kind) order the serial run produces.
        if let Some(h) = self.engine.world.health.as_mut() {
            h.sort_incidents();
        }
        if let Some(t) = self.engine.world.traffic.as_mut() {
            t.sort_incidents();
        }
        responses.sort_by_key(|r| (r.0).0);
        self.engine.world.mgmt_responses.extend(responses);

        // Fast-forward the serial clock, then restore surviving events
        // (far-future timers and the like) and their causal accounting.
        self.engine.advance_clock_to(outcome.clock);
        remaining.sort_by_key(|(t, ev)| (*t, ev.key));
        let mut causal = 0u64;
        for (t, ev) in remaining {
            causal += u64::from(ev.is_causal());
            self.engine.schedule_event_at(t, ev);
        }
        self.engine.world.causal_pending = causal;
        if self.engine.world.recorder.enabled() {
            let rec = &mut *self.engine.world.recorder;
            rec.diagnostic_add("sim.parallel.windows".to_string(), outcome.windows);
            rec.diagnostic_add(
                "sim.parallel.lockstep_rounds".to_string(),
                outcome.lockstep_rounds,
            );
            rec.diagnostic_add(
                "sim.parallel.horizon_advances".to_string(),
                outcome.horizon_advances,
            );
            // Events-per-window histogram (power-of-two buckets) plus
            // per-shard execution-shape arrays: the facts needed to
            // diagnose a scaling regression from `pull_report()` without
            // bisection. Idle time is wall-clock, hence nondeterministic
            // — diagnostics only, never the canonical report. The arrays
            // describe the most recent parallel run in this report.
            let hist = &outcome.window_hist;
            rec.diagnostic_add("sim.parallel.window_events.count".to_string(), hist.count);
            rec.diagnostic_add("sim.parallel.window_events.sum".to_string(), hist.sum);
            rec.diagnostic_max("sim.parallel.window_events.max".to_string(), hist.max);
            for (b, &n) in hist.buckets.iter().enumerate() {
                if n > 0 {
                    rec.diagnostic_add(format!("sim.parallel.window_events.bucket{b}"), n);
                }
            }
            rec.diagnostic_array(
                "sim.parallel.shard.events_executed".to_string(),
                shard_executed.clone(),
            );
            rec.diagnostic_array(
                "sim.parallel.shard.queue_high_water".to_string(),
                shard_queue_high,
            );
            rec.diagnostic_array(
                "sim.parallel.shard.idle_ns".to_string(),
                outcome.idle_ns.clone(),
            );
        }
        if let Some(profile) = outcome.profile.take() {
            let rec = &mut *self.engine.world.recorder;
            rec.profile_add(keys::PARALLEL_COMPUTE, profile.busy_ns.iter().sum());
            rec.profile_add(keys::PARALLEL_MERGE, profile.merge_ns);
            rec.profile_add(keys::PARALLEL_IDLE, outcome.idle_ns.iter().sum());
            rec.scaling_diagnosis(diagnose_scaling(
                &profile,
                &outcome.idle_ns,
                &shard_executed,
            ));
        }
        if let Some(t0) = t_join {
            self.engine
                .world
                .recorder
                .profile_add(keys::PARALLEL_JOIN, t0.elapsed().as_nanos() as u64);
        }
        if let Some(t0) = t_all {
            self.engine
                .world
                .recorder
                .profile_add(keys::PARALLEL, t0.elapsed().as_nanos() as u64);
        }

        (outcome.converged_at, shard_models)
    }

    /// The FIB of `dev`.
    #[must_use]
    pub fn fib(&self, dev: DeviceId) -> Option<&Fib> {
        self.engine.world.oses[dev.index()]
            .as_deref()
            .map(|os| os.fib())
    }

    /// The OS instance on `dev`.
    #[must_use]
    pub fn os(&self, dev: DeviceId) -> Option<&dyn DeviceOs> {
        self.engine.world.oses[dev.index()].as_deref()
    }

    /// Mutable OS access (test instrumentation).
    pub fn os_mut(&mut self, dev: DeviceId) -> Option<&mut Box<dyn DeviceOs>> {
        self.engine.world.oses[dev.index()].as_mut()
    }

    /// Powers a device's sandbox off instantly (VM failure, kill):
    /// frames stop reaching it until a later [`Self::boot_device`].
    pub fn power_off(&mut self, dev: DeviceId) {
        self.engine.world.booted[dev.index()] = false;
    }

    /// Replaces a device's OS instance (used when a VM is rebuilt and its
    /// sandboxes restart from scratch). The device must be re-booted.
    pub fn replace_os(&mut self, dev: DeviceId, mut os: Box<dyn DeviceOs>) {
        os.set_tracing(self.engine.world.recorder.trace_enabled());
        self.engine.world.booted[dev.index()] = false;
        self.engine.world.oses[dev.index()] = Some(os);
    }

    /// Decommissions `dev` permanently: drops its OS instance and removes
    /// every queued event addressed to it (in-flight frames, timers,
    /// pending management commands), fixing up the causal-quiescence
    /// accounting so convergence detection stays exact. The caller is
    /// responsible for taking the device's links down first so neighbors
    /// observe the loss; after removal the device can not be re-booted
    /// (unlike [`Self::power_off`], which keeps the OS around).
    pub fn remove_device(&mut self, dev: DeviceId) {
        self.engine.world.booted[dev.index()] = false;
        self.engine.world.oses[dev.index()] = None;
        // Drain-and-requeue preserves event identity: ids are derived
        // from `(time, key)`, both unchanged by the round trip.
        let drained = self.engine.drain_pending();
        for (at, ev) in drained {
            if ev.target_device() == Some(dev) {
                if ev.is_causal() {
                    self.engine.world.causal_pending -= 1;
                }
            } else {
                self.engine.schedule_event_at(at, ev);
            }
        }
    }

    /// Whether `dev` booted and is still up.
    #[must_use]
    pub fn is_up(&self, dev: DeviceId) -> bool {
        self.engine.world.booted[dev.index()] && self.os(dev).is_some_and(|os| !os.is_down())
    }

    /// Synchronously traces `packet` hop by hop from `from` using the
    /// current FIBs (the `InjectPackets` + `PullPackets` path over a
    /// converged network). Returns the device path and the final fate.
    pub fn trace_packet(
        &self,
        from: DeviceId,
        packet: &Ipv4Packet,
    ) -> (Vec<DeviceId>, ForwardDecision) {
        let mut path = vec![from];
        let mut current = from;
        let mut ingress: Option<u32> = None;
        let mut pkt = packet.clone();
        let mut last = ForwardDecision::DropNoRoute;
        // TTL bounds the walk, but guard against accidental loops anyway.
        for _ in 0..512 {
            let world = &self.engine.world;
            let Some(os) = world.oses[current.index()].as_deref() else {
                return (path, ForwardDecision::DropNoRoute);
            };
            if !world.booted[current.index()] || os.is_down() {
                return (path, ForwardDecision::DropNoRoute);
            }
            let locals = os.local_addrs();
            let decision = decide(os.fib(), &locals, &pkt, |src, dst| {
                os.filter_permits(ingress, src, dst)
            });
            last = decision;
            match decision {
                ForwardDecision::Forward(hop) => {
                    if hop.iface == crate::bgp::LOCAL_IFACE {
                        // Locally attached subnet: delivered here.
                        return (path, ForwardDecision::Deliver);
                    }
                    let Some(Some(adj)) = world.adjacency[current.index()].get(hop.iface as usize)
                    else {
                        return (path, ForwardDecision::DropNoRoute);
                    };
                    if !world.link_up.get(&adj.link).copied().unwrap_or(false) {
                        return (path, ForwardDecision::DropNoRoute);
                    }
                    let Some(next_pkt) = pkt.forwarded() else {
                        return (path, ForwardDecision::DropTtlExpired);
                    };
                    pkt = next_pkt;
                    current = adj.remote_dev;
                    ingress = Some(adj.remote_iface);
                    path.push(current);
                }
                _ => return (path, decision),
            }
        }
        (path, last)
    }

    /// Turns the health plane on: installs the probe-mesh state over
    /// `population` (the probe-able devices with their loopback
    /// addresses) and schedules the first probe round at
    /// `first_tick_at`. Ticks then self-perpetuate every `cfg.period`
    /// until the simulation ends; they are non-causal, so convergence
    /// detection is unaffected.
    pub fn enable_health(
        &mut self,
        cfg: ProbeConfig,
        population: Vec<(DeviceId, Ipv4Addr)>,
        first_tick_at: SimTime,
    ) {
        self.engine.world.health = Some(HealthState::new(cfg, population));
        self.engine.schedule_event_at(
            first_tick_at,
            HarnessEvent {
                key: PROBE_TICK_KEY,
                cause: None,
                kind: HarnessEventKind::ProbeTick { round: 0 },
            },
        );
    }

    /// The health plane's current state, when enabled.
    #[must_use]
    pub fn health(&self) -> Option<&HealthState> {
        self.engine.world.health.as_ref()
    }

    /// Turns the traffic plane on: installs the flow-generation state
    /// over `population` (the flow-capable devices with their loopback
    /// addresses) and schedules the first traffic round at
    /// `first_tick_at`. Ticks then self-perpetuate every `cfg.period`
    /// until the simulation ends; they are non-causal, so convergence
    /// detection is unaffected.
    pub fn enable_traffic(
        &mut self,
        cfg: TrafficConfig,
        population: Vec<(DeviceId, Ipv4Addr)>,
        first_tick_at: SimTime,
    ) {
        self.engine.world.traffic = Some(TrafficState::new(cfg, population));
        self.engine.schedule_event_at(
            first_tick_at,
            HarnessEvent {
                key: TRAFFIC_TICK_KEY,
                cause: None,
                kind: HarnessEventKind::TrafficTick { round: 0 },
            },
        );
    }

    /// The traffic plane's current state, when enabled.
    #[must_use]
    pub fn traffic(&self) -> Option<&TrafficState> {
        self.engine.world.traffic.as_ref()
    }

    /// Silently kills (or restores) `dev`'s dataplane forwarding while
    /// its control plane keeps running — the canonical gray failure.
    /// Sessions stay up and the FIB keeps "converging"; only a live
    /// probe can observe the difference.
    pub fn set_forwarding(&mut self, dev: DeviceId, enabled: bool) {
        if enabled {
            self.engine.world.fwd_disabled.remove(&dev);
        } else {
            self.engine.world.fwd_disabled.insert(dev);
        }
    }

    /// Whether `dev`'s forwarding was silently disabled.
    #[must_use]
    pub fn forwarding_disabled(&self, dev: DeviceId) -> bool {
        self.engine.world.fwd_disabled.contains(&dev)
    }
}

/// Stable export label for a grant's limiter.
fn limiter_label(l: Limiter) -> String {
    match l {
        Limiter::Echo => "echo".to_string(),
        Limiter::Peer(j) => format!("peer:{j}"),
        Limiter::QuietClip => "quiet-clip".to_string(),
        Limiter::DeadlineClip => "deadline-clip".to_string(),
        Limiter::Lockstep => "lockstep".to_string(),
        Limiter::Deliver => "deliver".to_string(),
    }
}

/// Grant-kind label (`window`, `deliver`, `step`) for exports.
fn grant_kind(l: Limiter) -> &'static str {
    match l {
        Limiter::Lockstep => "step",
        Limiter::Deliver => "deliver",
        _ => "window",
    }
}

/// Reconstructs the chain of grants that bounded run completion and
/// classifies each straggler interval.
///
/// Walking back from the last grant to finish, the predecessor of a
/// grant is the latest grant that completed before it was issued — the
/// command whose reply the coordinator had to fold in before this one
/// could go out. Time *inside* a grant is blamed on its limiter
/// (a peer bound ⇒ lookahead-starved, otherwise work-bound); the gap
/// between a predecessor's completion and the successor's issue is
/// coordinator-side merging ⇒ merge-bound. All wall-clock, hence
/// nondeterministic: full-report diagnostics only.
fn diagnose_scaling(
    profile: &ParallelProfile,
    idle_ns: &[u64],
    shard_executed: &[u64],
) -> ScalingDiagnosis {
    let grants = &profile.grants;
    // Walk the chain back from the last completion.
    let mut chain: Vec<&GrantRecord> = Vec::new();
    let mut cur = grants.iter().max_by_key(|g| g.done_ns);
    while let Some(g) = cur {
        chain.push(g);
        cur = grants
            .iter()
            .filter(|p| p.done_ns <= g.issue_ns)
            .max_by_key(|p| p.done_ns);
    }
    chain.reverse();

    // Blame totals over the whole chain (even the links the export cap
    // drops), so the breakdown always accounts for the full path.
    let mut blame = BlameBreakdown::default();
    let mut prev_done: Option<u64> = None;
    let mut links: Vec<CriticalLink> = Vec::with_capacity(chain.len());
    for g in &chain {
        let exec = g.done_ns.saturating_sub(g.issue_ns);
        let gap = prev_done.map_or(0, |d| g.issue_ns.saturating_sub(d));
        blame.merge_bound_ns += gap;
        let starved = matches!(g.limiter, Limiter::Peer(_));
        if starved {
            blame.lookahead_starved_ns += exec;
        } else {
            blame.work_bound_ns += exec;
        }
        let label = if starved {
            "lookahead-starved"
        } else if gap > exec {
            "merge-bound"
        } else {
            "work-bound"
        };
        links.push(CriticalLink {
            shard: g.shard as u32,
            kind: grant_kind(g.limiter).to_string(),
            limiter: limiter_label(g.limiter),
            start_ns: g.issue_ns,
            end_ns: g.done_ns,
            executed: g.executed,
            blame: label.to_string(),
        });
        prev_done = Some(g.done_ns);
    }
    // Keep the links nearest completion when the chain is long.
    if links.len() > ScalingDiagnosis::CRITICAL_PATH_CAP {
        links.drain(..links.len() - ScalingDiagnosis::CRITICAL_PATH_CAP);
    }

    let k = profile.busy_ns.len();
    let per_shard = (0..k)
        .map(|s| ShardLoad {
            shard: s as u32,
            grants: grants.iter().filter(|g| g.shard == s).count() as u64,
            executed: shard_executed.get(s).copied().unwrap_or(0),
            busy_ns: profile.busy_ns[s],
            idle_ns: idle_ns.get(s).copied().unwrap_or(0),
        })
        .collect();

    ScalingDiagnosis {
        shards: k as u32,
        run_wall_ns: profile.run_wall_ns,
        compute_ns: profile.busy_ns.iter().sum(),
        merge_ns: profile.merge_ns,
        idle_ns: idle_ns.iter().sum(),
        grants: grants.len() as u64,
        blame,
        critical_path: links,
        per_shard,
    }
}

/// Core dispatcher: feeds `event` to `dev`'s OS and schedules the actions.
fn dispatch(e: &mut ControlPlaneEngine, dev: DeviceId, event: OsEvent) {
    let now = e.now();
    let idx = dev.index();
    let cur = e.current_event().unwrap_or(EventId::ZERO);
    let actions: OsActions = {
        let world = &mut e.world;
        let Some(os) = world.oses[idx].as_mut() else {
            return;
        };
        // Frames reach only booted devices; timers/mgmt likewise.
        let is_boot = matches!(event, OsEvent::Boot);
        if !is_boot && !world.booted[idx] {
            return;
        }
        // Stamp the event id first: provenance chains the OS builds while
        // handling must point at this event.
        os.begin_event(cur);
        os.handle(now, event)
    };
    // Journaled RIB/FIB mutations become trace records naming the causal
    // chain and decision reason of the installed path.
    if e.world.recorder.trace_enabled() {
        let muts = e.world.oses[idx]
            .as_mut()
            .map(|os| os.take_route_mutations())
            .unwrap_or_default();
        for m in muts {
            let mut fields = vec![("prefix", FieldValue::Str(m.prefix.to_string()))];
            if let Some(prov) = &m.prov {
                fields.push((
                    "origin",
                    FieldValue::Str(prov.origin_kind.label().to_string()),
                ));
                fields.push(("prov", FieldValue::U64(prov.digest())));
                fields.push(("chain_len", FieldValue::U64(prov.hops.len() as u64 + 1)));
            }
            if let Some(reason) = m.reason {
                fields.push(("reason", FieldValue::Str(reason.label().to_string())));
            }
            trace_here(e, m.kind.label(), Some(dev), fields);
        }
    }
    let done = if actions.route_ops > 0 {
        let t = e
            .world
            .work
            .completion(dev, WorkKind::RouteOps(actions.route_ops), now);
        e.world.route_ops_total += actions.route_ops as u64;
        *e.world.route_ops_by_dev.entry(dev).or_insert(0) += actions.route_ops as u64;
        e.world.last_route_activity = e.world.last_route_activity.max(t);
        if let Some(h) = e.world.health.as_mut() {
            *h.ops_since_tick.entry(dev).or_insert(0) += actions.route_ops as u64;
        }
        if e.world.recorder.enabled() {
            let rec = &mut *e.world.recorder;
            rec.device_counter_add("routing.route_churn", dev.0, actions.route_ops as u64);
            rec.device_gauge_max("routing.convergence_ns", dev.0, t.as_nanos());
            rec.gauge_max("routing.last_route_activity_ns", t.as_nanos());
        }
        t
    } else {
        now
    };
    if actions.crashed {
        e.world.crashes.push((now, dev));
    }
    if let Some(resp) = actions.response {
        e.world.mgmt_responses.push((dev, resp));
    }
    let cause = e.current_event();
    for (delay, kind) in actions.timers {
        let key = e.world.device_key(dev);
        e.schedule_event_at(
            done + delay,
            HarnessEvent {
                key,
                cause,
                kind: HarnessEventKind::Timer(dev, kind),
            },
        );
    }
    for (iface, frame) in actions.out {
        let Some(Some(adj)) = e.world.adjacency[idx].get(iface as usize) else {
            continue;
        };
        let (rdev, riface, link) = (adj.remote_dev, adj.remote_iface, adj.link);
        if !e.world.link_up.get(&link).copied().unwrap_or(false) {
            continue;
        }
        let arrive = done + e.world.work.link_delay(link, done);
        // Counted here, after the link-up check: frames *actually sent*
        // are a world fact the parallel replay reproduces exactly.
        if e.world.recorder.enabled() {
            record_frame(&mut *e.world.recorder, &frame, true);
        }
        if e.world.recorder.trace_enabled() {
            trace_here(
                e,
                "frame_tx",
                Some(dev),
                vec![
                    ("kind", FieldValue::Str(frame.kind().to_string())),
                    ("iface", FieldValue::U64(u64::from(iface))),
                ],
            );
        }
        // Keyed by the *sender*: the key travels with the frame, so a
        // cross-shard delivery merges into the receiver's queue at exactly
        // the position the serial engine would have given it.
        let key = e.world.device_key(dev);
        let ev = HarnessEvent {
            key,
            cause,
            kind: HarnessEventKind::Deliver {
                dev: rdev,
                iface: riface,
                frame,
                link,
            },
        };
        if let Some(route) = &mut e.world.shard_route {
            let dest = route.shard_of[rdev.index()];
            if dest != route.self_shard {
                // The receiving shard accounts for the causal unit when
                // it enqueues the envelope at the next window barrier.
                route.outbox.push((dest, arrive, ev));
                continue;
            }
        }
        e.world.causal_pending += 1;
        e.schedule_event_at(arrive, ev);
    }
}

/// Schedules a probe or flow event onto the shard that owns `target`,
/// using the same outbox mechanism as cross-shard frame deliveries.
/// Probe and flow events are non-causal, so no `causal_pending`
/// accounting is needed on either side.
fn schedule_probe(e: &mut ControlPlaneEngine, at: SimTime, target: DeviceId, ev: HarnessEvent) {
    if let Some(route) = &mut e.world.shard_route {
        let dest = route.shard_of[target.index()];
        if dest != route.self_shard {
            route.outbox.push((dest, at, ev));
            return;
        }
    }
    e.schedule_event_at(at, ev);
}

/// One probe-mesh round: run the churn watchdog over the route-operation
/// residue, launch this round's sampled probes from locally owned
/// sources, and schedule the next tick.
///
/// In parallel mode every shard fires the identical (replicated) tick:
/// pair sampling is a pure function of `(seed, round)` over the
/// replicated population, so all shards agree on the plan and each
/// launches exactly the probes whose source it owns — the union is the
/// serial behavior. Each shard also schedules its own copy of the next
/// tick (same time, same key); the join keeps shard 0's copy, exactly
/// like link-state broadcasts.
fn probe_tick(e: &mut ControlPlaneEngine, round: u64) {
    let now = e.now();
    let Some(h) = e.world.health.as_ref() else {
        return;
    };
    let period = h.cfg.period;
    let ppr = h.cfg.pairs_per_round as u64;
    let ttl = h.cfg.ttl;
    let threshold = h.cfg.churn_threshold;
    let plan: Vec<(DeviceId, Ipv4Addr, DeviceId, Ipv4Addr)> = h
        .sample_pairs(round)
        .into_iter()
        .map(|(si, di)| {
            let (sd, sa) = h.population[si];
            let (dd, da) = h.population[di];
            (sd, sa, dd, da)
        })
        .collect();

    // Churn watchdog: route operations per device since the previous
    // tick. The first tick only primes the baseline — boot-time
    // convergence churn is expected, not an anomaly.
    let churn: Vec<(DeviceId, u64)> = {
        let h = e.world.health.as_mut().expect("checked above");
        let residue = std::mem::take(&mut h.ops_since_tick);
        let primed = h.churn_primed;
        h.churn_primed = true;
        if primed {
            let mut hot: Vec<(DeviceId, u64)> = residue
                .into_iter()
                .filter(|&(_, ops)| ops > threshold)
                .collect();
            hot.sort_by_key(|&(d, _)| d.0);
            hot
        } else {
            Vec::new()
        }
    };
    for (dev, ops) in churn {
        record_incident(
            e,
            Incident {
                at: now,
                src: dev,
                dst: dev,
                seq: (1 << 63) | (round << 22) | u64::from(dev.0),
                kind: IncidentKind::FibChurnAnomaly {
                    device: dev,
                    ops,
                    threshold,
                },
            },
        );
    }

    let cause = e.current_event();
    for (i, (src, src_addr, dst, dst_addr)) in plan.into_iter().enumerate() {
        // Only the world holding the source's OS launches: in a shard
        // world that is the owner, serially it is everyone. Removed or
        // never-emulated sources simply do not probe.
        if e.world.oses[src.index()].is_none() {
            continue;
        }
        let probe_seq = round * ppr + i as u64;
        e.world.health.as_mut().expect("checked above").probes_sent += 1;
        if e.world.recorder.enabled() {
            e.world.recorder.counter_add("health.probes_sent", 1);
        }
        e.schedule_event_at(
            now,
            HarnessEvent {
                key: probe_hop_key(probe_seq, 0),
                cause,
                kind: HarnessEventKind::ProbeHop {
                    src,
                    src_addr,
                    dst,
                    dst_addr,
                    dev: src,
                    ingress: None,
                    ttl,
                    probe_seq,
                    path_ns: 0,
                },
            },
        );
    }

    e.schedule_event_at(
        now + period,
        HarnessEvent {
            key: PROBE_TICK_KEY | (round + 1),
            cause: None,
            kind: HarnessEventKind::ProbeTick { round: round + 1 },
        },
    );
}

/// What one probe hop resolved to (computed under a scoped world borrow,
/// acted on afterwards).
enum HopStep {
    Lost(ProbeOutcome, Option<IncidentKind>),
    Delivered,
    Forward {
        next_dev: DeviceId,
        next_iface: u32,
        link: LinkId,
    },
}

/// One probe packet at one device: re-uses the dataplane's
/// [`decide`] over the device's live FIB — the same forwarding logic
/// `trace_packet` walks — but hop by hop in virtual time, so transient
/// state (a link that is down *right now*, a FIB entry not yet
/// withdrawn) is what the probe actually experiences.
#[allow(clippy::too_many_arguments)]
fn probe_hop(
    e: &mut ControlPlaneEngine,
    src: DeviceId,
    src_addr: Ipv4Addr,
    dst: DeviceId,
    dst_addr: Ipv4Addr,
    dev: DeviceId,
    ingress: Option<u32>,
    ttl: u8,
    probe_seq: u64,
    path_ns: u64,
) {
    let now = e.now();
    let Some(cfg_ttl) = e.world.health.as_ref().map(|h| h.cfg.ttl) else {
        return;
    };
    let hop_index = u32::from(cfg_ttl.saturating_sub(ttl));

    let step = {
        let world = &mut e.world;
        let idx = dev.index();
        match world.oses[idx].as_deref() {
            None => HopStep::Lost(ProbeOutcome::DeviceDown, None),
            Some(os) if !world.booted[idx] || os.is_down() => {
                HopStep::Lost(ProbeOutcome::DeviceDown, None)
            }
            Some(os) => {
                // The witness a gray failure produces: the FIB entry the
                // device *would have used*, with its provenance digest.
                let matched = os.fib().lookup(dst_addr).map(|(p, _)| p);
                let witness = |prefix: Ipv4Prefix| {
                    IncidentKind::Blackhole(GrayFailureWitness {
                        device: dev,
                        hop: hop_index,
                        prefix: Some(prefix),
                        prov_digest: os.route_detail(prefix).map(|d| d.prov.digest()),
                    })
                };
                if world.fwd_disabled.contains(&dev) {
                    // Forwarding silently dead: sessions stay up, the FIB
                    // stays "correct" — only a live probe can see this.
                    match matched {
                        Some(prefix) => {
                            HopStep::Lost(ProbeOutcome::Blackhole, Some(witness(prefix)))
                        }
                        None => HopStep::Lost(ProbeOutcome::NoRoute, None),
                    }
                } else {
                    let pkt = Ipv4Packet {
                        src: src_addr,
                        dst: dst_addr,
                        protocol: crystalnet_dataplane::ipproto::UDP,
                        ttl,
                        identification: probe_seq as u16,
                        payload: bytes::Bytes::new(),
                    };
                    let locals = os.local_addrs();
                    let decision = decide(os.fib(), &locals, &pkt, |s, d| {
                        os.filter_permits(ingress, s, d)
                    });
                    match decision {
                        ForwardDecision::Deliver => HopStep::Delivered,
                        ForwardDecision::DropTtlExpired => HopStep::Lost(
                            ProbeOutcome::TtlExpired,
                            Some(IncidentKind::ForwardingLoop {
                                device: dev,
                                hop: hop_index,
                            }),
                        ),
                        ForwardDecision::DropNoRoute => HopStep::Lost(ProbeOutcome::NoRoute, None),
                        ForwardDecision::DropAcl => HopStep::Lost(ProbeOutcome::AclDrop, None),
                        ForwardDecision::Forward(hop) => {
                            if hop.iface == crate::bgp::LOCAL_IFACE {
                                HopStep::Delivered
                            } else {
                                match world.adjacency[idx].get(hop.iface as usize) {
                                    Some(Some(adj)) => {
                                        if world.link_up.get(&adj.link).copied().unwrap_or(false) {
                                            HopStep::Forward {
                                                next_dev: adj.remote_dev,
                                                next_iface: adj.remote_iface,
                                                link: adj.link,
                                            }
                                        } else {
                                            // The FIB still points at a dead
                                            // link: stale state, gray failure.
                                            match matched {
                                                Some(prefix) => HopStep::Lost(
                                                    ProbeOutcome::Blackhole,
                                                    Some(witness(prefix)),
                                                ),
                                                None => HopStep::Lost(ProbeOutcome::NoRoute, None),
                                            }
                                        }
                                    }
                                    _ => HopStep::Lost(ProbeOutcome::NoRoute, None),
                                }
                            }
                        }
                    }
                }
            }
        }
    };

    match step {
        HopStep::Forward {
            next_dev,
            next_iface,
            link,
        } => {
            let delay = e.world.work.link_delay(link, now);
            let arrive = now + delay;
            let cause = e.current_event();
            schedule_probe(
                e,
                arrive,
                next_dev,
                HarnessEvent {
                    key: probe_hop_key(probe_seq, hop_index + 1),
                    cause,
                    kind: HarnessEventKind::ProbeHop {
                        src,
                        src_addr,
                        dst,
                        dst_addr,
                        dev: next_dev,
                        ingress: Some(next_iface),
                        ttl: ttl - 1,
                        probe_seq,
                        path_ns: path_ns + delay.as_nanos(),
                    },
                },
            );
        }
        HopStep::Delivered | HopStep::Lost(..) => {
            let outcome = match &step {
                HopStep::Delivered => ProbeOutcome::Delivered,
                HopStep::Lost(o, _) => *o,
                HopStep::Forward { .. } => unreachable!(),
            };
            if let HopStep::Lost(_, Some(kind)) = step {
                record_incident(
                    e,
                    Incident {
                        at: now,
                        src,
                        dst,
                        seq: probe_seq,
                        kind,
                    },
                );
            }
            // The report returns to the source's shard. Scheduling it
            // `path_ns` out is lookahead-honest: the forward path's
            // accumulated link delays bound the shard-pair distance the
            // matrix derived from the same (time-invariant) link delays.
            let cause = e.current_event();
            schedule_probe(
                e,
                now + SimDuration::from_nanos(path_ns),
                src,
                HarnessEvent {
                    key: probe_report_key(probe_seq),
                    cause,
                    kind: HarnessEventKind::ProbeReport {
                        src,
                        dst,
                        probe_seq,
                        outcome,
                        path_ns,
                    },
                },
            );
        }
    }
}

/// A probe's fate lands on its source's gauges: per-pair counts and the
/// rolling SLO window, plus the breach watchdog on the transition.
fn probe_report(
    e: &mut ControlPlaneEngine,
    src: DeviceId,
    dst: DeviceId,
    probe_seq: u64,
    outcome: ProbeOutcome,
    path_ns: u64,
) {
    let now = e.now();
    let Some(h) = e.world.health.as_mut() else {
        return;
    };
    let cfg = h.cfg.clone();
    let delivered = outcome.delivered();
    let stats = h.pairs.entry((src, dst)).or_default();
    let fired = stats.record(delivered, path_ns, &cfg);
    let window_lost = stats.window_lost();
    if delivered {
        h.probes_delivered += 1;
    } else {
        h.probes_lost += 1;
    }
    if e.world.recorder.enabled() {
        e.world.recorder.counter_add(
            if delivered {
                "health.probes_delivered"
            } else {
                "health.probes_lost"
            },
            1,
        );
    }
    if fired {
        record_incident(
            e,
            Incident {
                at: now,
                src,
                dst,
                seq: probe_seq,
                kind: IncidentKind::SloBreach {
                    window_lost,
                    window: cfg.slo_window as u64,
                },
            },
        );
    }
}

/// Emits the trace record for one watchdog firing (shared by the
/// health and traffic planes) — this is what carries incidents into the
/// JSONL/Chrome exports for free.
fn trace_incident(e: &mut ControlPlaneEngine, inc: &Incident) {
    let site = match &inc.kind {
        IncidentKind::Blackhole(w) => w.device,
        IncidentKind::ForwardingLoop { device, .. }
        | IncidentKind::FibChurnAnomaly { device, .. }
        | IncidentKind::LinkOversubscribed { device, .. }
        | IncidentKind::EcmpPolarisation { device, .. } => *device,
        IncidentKind::SloBreach { .. } | IncidentKind::FlowSloBreach { .. } => inc.src,
    };
    let mut fields = vec![
        ("kind", FieldValue::Str(inc.kind.label().to_string())),
        ("src", FieldValue::U64(u64::from(inc.src.0))),
        ("dst", FieldValue::U64(u64::from(inc.dst.0))),
        ("seq", FieldValue::U64(inc.seq)),
    ];
    match &inc.kind {
        IncidentKind::Blackhole(w) => {
            fields.push(("hop", FieldValue::U64(u64::from(w.hop))));
            if let Some(p) = w.prefix {
                fields.push(("prefix", FieldValue::Str(p.to_string())));
            }
            if let Some(d) = w.prov_digest {
                fields.push(("prov", FieldValue::U64(d)));
            }
        }
        IncidentKind::ForwardingLoop { hop, .. } => {
            fields.push(("hop", FieldValue::U64(u64::from(*hop))));
        }
        IncidentKind::SloBreach {
            window_lost,
            window,
        }
        | IncidentKind::FlowSloBreach {
            window_lost,
            window,
        } => {
            fields.push(("window_lost", FieldValue::U64(*window_lost)));
            fields.push(("window", FieldValue::U64(*window)));
        }
        IncidentKind::FibChurnAnomaly { ops, threshold, .. } => {
            fields.push(("ops", FieldValue::U64(*ops)));
            fields.push(("threshold", FieldValue::U64(*threshold)));
        }
        IncidentKind::LinkOversubscribed {
            link,
            bytes,
            capacity_bytes,
            ..
        } => {
            fields.push(("link", FieldValue::U64(u64::from(link.0))));
            fields.push(("bytes", FieldValue::U64(*bytes)));
            fields.push(("capacity_bytes", FieldValue::U64(*capacity_bytes)));
        }
        IncidentKind::EcmpPolarisation {
            iface,
            share_pct,
            members,
            ..
        } => {
            fields.push(("iface", FieldValue::U64(u64::from(*iface))));
            fields.push(("share_pct", FieldValue::U64(*share_pct)));
            fields.push(("members", FieldValue::U64(*members)));
        }
    }
    trace_here(e, "incident", Some(site), fields);
}

/// Lands one health-plane watchdog firing: onto the canonical incident
/// timeline, the `health.incidents` counter, and the trace sink.
fn record_incident(e: &mut ControlPlaneEngine, inc: Incident) {
    if e.world.recorder.enabled() {
        e.world.recorder.counter_add("health.incidents", 1);
    }
    if e.world.recorder.trace_enabled() {
        trace_incident(e, &inc);
    }
    e.world
        .health
        .as_mut()
        .expect("incidents only fire with the health plane enabled")
        .incidents
        .push(inc);
}

/// Lands one traffic-plane (congestion) watchdog firing: onto the
/// traffic incident timeline, the `traffic.incidents` counter, and the
/// trace sink.
fn record_traffic_incident(e: &mut ControlPlaneEngine, inc: Incident) {
    if e.world.recorder.enabled() {
        e.world.recorder.counter_add("traffic.incidents", 1);
    }
    if e.world.recorder.trace_enabled() {
        trace_incident(e, &inc);
    }
    e.world
        .traffic
        .as_mut()
        .expect("congestion incidents only fire with the traffic plane enabled")
        .incidents
        .push(inc);
}

/// One traffic round: run the congestion watchdogs over the utilisation
/// residue, launch this round's sampled flows from locally owned
/// sources, and schedule the next tick.
///
/// In parallel mode every shard fires the identical (replicated) tick.
/// Flow sampling is a pure function of `(seed, round)` over the
/// replicated population, so all shards agree on the plan and each
/// launches exactly the flows whose source it owns; the link/ECMP
/// residues a shard holds are exactly those of its owned devices, so
/// each watchdog verdict is computed on exactly one shard and the union
/// is the serial behavior. Each shard also schedules its own copy of
/// the next tick (same time, same key); the join keeps shard 0's copy,
/// exactly like link-state broadcasts.
fn traffic_tick(e: &mut ControlPlaneEngine, round: u64) {
    let now = e.now();
    let Some(t) = e.world.traffic.as_ref() else {
        return;
    };
    let period = t.cfg.period;
    let fpr = t.cfg.flows_per_round as u64;
    let ttl = t.cfg.ttl;
    let capacity_bytes = t.cfg.capacity_bytes_per_period();
    let oversub_pct = u64::from(t.cfg.oversub_pct);
    let polarisation_pct = u64::from(t.cfg.polarisation_pct);
    let polarisation_min = t.cfg.polarisation_min_bytes;
    let plan: Vec<(DeviceId, Ipv4Addr, DeviceId, Ipv4Addr, u64)> = t
        .sample_flows(round)
        .iter()
        .map(|f| {
            let (sd, sa) = t.population[f.src];
            let (dd, da) = t.population[f.dst];
            (sd, sa, dd, da, f.bytes)
        })
        .collect();

    // Over-subscription watchdog: bytes per directional link since the
    // previous tick against the capacity threshold. The residue maps
    // hold only locally-owned transmitting devices, so every verdict is
    // computed on exactly one world.
    let incidents: Vec<Incident> = {
        let t = e.world.traffic.as_mut().expect("checked above");
        let tx_residue = std::mem::take(&mut t.tx_since_tick);
        let ecmp_residue = std::mem::take(&mut t.ecmp_since_tick);
        let mut fired = Vec::new();
        for (&(dev, link), &bytes) in &tx_residue {
            let peak = t.link_peak.entry((dev, link)).or_insert(0);
            *peak = (*peak).max(bytes);
            if bytes * 100 > oversub_pct * capacity_bytes {
                fired.push(Incident {
                    at: now,
                    src: dev,
                    dst: dev,
                    seq: (0b101 << 61) | (u64::from(dev.0) << 24) | u64::from(link.0 & 0xff_ffff),
                    kind: IncidentKind::LinkOversubscribed {
                        link,
                        device: dev,
                        bytes,
                        capacity_bytes,
                    },
                });
            }
        }
        // Polarisation watchdog: one member of a ≥2-member ECMP group
        // absorbing more than the threshold share of the device's
        // hashed bytes over a non-trivial sample.
        for (&dev, res) in &ecmp_residue {
            let total: u64 = res.by_iface.values().sum();
            if res.members_max < 2 || total < polarisation_min {
                continue;
            }
            let (hot_iface, hot_bytes) = res
                .by_iface
                .iter()
                .map(|(i, b)| (*i, *b))
                .max_by_key(|&(i, b)| (b, std::cmp::Reverse(i)))
                .expect("residue entries are non-empty");
            if hot_bytes * 100 > polarisation_pct * total {
                fired.push(Incident {
                    at: now,
                    src: dev,
                    dst: dev,
                    seq: (0b110 << 61) | (u64::from(dev.0) << 8) | u64::from(hot_iface & 0xff),
                    kind: IncidentKind::EcmpPolarisation {
                        device: dev,
                        iface: hot_iface,
                        share_pct: hot_bytes * 100 / total,
                        members: res.members_max,
                    },
                });
            }
        }
        fired
    };
    for inc in incidents {
        record_traffic_incident(e, inc);
    }

    let cause = e.current_event();
    for (i, (src, src_addr, dst, dst_addr, bytes)) in plan.into_iter().enumerate() {
        // Only the world holding the source's OS launches: in a shard
        // world that is the owner, serially it is everyone.
        if e.world.oses[src.index()].is_none() {
            continue;
        }
        let flow_seq = round * fpr + i as u64;
        {
            let t = e.world.traffic.as_mut().expect("checked above");
            t.flows_sent += 1;
            t.bytes_offered += bytes;
        }
        if e.world.recorder.enabled() {
            e.world.recorder.counter_add("traffic.flows_sent", 1);
            e.world.recorder.counter_add("traffic.bytes_offered", bytes);
        }
        e.schedule_event_at(
            now,
            HarnessEvent {
                key: flow_hop_key(flow_seq, 0),
                cause,
                kind: HarnessEventKind::FlowHop {
                    src,
                    src_addr,
                    dst,
                    dst_addr,
                    dev: src,
                    ingress: None,
                    ttl,
                    flow_seq,
                    bytes,
                    rerouted: false,
                    path_ns: 0,
                },
            },
        );
    }

    e.schedule_event_at(
        now + period,
        HarnessEvent {
            key: TRAFFIC_TICK_KEY | (round + 1),
            cause: None,
            kind: HarnessEventKind::TrafficTick { round: round + 1 },
        },
    );
}

/// One flow at one device: the same [`decide`] walk a probe makes, but
/// the flow's `identification` is its sequence number — so ECMP's
/// 5-tuple hash spreads concurrent flows over group members — and every
/// traversed link is charged the flow's bytes for the utilisation
/// gauges and congestion residues. Lost flows feed the flow SLO
/// windows; the *witness*-producing gray-failure watchdogs stay the
/// probe mesh's job (a loss here is never double-reported as a
/// blackhole).
#[allow(clippy::too_many_arguments)]
fn flow_hop(
    e: &mut ControlPlaneEngine,
    src: DeviceId,
    src_addr: Ipv4Addr,
    dst: DeviceId,
    dst_addr: Ipv4Addr,
    dev: DeviceId,
    ingress: Option<u32>,
    ttl: u8,
    flow_seq: u64,
    bytes: u64,
    rerouted: bool,
    path_ns: u64,
) {
    let now = e.now();
    let Some(cfg_ttl) = e.world.traffic.as_ref().map(|t| t.cfg.ttl) else {
        return;
    };
    let hop_index = u32::from(cfg_ttl.saturating_sub(ttl));

    // Resolve the forwarding decision under a scoped world borrow; the
    // accounting facts (matched prefix, next-hop digest, group size,
    // chosen egress) are collected here and charged afterwards.
    let (step, acct, egress) = {
        let world = &mut e.world;
        let idx = dev.index();
        match world.oses[idx].as_deref() {
            None => (HopStep::Lost(ProbeOutcome::DeviceDown, None), None, None),
            Some(os) if !world.booted[idx] || os.is_down() => {
                (HopStep::Lost(ProbeOutcome::DeviceDown, None), None, None)
            }
            Some(os) if world.fwd_disabled.contains(&dev) => {
                let outcome = if os.fib().lookup(dst_addr).is_some() {
                    ProbeOutcome::Blackhole
                } else {
                    ProbeOutcome::NoRoute
                };
                (HopStep::Lost(outcome, None), None, None)
            }
            Some(os) => {
                let pkt = Ipv4Packet {
                    src: src_addr,
                    dst: dst_addr,
                    protocol: crystalnet_dataplane::ipproto::TCP,
                    ttl,
                    identification: flow_seq as u16,
                    payload: bytes::Bytes::new(),
                };
                let locals = os.local_addrs();
                let decision = decide(os.fib(), &locals, &pkt, |s, d| {
                    os.filter_permits(ingress, s, d)
                });
                let acct = os
                    .fib()
                    .lookup(dst_addr)
                    .map(|(p, entry)| (p, entry_sig(entry), entry.next_hops.len()));
                let (step, egress) = match decision {
                    ForwardDecision::Deliver => (HopStep::Delivered, None),
                    ForwardDecision::DropTtlExpired => {
                        (HopStep::Lost(ProbeOutcome::TtlExpired, None), None)
                    }
                    ForwardDecision::DropNoRoute => {
                        (HopStep::Lost(ProbeOutcome::NoRoute, None), None)
                    }
                    ForwardDecision::DropAcl => (HopStep::Lost(ProbeOutcome::AclDrop, None), None),
                    ForwardDecision::Forward(hop) => {
                        if hop.iface == crate::bgp::LOCAL_IFACE {
                            (HopStep::Delivered, None)
                        } else {
                            match world.adjacency[idx].get(hop.iface as usize) {
                                Some(Some(adj)) => {
                                    if world.link_up.get(&adj.link).copied().unwrap_or(false) {
                                        (
                                            HopStep::Forward {
                                                next_dev: adj.remote_dev,
                                                next_iface: adj.remote_iface,
                                                link: adj.link,
                                            },
                                            Some((adj.link, hop.iface)),
                                        )
                                    } else {
                                        // FIB points at a dead link: the
                                        // flow dies where a probe would.
                                        (HopStep::Lost(ProbeOutcome::Blackhole, None), None)
                                    }
                                }
                                _ => (HopStep::Lost(ProbeOutcome::NoRoute, None), None),
                            }
                        }
                    }
                };
                (step, acct, egress)
            }
        }
    };

    // Charge the reroute detector on every observation, the link and
    // ECMP residues only on actual transmission. All keys are owned by
    // `dev`, whose shard is executing this hop.
    let mut rerouted = rerouted;
    if let Some((prefix, sig, members)) = acct {
        let t = e.world.traffic.as_mut().expect("checked above");
        rerouted |= t.note_route(dev, prefix, sig);
        if let Some((link, iface)) = egress {
            *t.tx_since_tick.entry((dev, link)).or_insert(0) += bytes;
            *t.link_bytes.entry((dev, link)).or_insert(0) += bytes;
            if members >= 2 {
                let res = t.ecmp_since_tick.entry(dev).or_default();
                *res.by_iface.entry(iface).or_insert(0) += bytes;
                res.members_max = res.members_max.max(members as u64);
            }
        }
    }

    match step {
        HopStep::Forward {
            next_dev,
            next_iface,
            link,
        } => {
            let delay = e.world.work.link_delay(link, now);
            let arrive = now + delay;
            let cause = e.current_event();
            schedule_probe(
                e,
                arrive,
                next_dev,
                HarnessEvent {
                    key: flow_hop_key(flow_seq, hop_index + 1),
                    cause,
                    kind: HarnessEventKind::FlowHop {
                        src,
                        src_addr,
                        dst,
                        dst_addr,
                        dev: next_dev,
                        ingress: Some(next_iface),
                        ttl: ttl - 1,
                        flow_seq,
                        bytes,
                        rerouted,
                        path_ns: path_ns + delay.as_nanos(),
                    },
                },
            );
        }
        HopStep::Delivered | HopStep::Lost(..) => {
            let outcome = match &step {
                HopStep::Delivered => ProbeOutcome::Delivered,
                HopStep::Lost(o, _) => *o,
                HopStep::Forward { .. } => unreachable!(),
            };
            // The report returns to the source's shard, `path_ns` out —
            // lookahead-honest for the same reason probe reports are.
            let cause = e.current_event();
            schedule_probe(
                e,
                now + SimDuration::from_nanos(path_ns),
                src,
                HarnessEvent {
                    key: flow_report_key(flow_seq),
                    cause,
                    kind: HarnessEventKind::FlowReport {
                        src,
                        dst,
                        flow_seq,
                        outcome,
                        bytes,
                        rerouted,
                        path_ns,
                    },
                },
            );
        }
    }
}

/// A flow's fate lands on its source's gauges: per-pair counts, the
/// rolling flow SLO window (with the breach watchdog on the
/// transition), byte totals, and the rerouted-during-transient counter.
#[allow(clippy::too_many_arguments)]
fn flow_report(
    e: &mut ControlPlaneEngine,
    src: DeviceId,
    dst: DeviceId,
    flow_seq: u64,
    outcome: ProbeOutcome,
    bytes: u64,
    rerouted: bool,
    path_ns: u64,
) {
    let now = e.now();
    let Some(t) = e.world.traffic.as_mut() else {
        return;
    };
    let (slo_window, slo_loss_pct) = (t.cfg.slo_window, t.cfg.slo_loss_pct);
    let delivered = outcome.delivered();
    let stats = t.pairs.entry((src, dst)).or_default();
    let fired = stats.record_windowed(delivered, path_ns, slo_window, slo_loss_pct);
    let window_lost = stats.window_lost();
    if delivered {
        t.flows_delivered += 1;
        t.bytes_delivered += bytes;
    } else {
        t.flows_lost += 1;
        t.bytes_lost += bytes;
    }
    if rerouted {
        t.flows_rerouted += 1;
    }
    if e.world.recorder.enabled() {
        let rec = &mut *e.world.recorder;
        if delivered {
            rec.counter_add("traffic.flows_delivered", 1);
            rec.counter_add("traffic.bytes_delivered", bytes);
        } else {
            rec.counter_add("traffic.flows_lost", 1);
            rec.counter_add("traffic.bytes_lost", bytes);
        }
        if rerouted {
            rec.counter_add("traffic.flows_rerouted", 1);
        }
    }
    if fired {
        record_traffic_incident(
            e,
            Incident {
                at: now,
                src,
                dst,
                seq: (1 << 61) | flow_seq,
                kind: IncidentKind::FlowSloBreach {
                    window_lost,
                    window: slo_window as u64,
                },
            },
        );
    }
}

/// Classifies a frame into the canonical counter set. `sent` selects the
/// TX names (counted after the link-up check in [`dispatch`]) versus the
/// RX names (counted at delivery); both sets are world facts that the
/// parallel replay reproduces bit-identically.
fn record_frame(rec: &mut dyn Recorder, frame: &Frame, sent: bool) {
    let (frames, opens, updates, keepalives, notifications) = if sent {
        (
            "routing.frames_sent",
            "routing.bgp_opens_sent",
            "routing.bgp_updates_sent",
            "routing.bgp_keepalives_sent",
            "routing.bgp_notifications_sent",
        )
    } else {
        (
            "routing.frames_delivered",
            "routing.bgp_opens_received",
            "routing.bgp_updates_received",
            "routing.bgp_keepalives_received",
            "routing.bgp_notifications_received",
        )
    };
    rec.counter_add(frames, 1);
    if let Frame::Bgp(msg) = frame {
        match msg {
            BgpMsg::Open { .. } => rec.counter_add(opens, 1),
            BgpMsg::Update {
                announced,
                withdrawn,
            } => {
                rec.counter_add(updates, 1);
                if sent {
                    rec.counter_add("routing.bgp_prefixes_announced", announced.len() as u64);
                    rec.counter_add("routing.bgp_prefixes_withdrawn", withdrawn.len() as u64);
                }
            }
            BgpMsg::Keepalive => rec.counter_add(keepalives, 1),
            BgpMsg::Notification { .. } => rec.counter_add(notifications, 1),
            BgpMsg::RouteRefresh => rec.counter_add(
                if sent {
                    "routing.bgp_refreshes_sent"
                } else {
                    "routing.bgp_refreshes_received"
                },
                1,
            ),
        }
    }
}

/// Builds a harness where every device in `topo` runs a BGP firmware
/// image generated from its production configuration, with the vendor
/// profile chosen by `profile_for`.
///
/// Devices for which `profile_for` returns `None` get no OS (useful for
/// leaving externals dark or substituting speakers).
pub fn build_bgp_sim(
    topo: &Topology,
    work: Box<dyn WorkModel>,
    mut profile_for: impl FnMut(
        DeviceId,
        &crystalnet_net::Device,
    ) -> Option<crate::vendor::VendorProfile>,
) -> ControlPlaneSim {
    let mut sim = ControlPlaneSim::new(topo, work);
    for (id, dev) in topo.devices() {
        if let Some(profile) = profile_for(id, dev) {
            let cfg = crystalnet_config::generate_device(topo, id);
            let os = crate::bgp::BgpRouterOs::new(profile, cfg, dev.loopback);
            sim.add_os(id, Box::new(os));
        }
    }
    sim
}

/// [`build_bgp_sim`] with every device (externals included) running the
/// released profile of its own vendor — the "production ground truth"
/// configuration used for speaker synthesis and differential validation.
pub fn build_full_bgp_sim(topo: &Topology, work: Box<dyn WorkModel>) -> ControlPlaneSim {
    build_bgp_sim(topo, work, |_, dev| {
        Some(crate::vendor::VendorProfile::for_vendor(dev.vendor))
    })
}
