//! The BGP-4 routing engine behind the emulated firmware images.
//!
//! This is the reproduction's stand-in for the proprietary vendor NOS
//! images CrystalNet boots: a complete eBGP implementation — session
//! handshake, Adj-RIB-In per peer, the full decision process with ECMP
//! multipath, policy application, `aggregate-address` with vendor-divergent
//! AS-path construction (Figure 1), MRAI-batched advertisement, FIB
//! install with hardware capacity limits (§2's blackhole incident), and
//! the injectable firmware bugs of [`crate::vendor::Quirks`].
//!
//! Design notes for scale (Table 3's O(20M) routes): path attributes are
//! `Arc`-shared; updates are batched per MRAI interval into single
//! messages; the exporter skips peers whose AS already appears in the
//! path (sender-side loop check), which is what makes Clos fabrics with
//! shared layer ASes converge in O(links) messages instead of O(links^2).

use crate::attrs::{Origin, PathAttrs};
use crate::msg::{BgpMsg, Frame};
use crate::os::{DeviceOs, MgmtCommand, MgmtResponse, OsActions, OsEvent, TimerKind};
use crate::provenance::{
    DecisionReason, MutationKind, OriginKind, Provenance, RouteDetail, RouteMutation,
};
use crate::vendor::{AggregateMode, FibOverflow, VendorProfile};
use crystalnet_config::{Action, DeviceConfig, RouteMap, RouteMatch, RouteSet};
use crystalnet_dataplane::{Fib, FibEntry, NextHop};
use crystalnet_net::{Asn, Ipv4Addr, Ipv4Prefix};
use crystalnet_sim::{EventId, SimTime};
use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Attr equality with the interner's pointer fast path: interned handles
/// are `ptr_eq` iff structurally equal, so the deep comparison only runs
/// for attrs that bypassed [`PathAttrs::intern`] (hand-built test fixtures).
#[inline]
fn same_attrs(a: &Arc<PathAttrs>, b: &Arc<PathAttrs>) -> bool {
    Arc::ptr_eq(a, b) || a == b
}

/// Sentinel interface index meaning "locally attached / deliver here".
pub const LOCAL_IFACE: u32 = u32::MAX;

/// BGP session state (simplified FSM: Idle → OpenSent → Established).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Not trying / administratively down / link down.
    Idle,
    /// Open sent, waiting for the peer.
    OpenSent,
    /// Routes flow.
    Established,
}

/// Where a Loc-RIB best route came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RouteSource {
    /// A `network` statement.
    Local,
    /// An `aggregate-address`.
    Aggregate,
    /// Learned from peer `index` (the best one among the ECMP set).
    Peer(usize),
}

#[derive(Debug, Clone)]
struct LocEntry {
    /// Attributes as learned/originated (pre-export).
    attrs: Arc<PathAttrs>,
    source: RouteSource,
    /// ECMP peer indexes (empty for local/aggregate).
    ecmp: Vec<usize>,
    /// Monotonic change tick (drives timing-dependent aggregate
    /// contributor selection, the §9 non-determinism).
    changed_tick: u64,
    /// Causal chain of the winning path (interned; cloned from the
    /// Adj-RIB-In entry for learned routes, so no per-decision work).
    prov: Arc<Provenance>,
    /// Why the winning path won.
    reason: DecisionReason,
}

/// An Adj-RIB entry: attributes plus the causal chain that announced them
/// (both interned, so cloning the pair is two refcount bumps).
type RibAttrs = (Arc<PathAttrs>, Arc<Provenance>);

#[derive(Debug, Clone)]
struct Peer {
    addr: Ipv4Addr,
    remote_as: Asn,
    iface: u32,
    shutdown: bool,
    route_map_in: Option<String>,
    route_map_out: Option<String>,
    state: SessionState,
    link_up: bool,
    /// Session token of the peer's current incarnation.
    remote_token: Option<u64>,
    adj_in: HashMap<Ipv4Prefix, RibAttrs>,
    /// Last flushed Adj-RIB-Out.
    advertised: HashMap<Ipv4Prefix, RibAttrs>,
    /// Pending (MRAI-batched) changes; `None` = withdraw.
    pending: HashMap<Ipv4Prefix, Option<RibAttrs>>,
}

impl Peer {
    fn effective_advertised(&self, prefix: Ipv4Prefix) -> Option<&RibAttrs> {
        match self.pending.get(&prefix) {
            Some(p) => p.as_ref(),
            None => self.advertised.get(&prefix),
        }
    }
}

/// A BGP router OS instance (one emulated firmware image).
#[derive(Clone)]
pub struct BgpRouterOs {
    profile: VendorProfile,
    config: DeviceConfig,
    hostname: String,
    asn: Asn,
    router_id: Ipv4Addr,
    loopback: Ipv4Addr,
    local_addrs: Vec<Ipv4Addr>,
    iface_addr: HashMap<u32, Ipv4Addr>,
    peers: Vec<Peer>,
    peer_by_iface: HashMap<u32, usize>,
    networks: BTreeSet<Ipv4Prefix>,
    loc_rib: HashMap<Ipv4Prefix, LocEntry>,
    fib: Fib,
    /// The ASIC view for images with an external forwarding emulator
    /// (CTNR-B + BMv2, §6.2); `None` for single-FIB vendors.
    asic_fib: Option<Fib>,
    dirty: BTreeSet<Ipv4Prefix>,
    mrai_armed: bool,
    change_tick: u64,
    flaps: u32,
    down: bool,
    booted: bool,
    /// This control-plane incarnation's identity (changes on every boot
    /// and config replace — models the TCP connection epoch).
    session_token: u64,
    /// Stable id of the event being handled ([`DeviceOs::begin_event`]);
    /// stamps provenance hops and originations.
    cur_event: EventId,
    /// Whether to journal RIB/FIB mutations for the trace sink.
    tracing: bool,
    /// Mutations journaled since the last `take_route_mutations`.
    mutations: Vec<RouteMutation>,
}

impl BgpRouterOs {
    /// Boots-to-be image with `config` under `profile`.
    ///
    /// The loopback doubles as the router id when the config leaves the
    /// router id unset.
    #[must_use]
    pub fn new(profile: VendorProfile, config: DeviceConfig, loopback: Ipv4Addr) -> Self {
        let has_asic = profile.vendor == crystalnet_net::Vendor::CtnrB;
        let mut os = BgpRouterOs {
            profile,
            hostname: config.hostname.clone(),
            asn: Asn(0),
            router_id: Ipv4Addr::UNSPECIFIED,
            loopback,
            local_addrs: vec![],
            iface_addr: HashMap::new(),
            peers: vec![],
            peer_by_iface: HashMap::new(),
            networks: BTreeSet::new(),
            loc_rib: HashMap::new(),
            fib: Fib::new(config.fib_capacity),
            asic_fib: has_asic.then(|| Fib::new(config.fib_capacity)),
            dirty: BTreeSet::new(),
            mrai_armed: false,
            change_tick: 0,
            flaps: 0,
            down: false,
            booted: false,
            session_token: 0,
            cur_event: EventId::ZERO,
            tracing: false,
            mutations: Vec::new(),
            config,
        };
        os.apply_config_internal();
        os
    }

    /// The vendor profile in effect.
    #[must_use]
    pub fn profile(&self) -> &VendorProfile {
        &self.profile
    }

    /// The running configuration.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Addresses owned by this device (interfaces + loopback).
    #[must_use]
    pub fn local_addrs(&self) -> &[Ipv4Addr] {
        &self.local_addrs
    }

    /// Established peer addresses.
    #[must_use]
    pub fn established_peers(&self) -> Vec<Ipv4Addr> {
        self.peers
            .iter()
            .filter(|p| p.state == SessionState::Established)
            .map(|p| p.addr)
            .collect()
    }

    /// Total Adj-RIB-In entries across peers.
    #[must_use]
    pub fn adj_rib_in_size(&self) -> usize {
        self.peers.iter().map(|p| p.adj_in.len()).sum()
    }

    /// The Loc-RIB as `(prefix, attrs, ecmp-width)` rows.
    #[must_use]
    pub fn loc_rib(&self) -> Vec<(Ipv4Prefix, Arc<PathAttrs>, usize)> {
        let mut rows: Vec<_> = self
            .loc_rib
            .iter()
            .map(|(p, e)| (*p, e.attrs.clone(), e.ecmp.len()))
            .collect();
        rows.sort_by_key(|(p, _, _)| *p);
        rows
    }

    /// Session flap count (drives the Case-2 crash bug).
    #[must_use]
    pub fn flap_count(&self) -> u32 {
        self.flaps
    }

    /// Evaluates this firmware's inbound ACL on `iface` the way this
    /// vendor parses it — including the §2 v1/v2 misread quirk.
    #[must_use]
    pub fn acl_permits(&self, iface: u32, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let Some(icfg) = self.config.interfaces.get(iface as usize) else {
            return true;
        };
        let Some(name) = &icfg.acl_in else {
            return true;
        };
        let Some(acl) = self.config.acls.get(name) else {
            return true; // unbound ACL name: no filter installed
        };
        if self.profile.quirks.acl_v2_misread {
            acl.permits_v2_misread(src, dst)
        } else {
            acl.permits(src, dst)
        }
    }

    // ------------------------------------------------------------------
    // Configuration
    // ------------------------------------------------------------------

    fn apply_config_internal(&mut self) {
        self.hostname = self.config.hostname.clone();
        self.iface_addr.clear();
        self.local_addrs.clear();
        self.local_addrs.push(self.loopback);
        for (idx, iface) in self.config.interfaces.iter().enumerate() {
            if let Some(cidr) = iface.addr {
                self.iface_addr.insert(idx as u32, cidr.addr);
                self.local_addrs.push(cidr.addr);
            }
        }
        let Some(bgp) = &self.config.bgp else {
            self.peers.clear();
            self.peer_by_iface.clear();
            self.networks.clear();
            return;
        };
        self.asn = bgp.asn;
        self.router_id = if bgp.router_id == Ipv4Addr::UNSPECIFIED {
            self.loopback
        } else {
            bgp.router_id
        };
        self.networks = bgp.networks.iter().copied().collect();
        self.peers = bgp
            .neighbors
            .iter()
            .filter_map(|n| {
                let iface = self.iface_for_peer(n.addr)?;
                let iface_down = self
                    .config
                    .interfaces
                    .get(iface as usize)
                    .is_some_and(|i| i.shutdown);
                Some(Peer {
                    addr: n.addr,
                    remote_as: n.remote_as,
                    iface,
                    shutdown: n.shutdown,
                    route_map_in: n.route_map_in.clone(),
                    route_map_out: n.route_map_out.clone(),
                    state: SessionState::Idle,
                    link_up: !iface_down,
                    remote_token: None,
                    adj_in: HashMap::new(),
                    advertised: HashMap::new(),
                    pending: HashMap::new(),
                })
            })
            .collect();
        self.peer_by_iface = self
            .peers
            .iter()
            .enumerate()
            .map(|(i, p)| (p.iface, i))
            .collect();
    }

    fn iface_for_peer(&self, peer: Ipv4Addr) -> Option<u32> {
        for (idx, iface) in self.config.interfaces.iter().enumerate() {
            if let Some(cidr) = iface.addr {
                if cidr.network().contains(peer) && cidr.addr != peer {
                    return Some(idx as u32);
                }
            }
        }
        None
    }

    fn max_paths(&self) -> usize {
        self.config
            .bgp
            .as_ref()
            .map_or(1, |b| b.max_paths.max(1) as usize)
    }

    // ------------------------------------------------------------------
    // Session machinery
    // ------------------------------------------------------------------

    fn send_open(&self, out: &mut Vec<(u32, Frame)>, peer: &Peer) {
        out.push((
            peer.iface,
            Frame::Bgp(BgpMsg::Open {
                asn: self.asn,
                router_id: self.router_id,
                hold_secs: 180,
                session_token: self.session_token,
            }),
        ));
    }

    fn session_down(&mut self, idx: usize, actions: &mut OsActions) {
        let peer = &mut self.peers[idx];
        let was_established = peer.state == SessionState::Established;
        peer.state = SessionState::Idle;
        peer.pending.clear();
        peer.advertised.clear();
        if was_established {
            self.flaps += 1;
            let flushed: Vec<Ipv4Prefix> = peer.adj_in.drain().map(|(p, _)| p).collect();
            actions.route_ops += flushed.len();
            self.dirty.extend(flushed);
            if let Some(limit) = self.profile.quirks.crash_after_flaps {
                if self.flaps >= limit {
                    // Case-2 bug: the OS crashes after repeated flaps.
                    self.down = true;
                    actions.crashed = true;
                }
            }
        }
    }

    fn establish(&mut self, idx: usize, actions: &mut OsActions) {
        if self.peers[idx].state == SessionState::Established {
            return;
        }
        self.peers[idx].state = SessionState::Established;
        // Full-table advertisement toward the new peer.
        let prefixes: Vec<(Ipv4Prefix, Arc<PathAttrs>, RouteSource, Arc<Provenance>)> = self
            .loc_rib
            .iter()
            .map(|(p, e)| (*p, e.attrs.clone(), e.source, e.prov.clone()))
            .collect();
        for (prefix, attrs, source, prov) in prefixes {
            if let Some(exported) = self.export_for(idx, prefix, &attrs, source, &prov) {
                self.peers[idx].pending.insert(prefix, Some(exported));
                actions.route_ops += 1;
            }
        }
        self.arm_mrai(actions);
    }

    fn arm_mrai(&mut self, actions: &mut OsActions) {
        let any_pending = self.peers.iter().any(|p| !p.pending.is_empty());
        if any_pending && !self.mrai_armed {
            self.mrai_armed = true;
            actions.timers.push((self.profile.mrai, TimerKind::Mrai));
        }
    }

    fn flush_mrai(&mut self, actions: &mut OsActions) {
        self.mrai_armed = false;
        for peer in &mut self.peers {
            if peer.state != SessionState::Established || peer.pending.is_empty() {
                peer.pending.clear();
                continue;
            }
            let mut announced = Vec::new();
            let mut withdrawn = Vec::new();
            for (prefix, change) in peer.pending.drain() {
                match change {
                    Some((attrs, prov)) => {
                        peer.advertised
                            .insert(prefix, (attrs.clone(), prov.clone()));
                        announced.push((prefix, attrs, prov));
                    }
                    None => {
                        if peer.advertised.remove(&prefix).is_some() {
                            withdrawn.push(prefix);
                        }
                    }
                }
            }
            if !announced.is_empty() || !withdrawn.is_empty() {
                announced.sort_by_key(|(p, _, _)| *p);
                withdrawn.sort();
                actions.route_ops += announced.len() + withdrawn.len();
                actions.out.push((
                    peer.iface,
                    Frame::Bgp(BgpMsg::Update {
                        announced,
                        withdrawn,
                    }),
                ));
            }
        }
    }

    // ------------------------------------------------------------------
    // Policy
    // ------------------------------------------------------------------

    /// Returns `Cow::Borrowed` when the matching entry permits without
    /// modifying anything — the common "filter only" policy — so callers
    /// can keep the original allocation (and its interned `Arc`).
    fn apply_route_map<'a>(
        &self,
        map: &RouteMap,
        prefix: Ipv4Prefix,
        attrs: &'a PathAttrs,
    ) -> Option<Cow<'a, PathAttrs>> {
        for entry in &map.entries {
            let matched = entry.matches.iter().all(|m| match m {
                RouteMatch::PrefixList(name) => self
                    .config
                    .prefix_lists
                    .get(name)
                    .is_some_and(|pl| pl.permits(prefix)),
                RouteMatch::AsPathContains(asn) => attrs.contains_as(*asn),
                RouteMatch::Community(c) => attrs.communities.contains(c),
            });
            if !matched {
                continue;
            }
            if entry.action == Action::Deny {
                return None;
            }
            if entry.sets.is_empty() {
                return Some(Cow::Borrowed(attrs));
            }
            let mut new = attrs.clone();
            for set in &entry.sets {
                match set {
                    RouteSet::LocalPref(v) => new.local_pref = *v,
                    RouteSet::Med(v) => new.med = *v,
                    RouteSet::AsPathPrepend(n) => {
                        for _ in 0..*n {
                            new.as_path.insert(0, self.asn);
                        }
                    }
                    RouteSet::Community(c) => new.communities.push(*c),
                }
            }
            return Some(Cow::Owned(new));
        }
        // No entry matched: implicit deny, as real route maps behave.
        None
    }

    /// Computes what (if anything) `prefix` looks like when exported to
    /// peer `idx`: the rewritten attributes plus the causal chain,
    /// extended by this router's re-announcement hop for learned routes
    /// (self-originated routes keep their origin-only chain, matching the
    /// speaker convention). The extension interns once per (route, event)
    /// and hits the table for every further peer in the same fan-out.
    fn export_for(
        &self,
        idx: usize,
        prefix: Ipv4Prefix,
        attrs: &Arc<PathAttrs>,
        source: RouteSource,
        prov: &Arc<Provenance>,
    ) -> Option<RibAttrs> {
        let peer = &self.peers[idx];
        // Firmware bug: stop announcing locally originated networks.
        if self.profile.quirks.stop_announcing_networks && source == RouteSource::Local {
            return None;
        }
        // summary-only aggregates suppress their contributors.
        if self.suppressed_by_aggregate(prefix, source) {
            return None;
        }
        // Split horizon: never export back to the (best) source peer.
        if let RouteSource::Peer(src) = source {
            if src == idx {
                return None;
            }
        }
        let exported = attrs.announced_by(self.asn, self.loopback);
        // Sender-side loop check: pointless to send a path the peer will
        // reject (its AS is already in it).
        if exported.contains_as(peer.remote_as) {
            return None;
        }
        let exported = match &peer.route_map_out {
            Some(name) => {
                let map = self.config.route_maps.get(name)?;
                match self.apply_route_map(map, prefix, &exported)? {
                    Cow::Borrowed(_) => exported,
                    Cow::Owned(modified) => modified,
                }
            }
            None => exported,
        };
        let out_prov = match source {
            RouteSource::Peer(_) => prov.extended(self.router_id, self.cur_event),
            RouteSource::Local | RouteSource::Aggregate => prov.clone(),
        };
        Some((exported.intern(), out_prov))
    }

    fn suppressed_by_aggregate(&self, prefix: Ipv4Prefix, source: RouteSource) -> bool {
        if source == RouteSource::Aggregate {
            return false;
        }
        let Some(bgp) = &self.config.bgp else {
            return false;
        };
        bgp.aggregates
            .iter()
            .any(|a| a.summary_only && a.prefix.covers(prefix) && a.prefix != prefix)
    }

    // ------------------------------------------------------------------
    // Decision process
    // ------------------------------------------------------------------

    /// Total preference order, higher wins: local-pref, then shorter AS
    /// path, then origin, then lower MED, then lower peer address.
    fn candidate_key(
        attrs: &PathAttrs,
    ) -> (
        u32,
        std::cmp::Reverse<usize>,
        std::cmp::Reverse<Origin>,
        std::cmp::Reverse<u32>,
    ) {
        (
            attrs.local_pref,
            std::cmp::Reverse(attrs.as_path.len()),
            std::cmp::Reverse(attrs.origin),
            std::cmp::Reverse(attrs.med),
        )
    }

    fn run_decision(&mut self, actions: &mut OsActions) {
        let dirty: Vec<Ipv4Prefix> = std::mem::take(&mut self.dirty).into_iter().collect();
        if dirty.is_empty() {
            return;
        }
        for prefix in dirty {
            self.decide_prefix(prefix, actions);
        }
        self.refresh_aggregates(actions);
        self.arm_mrai(actions);
    }

    fn decide_prefix(&mut self, prefix: Ipv4Prefix, actions: &mut OsActions) {
        actions.route_ops += 1;
        // Local origination always wins (administrative weight).
        let new_entry: Option<LocEntry> = if self.networks.contains(&prefix) {
            Some(LocEntry {
                attrs: PathAttrs::originated(self.loopback).intern(),
                source: RouteSource::Local,
                ecmp: vec![],
                changed_tick: self.change_tick,
                // Stamped with the current event on first origination; the
                // unchanged-check below keeps that first entry alive, so
                // re-decisions never re-stamp it.
                prov: Provenance::originated(OriginKind::Network, self.loopback, self.cur_event),
                reason: DecisionReason::LocalOrigination,
            })
        } else {
            let mut best: Option<(usize, &Arc<PathAttrs>, &Arc<Provenance>)> = None;
            for (idx, peer) in self.peers.iter().enumerate() {
                if peer.state != SessionState::Established {
                    continue;
                }
                let Some((attrs, prov)) = peer.adj_in.get(&prefix) else {
                    continue;
                };
                let better = match best {
                    None => true,
                    Some((bidx, battrs, _)) => {
                        let ka = Self::candidate_key(attrs);
                        let kb = Self::candidate_key(battrs);
                        ka > kb || (ka == kb && peer.addr < self.peers[bidx].addr)
                    }
                };
                if better {
                    best = Some((idx, attrs, prov));
                }
            }
            best.map(|(bidx, battrs, bprov)| {
                let key = Self::candidate_key(battrs);
                let battrs = battrs.clone();
                let bprov = bprov.clone();
                // One pass collects the ECMP set and the runner-up key —
                // the best key among losing candidates, which names the
                // decision step that eliminated them.
                let mut ecmp: Vec<usize> = Vec::new();
                let mut runner: Option<_> = None;
                for (i, p) in self.peers.iter().enumerate() {
                    if p.state != SessionState::Established {
                        continue;
                    }
                    let Some((a, _)) = p.adj_in.get(&prefix) else {
                        continue;
                    };
                    let k = Self::candidate_key(a);
                    if k == key {
                        ecmp.push(i);
                    } else if runner.as_ref().is_none_or(|r| k > *r) {
                        runner = Some(k);
                    }
                }
                let equal_count = ecmp.len();
                ecmp.sort_by_key(|&i| self.peers[i].addr);
                ecmp.truncate(self.max_paths());
                let reason = match runner {
                    Some(rk) => {
                        if key.0 > rk.0 {
                            DecisionReason::HigherLocalPref
                        } else if key.1 > rk.1 {
                            DecisionReason::ShorterAsPath
                        } else if key.2 > rk.2 {
                            DecisionReason::LowerOriginCode
                        } else {
                            DecisionReason::LowerMed
                        }
                    }
                    // All candidates tied through the attributes: if any
                    // fell off the multipath limit, peer address decided.
                    None if equal_count > ecmp.len() => DecisionReason::LowerPeerAddr,
                    None => DecisionReason::OnlyCandidate,
                };
                LocEntry {
                    attrs: battrs,
                    source: RouteSource::Peer(bidx),
                    ecmp,
                    changed_tick: self.change_tick,
                    prov: bprov,
                    reason,
                }
            })
        };

        let old = self.loc_rib.get(&prefix);
        let unchanged = match (&old, &new_entry) {
            (Some(o), Some(n)) => {
                same_attrs(&o.attrs, &n.attrs) && o.ecmp == n.ecmp && o.source == n.source
            }
            (None, None) => true,
            _ => false,
        };
        if unchanged {
            return;
        }
        self.change_tick += 1;

        match new_entry {
            Some(mut entry) => {
                entry.changed_tick = self.change_tick;
                let installed = self.install_fib(prefix, &entry);
                let keep_in_rib =
                    installed || matches!(self.profile.fib_overflow, FibOverflow::SilentDrop);
                if keep_in_rib {
                    let attrs = entry.attrs.clone();
                    let source = entry.source;
                    let prov = entry.prov.clone();
                    self.journal(prefix, MutationKind::Install, Some(&entry));
                    self.loc_rib.insert(prefix, entry);
                    self.enqueue_export(prefix, Some((attrs, source, prov)), actions);
                } else {
                    // RejectRoute overflow: drop entirely and withdraw.
                    self.journal(prefix, MutationKind::Remove, None);
                    self.loc_rib.remove(&prefix);
                    self.remove_fib(prefix);
                    self.enqueue_export(prefix, None, actions);
                }
            }
            None => {
                self.journal(prefix, MutationKind::Remove, None);
                self.loc_rib.remove(&prefix);
                self.remove_fib(prefix);
                self.enqueue_export(prefix, None, actions);
            }
        }
    }

    /// Journals one RIB/FIB mutation when tracing is on (no-op otherwise,
    /// so untraced runs pay nothing).
    fn journal(&mut self, prefix: Ipv4Prefix, kind: MutationKind, entry: Option<&LocEntry>) {
        if !self.tracing {
            return;
        }
        self.mutations.push(RouteMutation {
            prefix,
            kind,
            prov: entry.map(|e| e.prov.clone()),
            reason: entry.map(|e| e.reason),
        });
    }

    fn fib_entry_for(&self, entry: &LocEntry) -> FibEntry {
        match entry.source {
            RouteSource::Local => FibEntry::new(vec![NextHop {
                iface: LOCAL_IFACE,
                via: self.loopback,
            }]),
            // Aggregates forward like Null0: present but discard
            // (the more-specific contributors do the real work locally).
            RouteSource::Aggregate => FibEntry::default(),
            RouteSource::Peer(_) => FibEntry::new(
                entry
                    .ecmp
                    .iter()
                    .map(|&i| NextHop {
                        iface: self.peers[i].iface,
                        via: self.peers[i].addr,
                    })
                    .collect(),
            ),
        }
    }

    /// Installs into the kernel FIB (and the ASIC FIB where the image has
    /// one). Returns false when the hardware table overflowed.
    fn install_fib(&mut self, prefix: Ipv4Prefix, entry: &LocEntry) -> bool {
        let fe = self.fib_entry_for(entry);
        let outcome = self.fib.install(prefix, fe.clone());
        if let Some(asic) = &mut self.asic_fib {
            // Case-2 bug: the ASIC sync layer skips default-route updates.
            let skip = self.profile.quirks.skip_default_route_fib && prefix.is_default();
            if !skip {
                asic.install(prefix, fe);
            }
        }
        outcome == crystalnet_dataplane::InstallOutcome::Installed
    }

    fn remove_fib(&mut self, prefix: Ipv4Prefix) {
        self.fib.remove(prefix);
        if let Some(asic) = &mut self.asic_fib {
            let skip = self.profile.quirks.skip_default_route_fib && prefix.is_default();
            if !skip {
                asic.remove(prefix);
            }
        }
    }

    fn enqueue_export(
        &mut self,
        prefix: Ipv4Prefix,
        new: Option<(Arc<PathAttrs>, RouteSource, Arc<Provenance>)>,
        actions: &mut OsActions,
    ) {
        for idx in 0..self.peers.len() {
            if self.peers[idx].state != SessionState::Established {
                continue;
            }
            let exported = new.as_ref().and_then(|(attrs, source, prov)| {
                self.export_for(idx, prefix, attrs, *source, prov)
            });
            let peer = &mut self.peers[idx];
            let current = peer.effective_advertised(prefix);
            match (&exported, current) {
                // Same attrs toward this peer ⇒ nothing to send; the
                // provenance is not compared because an attr-identical
                // re-export carries no new routing information.
                (Some(e), Some(c)) if same_attrs(&e.0, &c.0) => {}
                (None, None) => {}
                _ => {
                    actions.route_ops += 1;
                    peer.pending.insert(prefix, exported);
                }
            }
        }
    }

    fn refresh_aggregates(&mut self, actions: &mut OsActions) {
        let aggregates = match &self.config.bgp {
            Some(bgp) if !bgp.aggregates.is_empty() => bgp.aggregates.clone(),
            _ => return,
        };
        for agg in &aggregates {
            // Contributors: more-specific Loc-RIB prefixes under the
            // aggregate.
            let contributor = self
                .loc_rib
                .iter()
                .filter(|(p, e)| {
                    **p != agg.prefix
                        && agg.prefix.covers(**p)
                        && e.source != RouteSource::Aggregate
                })
                // Timing-dependent selection: the most recently changed
                // contributor wins — the §9 non-determinism source.
                .max_by_key(|(p, e)| (e.changed_tick, **p))
                .map(|(p, e)| (*p, e.attrs.clone()));

            match contributor {
                Some((_, contrib_attrs)) => {
                    let attrs = match self.profile.aggregate_mode {
                        AggregateMode::SelectContributorPath => PathAttrs {
                            aggregate: true,
                            next_hop: self.loopback,
                            ..(*contrib_attrs).clone()
                        },
                        AggregateMode::EmptyPath => PathAttrs {
                            as_path: vec![],
                            next_hop: self.loopback,
                            origin: Origin::Igp,
                            med: 0,
                            local_pref: 100,
                            communities: vec![],
                            aggregate: true,
                        },
                    };
                    let attrs = attrs.intern();
                    let changed = self
                        .loc_rib
                        .get(&agg.prefix)
                        .is_none_or(|e| !same_attrs(&e.attrs, &attrs));
                    if changed {
                        self.change_tick += 1;
                        let entry = LocEntry {
                            attrs: attrs.clone(),
                            source: RouteSource::Aggregate,
                            ecmp: vec![],
                            changed_tick: self.change_tick,
                            prov: Provenance::originated(
                                OriginKind::Aggregate,
                                self.loopback,
                                self.cur_event,
                            ),
                            reason: DecisionReason::AggregateSynthesis,
                        };
                        let prov = entry.prov.clone();
                        self.install_fib(agg.prefix, &entry);
                        self.journal(agg.prefix, MutationKind::Install, Some(&entry));
                        self.loc_rib.insert(agg.prefix, entry);
                        self.enqueue_export(
                            agg.prefix,
                            Some((attrs, RouteSource::Aggregate, prov)),
                            actions,
                        );
                    }
                }
                None => {
                    let present = self
                        .loc_rib
                        .get(&agg.prefix)
                        .is_some_and(|e| e.source == RouteSource::Aggregate);
                    if present {
                        self.change_tick += 1;
                        self.journal(agg.prefix, MutationKind::Remove, None);
                        self.loc_rib.remove(&agg.prefix);
                        self.remove_fib(agg.prefix);
                        self.enqueue_export(agg.prefix, None, actions);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Inbound message handling
    // ------------------------------------------------------------------

    fn on_bgp(&mut self, iface: u32, msg: BgpMsg, actions: &mut OsActions) {
        let Some(&idx) = self.peer_by_iface.get(&iface) else {
            return; // no session configured on this interface
        };
        if self.peers[idx].shutdown || !self.peers[idx].link_up {
            return;
        }
        match msg {
            BgpMsg::Open {
                asn, session_token, ..
            } => {
                if asn != self.peers[idx].remote_as {
                    // Wrong AS (a §2 config-bug class): reject the session
                    // and fall back to Idle so the peer's trailing
                    // Keepalive cannot complete the handshake either.
                    if self.peers[idx].state == SessionState::Established {
                        self.session_down(idx, actions);
                    }
                    self.peers[idx].state = SessionState::Idle;
                    actions
                        .out
                        .push((iface, Frame::Bgp(BgpMsg::Notification { code: 2 })));
                    return;
                }
                // A repeated token is the same incarnation completing the
                // bidirectional Open exchange: nothing to renegotiate.
                if self.peers[idx].remote_token == Some(session_token)
                    && self.peers[idx].state == SessionState::Established
                {
                    return;
                }
                // A *new* token means the peer restarted (Reload, crash
                // recovery): flush the session before re-establishing.
                if self.peers[idx].state == SessionState::Established {
                    self.session_down(idx, actions);
                    if self.down {
                        return; // the flap-crash quirk fired
                    }
                }
                self.peers[idx].remote_token = Some(session_token);
                // Complete the exchange: our Open (so the peer validates
                // our AS and learns our token) plus a Keepalive.
                self.send_open(&mut actions.out, &self.peers[idx]);
                actions.out.push((iface, Frame::Bgp(BgpMsg::Keepalive)));
                self.establish(idx, actions);
            }
            BgpMsg::Keepalive => {
                if self.peers[idx].state == SessionState::OpenSent {
                    self.establish(idx, actions);
                }
            }
            BgpMsg::Update {
                announced,
                withdrawn,
            } => {
                if self.peers[idx].state != SessionState::Established {
                    return;
                }
                actions.route_ops += announced.len() + withdrawn.len();
                for (prefix, attrs, prov) in announced {
                    // eBGP loop prevention: my AS in the path ⇒ discard.
                    if attrs.contains_as(self.asn) {
                        // A previously accepted route may need removal.
                        if self.peers[idx].adj_in.remove(&prefix).is_some() {
                            self.dirty.insert(prefix);
                        }
                        continue;
                    }
                    let accepted = match &self.peers[idx].route_map_in {
                        Some(name) => match self.config.route_maps.get(name) {
                            Some(map) => {
                                self.apply_route_map(map, prefix, &attrs)
                                    .map(|out| match out {
                                        // Permitted unmodified: keep the
                                        // sender's (interned) Arc as-is.
                                        Cow::Borrowed(_) => Arc::clone(&attrs),
                                        Cow::Owned(modified) => modified.intern(),
                                    })
                            }
                            None => Some(attrs),
                        },
                        None => Some(attrs),
                    };
                    match accepted {
                        Some(a) => {
                            // Attr-identical re-announcements keep the old
                            // provenance: no routing change happened, and
                            // event ordering (hence which announcement is
                            // "first") is deterministic.
                            let known = self.peers[idx]
                                .adj_in
                                .get(&prefix)
                                .is_some_and(|cur| same_attrs(&cur.0, &a));
                            if !known {
                                self.peers[idx].adj_in.insert(prefix, (a, prov));
                                self.dirty.insert(prefix);
                            }
                        }
                        None => {
                            if self.peers[idx].adj_in.remove(&prefix).is_some() {
                                self.dirty.insert(prefix);
                            }
                        }
                    }
                }
                for prefix in withdrawn {
                    if self.peers[idx].adj_in.remove(&prefix).is_some() {
                        self.dirty.insert(prefix);
                    }
                }
            }
            BgpMsg::Notification { .. } => {
                self.session_down(idx, actions);
            }
            BgpMsg::RouteRefresh => {
                // RFC 2918 shape: replay the full Adj-RIB-Out toward the
                // requester. The replay goes through the normal MRAI batch
                // and is attribute-identical for unchanged routes, so the
                // receiver's dedup makes it idempotent. Changes already
                // pending toward the peer are newer — keep them.
                if self.peers[idx].state != SessionState::Established {
                    return;
                }
                let peer = &mut self.peers[idx];
                let replay: Vec<(Ipv4Prefix, RibAttrs)> = peer
                    .advertised
                    .iter()
                    .map(|(p, r)| (*p, r.clone()))
                    .collect();
                actions.route_ops += replay.len();
                for (prefix, rib) in replay {
                    peer.pending.entry(prefix).or_insert(Some(rib));
                }
                self.arm_mrai(actions);
            }
        }
    }

    fn on_mgmt(&mut self, command: MgmtCommand, actions: &mut OsActions) {
        match command {
            MgmtCommand::ShowBgpSummary => {
                let rows = self
                    .peers
                    .iter()
                    .map(|p| (p.addr, p.state == SessionState::Established, p.adj_in.len()))
                    .collect();
                actions.response = Some(MgmtResponse::BgpSummary(rows));
            }
            MgmtCommand::ShowRoutes => {
                let rows = self
                    .loc_rib()
                    .into_iter()
                    .map(|(p, a, w)| (p, a.as_path.len(), w))
                    .collect();
                actions.response = Some(MgmtResponse::Routes(rows));
            }
            MgmtCommand::NeighborShutdown(addr) => {
                match self.peers.iter().position(|p| p.addr == addr) {
                    Some(idx) => {
                        self.peers[idx].shutdown = true;
                        actions.out.push((
                            self.peers[idx].iface,
                            Frame::Bgp(BgpMsg::Notification { code: 6 }),
                        ));
                        self.session_down(idx, actions);
                        actions.response = Some(MgmtResponse::Ok);
                    }
                    None => {
                        actions.response = Some(MgmtResponse::Error(format!("no neighbor {addr}")));
                    }
                }
            }
            MgmtCommand::NeighborEnable(addr) => {
                match self.peers.iter().position(|p| p.addr == addr) {
                    Some(idx) => {
                        self.peers[idx].shutdown = false;
                        if self.peers[idx].link_up {
                            self.peers[idx].state = SessionState::OpenSent;
                            self.send_open(&mut actions.out, &self.peers[idx]);
                        }
                        actions.response = Some(MgmtResponse::Ok);
                    }
                    None => {
                        actions.response = Some(MgmtResponse::Error(format!("no neighbor {addr}")));
                    }
                }
            }
            MgmtCommand::AddNetwork(prefix) => {
                if let Some(bgp) = &mut self.config.bgp {
                    bgp.networks.push(prefix);
                }
                self.networks.insert(prefix);
                self.dirty.insert(prefix);
                actions.response = Some(MgmtResponse::Ok);
            }
            MgmtCommand::RemoveNetwork(prefix) => {
                if let Some(bgp) = &mut self.config.bgp {
                    bgp.networks.retain(|p| *p != prefix);
                }
                self.networks.remove(&prefix);
                self.dirty.insert(prefix);
                actions.response = Some(MgmtResponse::Ok);
            }
            MgmtCommand::ApplyAclIn {
                iface,
                acl_name,
                acl,
            } => {
                self.config.acls.insert(acl_name.clone(), acl);
                match self.config.interfaces.iter_mut().find(|i| i.name == iface) {
                    Some(i) => {
                        i.acl_in = Some(acl_name);
                        actions.response = Some(MgmtResponse::Ok);
                    }
                    None => {
                        actions.response =
                            Some(MgmtResponse::Error(format!("no interface {iface}")));
                    }
                }
            }
            MgmtCommand::ReplaceConfig(cfg) => {
                self.config = *cfg;
                self.reset_control_plane();
                // A config replace behaves like a control-plane restart:
                // sessions re-open immediately.
                let boot_actions = self.boot_control_plane();
                actions.out.extend(boot_actions.out);
                actions.timers.extend(boot_actions.timers);
                actions.route_ops += boot_actions.route_ops;
                actions.response = Some(MgmtResponse::Ok);
            }
            MgmtCommand::UpdatePolicy(cfg) => {
                self.soft_refresh(*cfg, actions);
            }
            MgmtCommand::DeviceShutdown => {
                self.down = true;
                actions.response = Some(MgmtResponse::Ok);
            }
        }
    }

    /// Applies a policy-level configuration change without tearing
    /// sessions down (the `SoftRefresh` path of incremental rehearsal).
    ///
    /// Sessions, tokens, and Adj-RIB-In survive. Inbound policy is
    /// re-applied by asking every established peer to replay its
    /// announcements ([`BgpMsg::RouteRefresh`]) — the Adj-RIB-In stores
    /// *post*-import-policy attributes, so both relaxing (denied routes
    /// are absent) and tightening (stale entries must be re-filtered)
    /// need the replay, which goes through the normal Update path under
    /// the new policy. Outbound policy is re-applied locally by
    /// re-exporting the whole Loc-RIB and diffing against each peer's
    /// Adj-RIB-Out ([`BgpRouterOs::refresh_exports`]) — the decision
    /// process alone would not re-export routes whose best path is
    /// unchanged.
    fn soft_refresh(&mut self, cfg: DeviceConfig, actions: &mut OsActions) {
        self.config = cfg;
        self.hostname = self.config.hostname.clone();
        if let Some(bgp) = &self.config.bgp {
            let new_networks: BTreeSet<Ipv4Prefix> = bgp.networks.iter().copied().collect();
            let affected: Vec<Ipv4Prefix> = self
                .networks
                .symmetric_difference(&new_networks)
                .copied()
                .collect();
            self.networks = new_networks;
            self.dirty.extend(affected);
            // Rebind per-peer policy references (session identity — addr,
            // AS, iface — is unchanged by construction: session-affecting
            // edits are classified `SessionReset` and never reach here).
            for peer in &mut self.peers {
                if let Some(n) = bgp.neighbors.iter().find(|n| n.addr == peer.addr) {
                    peer.route_map_in = n.route_map_in.clone();
                    peer.route_map_out = n.route_map_out.clone();
                }
            }
        }
        // Re-decide everything so aggregate/network edits take effect;
        // unchanged prefixes hit the decision process's no-op path.
        let installed: Vec<Ipv4Prefix> = self.loc_rib.keys().copied().collect();
        self.dirty.extend(installed);
        self.refresh_exports(actions);
        for peer in &self.peers {
            if peer.state == SessionState::Established {
                actions
                    .out
                    .push((peer.iface, Frame::Bgp(BgpMsg::RouteRefresh)));
            }
        }
        actions.response = Some(MgmtResponse::Ok);
    }

    /// Recomputes the export of every Loc-RIB route toward every
    /// established peer and queues the differences (new announcements,
    /// changed attributes, withdrawals of now-denied routes) into the
    /// MRAI batch. Needed after an outbound-policy change: the decision
    /// process only re-exports prefixes whose *best path* changed.
    fn refresh_exports(&mut self, actions: &mut OsActions) {
        let entries: Vec<(Ipv4Prefix, Arc<PathAttrs>, RouteSource, Arc<Provenance>)> = self
            .loc_rib
            .iter()
            .map(|(p, e)| (*p, e.attrs.clone(), e.source, e.prov.clone()))
            .collect();
        for (prefix, attrs, source, prov) in entries {
            self.enqueue_export(prefix, Some((attrs, source, prov)), actions);
        }
        self.arm_mrai(actions);
    }

    fn reset_control_plane(&mut self) {
        self.loc_rib.clear();
        self.fib.clear();
        if let Some(asic) = &mut self.asic_fib {
            asic.clear();
        }
        self.dirty.clear();
        self.mrai_armed = false;
        self.apply_config_internal();
    }

    fn boot_control_plane(&mut self) -> OsActions {
        let mut actions = OsActions::default();
        self.booted = true;
        // New incarnation: derived from the router id so tokens are
        // globally distinct, bumped per boot so restarts are detectable.
        self.session_token =
            (u64::from(self.router_id.0) << 20) | ((self.session_token & 0xfffff) + 1);
        // Originate configured networks.
        let networks: Vec<Ipv4Prefix> = self.networks.iter().copied().collect();
        self.dirty.extend(networks);
        self.run_decision(&mut actions);
        // Open sessions on all up links.
        for idx in 0..self.peers.len() {
            if self.peers[idx].link_up && !self.peers[idx].shutdown {
                self.peers[idx].state = SessionState::OpenSent;
                self.send_open(&mut actions.out, &self.peers[idx]);
            }
        }
        actions
    }
}

impl DeviceOs for BgpRouterOs {
    fn clone_boxed(&self) -> Box<dyn DeviceOs> {
        Box::new(self.clone())
    }

    fn handle(&mut self, _now: SimTime, event: OsEvent) -> OsActions {
        if self.down {
            return OsActions::default();
        }
        let mut actions = OsActions::default();
        match event {
            OsEvent::Boot => {
                return self.boot_control_plane();
            }
            OsEvent::LinkUp(iface) => {
                if let Some(&idx) = self.peer_by_iface.get(&iface) {
                    self.peers[idx].link_up = true;
                    if !self.peers[idx].shutdown {
                        self.peers[idx].state = SessionState::OpenSent;
                        self.send_open(&mut actions.out, &self.peers[idx]);
                    }
                }
            }
            OsEvent::LinkDown(iface) => {
                if let Some(&idx) = self.peer_by_iface.get(&iface) {
                    self.peers[idx].link_up = false;
                    self.session_down(idx, &mut actions);
                }
            }
            OsEvent::Frame { iface, frame } => match frame {
                Frame::Bgp(msg) => self.on_bgp(iface, msg, &mut actions),
                Frame::Arp(_) if self.profile.quirks.arp_trap_broken => {
                    // Case-2 bug: the trap never delivers ARP to the CPU.
                }
                Frame::Arp(req) if req.is_request => {
                    // Healthy firmware answers ARP for its own addresses.
                    if self.local_addrs.contains(&req.target_ip) {
                        actions.out.push((
                            iface,
                            Frame::Arp(crystalnet_dataplane::ArpMessage {
                                is_request: false,
                                sender_ip: req.target_ip,
                                sender_mac: crystalnet_net::MacAddr::from_id(req.target_ip.0),
                                target_ip: req.sender_ip,
                            }),
                        ));
                    }
                }
                Frame::Arp(_) | Frame::Data(_) | Frame::Ospf(_) => {}
            },
            OsEvent::Timer(TimerKind::Mrai) => {
                self.flush_mrai(&mut actions);
            }
            OsEvent::Timer(_) => {}
            OsEvent::Mgmt(cmd) => {
                self.on_mgmt(cmd, &mut actions);
            }
        }
        if self.booted && !self.down {
            self.run_decision(&mut actions);
        }
        actions
    }

    fn fib(&self) -> &Fib {
        self.asic_fib.as_ref().unwrap_or(&self.fib)
    }

    fn rib_size(&self) -> usize {
        self.loc_rib.len()
    }

    fn is_down(&self) -> bool {
        self.down
    }

    fn hostname(&self) -> &str {
        &self.hostname
    }

    fn local_addrs(&self) -> Vec<Ipv4Addr> {
        self.local_addrs.clone()
    }

    fn filter_permits(&self, ingress: Option<u32>, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        match ingress {
            Some(iface) => self.acl_permits(iface, src, dst),
            None => true,
        }
    }

    fn adj_rib_in(&self, iface: u32) -> Vec<(Ipv4Prefix, Arc<PathAttrs>)> {
        let Some(&idx) = self.peer_by_iface.get(&iface) else {
            return Vec::new();
        };
        let mut rows: Vec<(Ipv4Prefix, Arc<PathAttrs>)> = self.peers[idx]
            .adj_in
            .iter()
            .map(|(p, (a, _))| (*p, a.clone()))
            .collect();
        rows.sort_by_key(|(p, _)| *p);
        rows
    }

    fn begin_event(&mut self, id: EventId) {
        self.cur_event = id;
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if !on {
            self.mutations.clear();
        }
    }

    fn take_route_mutations(&mut self) -> Vec<RouteMutation> {
        std::mem::take(&mut self.mutations)
    }

    fn route_detail(&self, prefix: Ipv4Prefix) -> Option<RouteDetail> {
        self.loc_rib.get(&prefix).map(|e| RouteDetail {
            attrs: e.attrs.clone(),
            prov: e.prov.clone(),
            reason: e.reason,
        })
    }

    fn routes_with_detail(&self) -> Vec<(Ipv4Prefix, RouteDetail)> {
        let mut rows: Vec<(Ipv4Prefix, RouteDetail)> = self
            .loc_rib
            .iter()
            .map(|(p, e)| {
                (
                    *p,
                    RouteDetail {
                        attrs: e.attrs.clone(),
                        prov: e.prov.clone(),
                        reason: e.reason,
                    },
                )
            })
            .collect();
        rows.sort_by_key(|(p, _)| *p);
        rows
    }
}

impl BgpRouterOs {
    /// The kernel-side FIB (differs from [`DeviceOs::fib`] only on images
    /// with a separate ASIC emulator).
    #[must_use]
    pub fn kernel_fib(&self) -> &Fib {
        &self.fib
    }
}
