//! An OSPFv2 engine: hellos, adjacency, LSA flooding, Dijkstra SPF, and
//! DR/BDR election.
//!
//! The paper's safe-boundary theory covers link-state IGPs too:
//! Proposition 5.4 requires boundary-adjacent links to stay unchanged and
//! the DR/BDR to be emulated devices. This module provides a real (single
//! area, router-LSA) OSPF implementation so those scenarios execute, plus
//! the election logic the proposition references.

use crate::msg::{Frame, OspfMsg};
use crate::os::{DeviceOs, MgmtCommand, MgmtResponse, OsActions, OsEvent, TimerKind};
use crate::provenance::{DecisionReason, OriginKind, Provenance, RouteDetail};
use crystalnet_dataplane::{Fib, FibEntry, NextHop};
use crystalnet_net::{Ipv4Addr, Ipv4Prefix};
use crystalnet_sim::{EventId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// A router LSA: the originator's view of its adjacencies and prefixes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterLsa {
    /// Originating router id.
    pub origin: Ipv4Addr,
    /// Monotonic sequence number.
    pub seq: u32,
    /// Adjacent router ids with link costs.
    pub links: Vec<(Ipv4Addr, u32)>,
    /// Prefixes attached to the originator with costs.
    pub prefixes: Vec<(Ipv4Prefix, u32)>,
}

/// DR/BDR election (RFC 2328 §9.4, simplified): highest priority wins,
/// router id breaks ties; priority 0 is ineligible; the runner-up is BDR.
#[must_use]
pub fn elect_dr_bdr(candidates: &[(Ipv4Addr, u8)]) -> (Option<Ipv4Addr>, Option<Ipv4Addr>) {
    let mut eligible: Vec<&(Ipv4Addr, u8)> = candidates.iter().filter(|(_, p)| *p > 0).collect();
    eligible.sort_by_key(|(id, p)| (std::cmp::Reverse(*p), std::cmp::Reverse(*id)));
    let dr = eligible.first().map(|(id, _)| *id);
    let bdr = eligible.get(1).map(|(id, _)| *id);
    (dr, bdr)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NeighborState {
    router_id: Ipv4Addr,
    /// Two-way: the neighbor lists us in its hello.
    adjacent: bool,
}

/// An OSPF router OS instance.
#[derive(Clone)]
pub struct OspfRouterOs {
    hostname: String,
    router_id: Ipv4Addr,
    priority: u8,
    /// Interfaces that run OSPF.
    ifaces: Vec<u32>,
    link_up: HashMap<u32, bool>,
    neighbors: HashMap<u32, NeighborState>,
    lsdb: HashMap<Ipv4Addr, Arc<RouterLsa>>,
    my_seq: u32,
    prefixes: Vec<(Ipv4Prefix, u32)>,
    fib: Fib,
    /// Per installed prefix: the LSA origin router and the event of the
    /// SPF run that installed it (feeds [`DeviceOs::route_detail`]).
    route_meta: HashMap<Ipv4Prefix, (Ipv4Addr, EventId)>,
    hello_interval: SimDuration,
    hello_armed: bool,
    down: bool,
    /// Stable id of the event being handled ([`DeviceOs::begin_event`]).
    cur_event: EventId,
}

impl OspfRouterOs {
    /// A router running OSPF on `ifaces`, originating `prefixes`.
    #[must_use]
    pub fn new(
        hostname: String,
        router_id: Ipv4Addr,
        priority: u8,
        ifaces: Vec<u32>,
        prefixes: Vec<Ipv4Prefix>,
    ) -> Self {
        OspfRouterOs {
            hostname,
            router_id,
            priority,
            link_up: ifaces.iter().map(|&i| (i, true)).collect(),
            ifaces,
            neighbors: HashMap::new(),
            lsdb: HashMap::new(),
            my_seq: 0,
            prefixes: prefixes.into_iter().map(|p| (p, 0)).collect(),
            fib: Fib::default(),
            route_meta: HashMap::new(),
            hello_interval: SimDuration::from_secs(1),
            hello_armed: false,
            down: false,
            cur_event: EventId::ZERO,
        }
    }

    /// The router id.
    #[must_use]
    pub fn router_id(&self) -> Ipv4Addr {
        self.router_id
    }

    /// The election priority.
    #[must_use]
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// Link-state database size (routers known).
    #[must_use]
    pub fn lsdb_size(&self) -> usize {
        self.lsdb.len()
    }

    /// Adjacent neighbor router ids.
    #[must_use]
    pub fn adjacencies(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> = self
            .neighbors
            .values()
            .filter(|n| n.adjacent)
            .map(|n| n.router_id)
            .collect();
        v.sort_unstable();
        v
    }

    fn send_hellos(&self, actions: &mut OsActions) {
        let seen: Vec<Ipv4Addr> = self.neighbors.values().map(|n| n.router_id).collect();
        for &iface in &self.ifaces {
            if self.link_up.get(&iface).copied().unwrap_or(false) {
                actions.out.push((
                    iface,
                    Frame::Ospf(OspfMsg::Hello {
                        router_id: self.router_id,
                        priority: self.priority,
                        seen: seen.clone(),
                    }),
                ));
            }
        }
    }

    fn all_adjacent(&self) -> bool {
        self.ifaces
            .iter()
            .filter(|i| self.link_up.get(i).copied().unwrap_or(false))
            .all(|i| self.neighbors.get(i).is_some_and(|n| n.adjacent))
    }

    fn arm_hello(&mut self, actions: &mut OsActions) {
        if !self.hello_armed && !self.all_adjacent() {
            self.hello_armed = true;
            actions
                .timers
                .push((self.hello_interval, TimerKind::OspfHello));
        }
    }

    fn originate_lsa(&mut self, actions: &mut OsActions) {
        self.my_seq += 1;
        let lsa = Arc::new(RouterLsa {
            origin: self.router_id,
            seq: self.my_seq,
            links: self
                .neighbors
                .values()
                .filter(|n| n.adjacent)
                .map(|n| (n.router_id, 1))
                .collect(),
            prefixes: self.prefixes.clone(),
        });
        self.lsdb.insert(self.router_id, lsa.clone());
        self.flood(None, &lsa, actions);
        self.run_spf(actions);
    }

    fn flood(&self, except: Option<u32>, lsa: &Arc<RouterLsa>, actions: &mut OsActions) {
        for (&iface, n) in &self.neighbors {
            if n.adjacent && Some(iface) != except {
                actions
                    .out
                    .push((iface, Frame::Ospf(OspfMsg::Lsa(lsa.clone()))));
            }
        }
    }

    fn sync_lsdb_to(&self, iface: u32, actions: &mut OsActions) {
        for lsa in self.lsdb.values() {
            actions
                .out
                .push((iface, Frame::Ospf(OspfMsg::Lsa(lsa.clone()))));
        }
    }

    /// Dijkstra over the LSDB; installs prefixes via first-hop neighbors.
    fn run_spf(&mut self, actions: &mut OsActions) {
        actions.route_ops += self.lsdb.len();
        // Bidirectionality check: an edge counts only if both ends agree.
        let has_edge = |a: Ipv4Addr, b: Ipv4Addr| -> Option<u32> {
            let la = self.lsdb.get(&a)?;
            let lb = self.lsdb.get(&b)?;
            let cost_ab = la.links.iter().find(|(n, _)| *n == b)?.1;
            lb.links.iter().find(|(n, _)| *n == a)?;
            Some(cost_ab)
        };

        // Dijkstra from self over router nodes.
        let mut dist: HashMap<Ipv4Addr, (u32, Option<Ipv4Addr>)> = HashMap::new();
        dist.insert(self.router_id, (0, None));
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, Ipv4Addr, Option<Ipv4Addr>)>> =
            BinaryHeap::new();
        heap.push(std::cmp::Reverse((0, self.router_id, None)));
        while let Some(std::cmp::Reverse((d, node, first_hop))) = heap.pop() {
            if dist.get(&node).map(|(bd, _)| *bd < d).unwrap_or(false) {
                continue;
            }
            let Some(lsa) = self.lsdb.get(&node) else {
                continue;
            };
            for (next, cost) in &lsa.links {
                let Some(edge_cost) = has_edge(node, *next) else {
                    continue;
                };
                let _ = cost;
                let nd = d + edge_cost;
                // The first hop from self is the neighbor itself.
                let fh = if node == self.router_id {
                    Some(*next)
                } else {
                    first_hop
                };
                let better = dist.get(next).map(|(bd, _)| nd < *bd).unwrap_or(true);
                if better {
                    dist.insert(*next, (nd, fh));
                    heap.push(std::cmp::Reverse((nd, *next, fh)));
                }
            }
        }

        // Rebuild the FIB from reachable routers' prefixes, keeping the
        // lowest-cost route per prefix (ties broken by next-hop id for
        // determinism).
        let mut routes: Vec<(Ipv4Prefix, u32, NextHop, Ipv4Addr)> = Vec::new();
        for (&router, &(cost, first_hop)) in &dist {
            let Some(lsa) = self.lsdb.get(&router) else {
                continue;
            };
            for (prefix, pcost) in &lsa.prefixes {
                let hop = match first_hop {
                    None => NextHop {
                        iface: crate::bgp::LOCAL_IFACE,
                        via: self.router_id,
                    },
                    Some(fh) => {
                        let Some((&iface, _)) = self
                            .neighbors
                            .iter()
                            .find(|(_, n)| n.router_id == fh && n.adjacent)
                        else {
                            continue;
                        };
                        NextHop { iface, via: fh }
                    }
                };
                routes.push((*prefix, cost + pcost, hop, lsa.origin));
            }
        }
        routes.sort_by_key(|(p, cost, hop, _)| (*p, *cost, hop.via));
        self.fib.clear();
        self.route_meta.clear();
        for (prefix, _, hop, origin) in routes {
            if self.fib.get(prefix).is_none() {
                self.fib.install(prefix, FibEntry::new(vec![hop]));
                self.route_meta.insert(prefix, (origin, self.cur_event));
            }
        }
    }

    fn on_hello(
        &mut self,
        iface: u32,
        router_id: Ipv4Addr,
        seen: Vec<Ipv4Addr>,
        actions: &mut OsActions,
    ) {
        let entry = self.neighbors.entry(iface).or_insert(NeighborState {
            router_id,
            adjacent: false,
        });
        entry.router_id = router_id;
        let two_way = seen.contains(&self.router_id);
        let newly_adjacent = two_way && !entry.adjacent;
        entry.adjacent = two_way;
        if newly_adjacent {
            // Full adjacency: exchange databases and re-originate.
            self.sync_lsdb_to(iface, actions);
            self.originate_lsa(actions);
        }
        // Always answer hellos until everyone is adjacent.
        if !self.all_adjacent() {
            self.send_hellos(actions);
            self.arm_hello(actions);
        }
    }

    fn on_lsa(&mut self, iface: u32, lsa: Arc<RouterLsa>, actions: &mut OsActions) {
        let newer = self
            .lsdb
            .get(&lsa.origin)
            .map(|old| lsa.seq > old.seq)
            .unwrap_or(true);
        if !newer {
            return;
        }
        actions.route_ops += 1;
        self.lsdb.insert(lsa.origin, lsa.clone());
        self.flood(Some(iface), &lsa, actions);
        self.run_spf(actions);
    }
}

impl DeviceOs for OspfRouterOs {
    fn clone_boxed(&self) -> Box<dyn DeviceOs> {
        Box::new(self.clone())
    }

    fn handle(&mut self, _now: SimTime, event: OsEvent) -> OsActions {
        if self.down {
            return OsActions::default();
        }
        let mut actions = OsActions::default();
        match event {
            OsEvent::Boot => {
                self.originate_lsa(&mut actions);
                self.send_hellos(&mut actions);
                self.arm_hello(&mut actions);
            }
            OsEvent::LinkUp(iface) => {
                self.link_up.insert(iface, true);
                self.send_hellos(&mut actions);
                self.hello_armed = false;
                self.arm_hello(&mut actions);
            }
            OsEvent::LinkDown(iface) => {
                self.link_up.insert(iface, false);
                if self.neighbors.remove(&iface).is_some() {
                    self.originate_lsa(&mut actions);
                }
            }
            OsEvent::Frame { iface, frame } => match frame {
                Frame::Ospf(OspfMsg::Hello {
                    router_id,
                    priority: _,
                    seen,
                }) => self.on_hello(iface, router_id, seen, &mut actions),
                Frame::Ospf(OspfMsg::Lsa(lsa)) => self.on_lsa(iface, lsa, &mut actions),
                _ => {}
            },
            OsEvent::Timer(TimerKind::OspfHello) => {
                self.hello_armed = false;
                if !self.all_adjacent() {
                    self.send_hellos(&mut actions);
                    self.arm_hello(&mut actions);
                }
            }
            OsEvent::Timer(_) => {}
            OsEvent::Mgmt(cmd) => match cmd {
                MgmtCommand::ShowRoutes => {
                    let rows = self
                        .fib
                        .iter()
                        .map(|(p, e)| (p, 0usize, e.next_hops.len()))
                        .collect();
                    actions.response = Some(MgmtResponse::Routes(rows));
                }
                MgmtCommand::DeviceShutdown => {
                    self.down = true;
                    actions.response = Some(MgmtResponse::Ok);
                }
                _ => {
                    actions.response = Some(MgmtResponse::Error("unsupported".into()));
                }
            },
        }
        actions
    }

    fn fib(&self) -> &Fib {
        &self.fib
    }

    fn rib_size(&self) -> usize {
        self.fib.len()
    }

    fn is_down(&self) -> bool {
        self.down
    }

    fn hostname(&self) -> &str {
        &self.hostname
    }

    fn begin_event(&mut self, id: EventId) {
        self.cur_event = id;
    }

    fn route_detail(&self, prefix: Ipv4Prefix) -> Option<RouteDetail> {
        let (origin, event) = self.route_meta.get(&prefix)?;
        Some(ospf_detail(*origin, *event))
    }

    fn routes_with_detail(&self) -> Vec<(Ipv4Prefix, RouteDetail)> {
        let mut rows: Vec<(Ipv4Prefix, RouteDetail)> = self
            .route_meta
            .iter()
            .map(|(p, (origin, event))| (*p, ospf_detail(*origin, *event)))
            .collect();
        rows.sort_by_key(|(p, _)| *p);
        rows
    }
}

/// SPF installs one lowest-cost route per prefix, so the decision is a
/// single-candidate one; the chain names the LSA's originating router and
/// the SPF run that installed the route.
fn ospf_detail(origin: Ipv4Addr, event: EventId) -> RouteDetail {
    RouteDetail {
        attrs: crate::attrs::PathAttrs::originated(origin).intern(),
        prov: Provenance::originated(OriginKind::Ospf, origin, event),
        reason: DecisionReason::OnlyCandidate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dr_election_prefers_priority_then_id() {
        let c = [
            (Ipv4Addr(10), 1u8),
            (Ipv4Addr(20), 5),
            (Ipv4Addr(30), 5),
            (Ipv4Addr(40), 0), // ineligible
        ];
        let (dr, bdr) = elect_dr_bdr(&c);
        assert_eq!(dr, Some(Ipv4Addr(30))); // higher id among priority 5
        assert_eq!(bdr, Some(Ipv4Addr(20)));
    }

    #[test]
    fn dr_election_empty_and_all_ineligible() {
        assert_eq!(elect_dr_bdr(&[]), (None, None));
        assert_eq!(elect_dr_bdr(&[(Ipv4Addr(1), 0)]), (None, None));
        let (dr, bdr) = elect_dr_bdr(&[(Ipv4Addr(1), 1)]);
        assert_eq!(dr, Some(Ipv4Addr(1)));
        assert_eq!(bdr, None);
    }
}
