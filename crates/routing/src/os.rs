//! The device-OS abstraction: what a firmware image looks like to the
//! emulator.
//!
//! CrystalNet treats vendor images as black boxes that react to their
//! environment: interfaces coming up, frames arriving, timers firing, and
//! management-plane commands over SSH/Telnet. [`DeviceOs`] is that
//! contract. The PhyNet layer (vnet) and orchestrator (core) drive
//! implementations — [`crate::bgp::BgpRouterOs`], [`crate::ospf::OspfRouterOs`],
//! [`crate::speaker::SpeakerOs`] — without knowing which firmware they are,
//! exactly as the paper's unified PhyNet container layer does (§4.1).

use crate::msg::Frame;
use crate::provenance::{RouteDetail, RouteMutation};
use crystalnet_config::{Acl, DeviceConfig};
use crystalnet_dataplane::Fib;
use crystalnet_net::{Ipv4Addr, Ipv4Prefix};
use crystalnet_sim::{EventId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Timers a device OS can arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimerKind {
    /// BGP minimum route advertisement interval expired: flush pending
    /// updates.
    Mrai,
    /// Periodic ARP refresh tick.
    ArpRefresh,
    /// OSPF hello tick.
    OspfHello,
}

/// An event delivered to a device OS.
#[derive(Debug, Clone)]
pub enum OsEvent {
    /// The firmware finished booting with interfaces already present
    /// (PhyNet containers hold them; §4.1).
    Boot,
    /// A physical interface came up.
    LinkUp(u32),
    /// A physical interface went down (fiber cut, peer reload,
    /// `Disconnect`).
    LinkDown(u32),
    /// A frame arrived on an interface.
    Frame {
        /// Ingress interface index.
        iface: u32,
        /// The frame.
        frame: Frame,
    },
    /// An armed timer fired.
    Timer(TimerKind),
    /// A management-plane command arrived (SSH/Telnet via the jumpbox).
    Mgmt(MgmtCommand),
}

/// Management-plane commands — the surface operators' tools script
/// against (§4.2's "IP Access" row of Table 2).
#[derive(Debug, Clone, PartialEq)]
pub enum MgmtCommand {
    /// `show bgp summary`.
    ShowBgpSummary,
    /// `show ip route` (Loc-RIB view).
    ShowRoutes,
    /// Administratively shut one BGP session.
    NeighborShutdown(Ipv4Addr),
    /// Re-enable one BGP session.
    NeighborEnable(Ipv4Addr),
    /// Add a `network` statement (origination).
    AddNetwork(Ipv4Prefix),
    /// Remove a `network` statement.
    RemoveNetwork(Ipv4Prefix),
    /// Apply an ACL to an interface (inbound).
    ApplyAclIn {
        /// Interface name (`et0`).
        iface: String,
        /// ACL name to bind.
        acl_name: String,
        /// The ACL body (pushed along, as config tools do).
        acl: Acl,
    },
    /// Replace the running configuration (the heavy path `Reload` uses).
    ReplaceConfig(Box<DeviceConfig>),
    /// Soft-apply a policy-level configuration change: sessions and
    /// Adj-RIB-In survive; the device re-runs import/export policy under
    /// the new configuration and asks established peers to replay their
    /// announcements (route refresh). Only valid for diffs classified
    /// `SoftRefresh` — session-affecting changes must use
    /// [`MgmtCommand::ReplaceConfig`].
    UpdatePolicy(Box<DeviceConfig>),
    /// Power the device down — the §2 automation-tool bug shut down *a
    /// router* when it meant to shut down *a BGP session*.
    DeviceShutdown,
}

/// Responses to management commands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MgmtResponse {
    /// Command applied.
    Ok,
    /// Summary of BGP sessions: (peer address, established, prefixes
    /// received).
    BgpSummary(Vec<(Ipv4Addr, bool, usize)>),
    /// Loc-RIB dump: (prefix, AS-path length, ECMP width).
    Routes(Vec<(Ipv4Prefix, usize, usize)>),
    /// Command failed.
    Error(String),
}

/// What a device OS wants done after handling an event.
#[derive(Debug, Default)]
pub struct OsActions {
    /// Frames to transmit: (egress interface, frame).
    pub out: Vec<(u32, Frame)>,
    /// Timers to arm: (delay, kind).
    pub timers: Vec<(SimDuration, TimerKind)>,
    /// Response to a management command.
    pub response: Option<MgmtResponse>,
    /// Route operations performed (drives the CPU model).
    pub route_ops: usize,
    /// The OS crashed while handling the event (e.g. the Case-2
    /// flap-crash bug). The sandbox reports it to the health monitor.
    pub crashed: bool,
}

impl OsActions {
    /// Convenience: actions carrying only a management response.
    #[must_use]
    pub fn respond(response: MgmtResponse) -> Self {
        OsActions {
            response: Some(response),
            ..OsActions::default()
        }
    }
}

/// A bootable firmware image instance.
///
/// `Send` so the parallel executor can move a device's OS (with its shard)
/// onto a worker thread; implementations hold only owned state and
/// `Arc`-shared immutable data.
pub trait DeviceOs: Send {
    /// Handles one event, returning the side effects.
    fn handle(&mut self, now: SimTime, event: OsEvent) -> OsActions;

    /// The forwarding table as the data plane sees it (the ASIC view,
    /// where the OS distinguishes kernel from ASIC).
    fn fib(&self) -> &Fib;

    /// Number of Loc-RIB prefixes.
    fn rib_size(&self) -> usize;

    /// Whether the OS is crashed / powered off.
    fn is_down(&self) -> bool;

    /// The device hostname.
    fn hostname(&self) -> &str;

    /// Addresses this device answers for (loopback + interface
    /// addresses). Default: none.
    fn local_addrs(&self) -> Vec<Ipv4Addr> {
        Vec::new()
    }

    /// Evaluates the device's inbound packet filter for a packet arriving
    /// on `ingress` (as *this firmware* interprets its ACLs — including
    /// the §2 v1/v2 misread quirk). `None` means locally injected.
    /// Default: permit.
    fn filter_permits(&self, ingress: Option<u32>, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let _ = (ingress, src, dst);
        true
    }

    /// Snapshot of the routes received from the peer on `iface` (the
    /// Adj-RIB-In). `Prepare` records these as the "routes from boundary"
    /// that speaker scripts replay (§3.2, §5.1). Default: none.
    fn adj_rib_in(&self, iface: u32) -> Vec<(Ipv4Prefix, std::sync::Arc<crate::attrs::PathAttrs>)> {
        let _ = iface;
        Vec::new()
    }

    /// Tells the OS the stable id of the event about to be handled, so
    /// provenance hops and mutations it produces can point at it. Kept
    /// separate from [`DeviceOs::handle`] so firmwares that don't track
    /// causality (and the many direct-`handle` tests) need no changes.
    /// Default: ignored.
    fn begin_event(&mut self, id: EventId) {
        let _ = id;
    }

    /// Enables/disables mutation journaling ([`DeviceOs::take_route_mutations`]).
    /// The harness switches this on only when a trace sink is attached, so
    /// untraced runs never pay for the journal. Default: ignored.
    fn set_tracing(&mut self, on: bool) {
        let _ = on;
    }

    /// Drains the RIB/FIB mutations performed since the last call. Only
    /// populated while tracing is on. Default: empty.
    fn take_route_mutations(&mut self) -> Vec<RouteMutation> {
        Vec::new()
    }

    /// Full detail — attributes, provenance, decision reason — for one
    /// installed prefix. Default: unknown.
    fn route_detail(&self, prefix: Ipv4Prefix) -> Option<RouteDetail> {
        let _ = prefix;
        None
    }

    /// [`DeviceOs::route_detail`] for every installed prefix, sorted by
    /// prefix. Default: empty.
    fn routes_with_detail(&self) -> Vec<(Ipv4Prefix, RouteDetail)> {
        Vec::new()
    }

    /// Deep-copies this OS instance, boxed — the per-device half of an
    /// emulation fork. RIB/FIB attribute and provenance entries are
    /// interned `Arc`s, so the copy shares unchanged route state
    /// structurally (two refcount bumps per entry) instead of
    /// duplicating it; everything mutable (session state, timers, FIB
    /// indexes) is owned by the copy.
    fn clone_boxed(&self) -> Box<dyn DeviceOs>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_default_is_inert() {
        let a = OsActions::default();
        assert!(a.out.is_empty() && a.timers.is_empty());
        assert!(a.response.is_none());
        assert!(!a.crashed);
        assert_eq!(a.route_ops, 0);
    }

    #[test]
    fn respond_helper() {
        let a = OsActions::respond(MgmtResponse::Ok);
        assert_eq!(a.response, Some(MgmtResponse::Ok));
    }
}
