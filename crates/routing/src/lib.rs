//! Control plane for the CrystalNet reproduction: BGP-4 and OSPFv2
//! engines, vendor behaviour profiles with injectable firmware bugs,
//! static speaker devices, and the harness that runs device firmwares to
//! convergence over a topology.
//!
//! The paper boots unmodified *vendor firmware images* inside containers
//! and VMs; this crate is the reproduction's synthetic-but-buggy
//! equivalent (see DESIGN.md for the substitution argument). Each device
//! is a [`DeviceOs`] — a black box reacting to link events, frames,
//! timers, and management commands — and the vendor-specific behaviours
//! that caused the paper's incidents (Figure 1 aggregation divergence,
//! FIB-overflow blackholes, ARP bugs, the Case-2 dev-build crashes) are
//! first-class, injectable properties of [`VendorProfile`].

pub mod attrs;
pub mod bgp;
pub mod harness;
pub mod health;
pub mod msg;
pub mod os;
pub mod ospf;
pub mod provenance;
pub mod speaker;
pub mod traffic;
pub mod vendor;

pub use attrs::{intern_stats, Origin, PathAttrs, Route};
pub use bgp::{BgpRouterOs, SessionState, LOCAL_IFACE};
pub use harness::{ControlPlaneSim, ControlPlaneWorld, UniformWorkModel, WorkKind, WorkModel};
pub use health::{
    GrayFailureWitness, HealthState, Incident, IncidentKind, PairStats, ProbeConfig, ProbeOutcome,
};
pub use msg::{BgpMsg, Frame, OspfMsg};
pub use os::{DeviceOs, MgmtCommand, MgmtResponse, OsActions, OsEvent, TimerKind};
pub use ospf::{elect_dr_bdr, OspfRouterOs, RouterLsa};
pub use provenance::{
    DecisionReason, MutationKind, OriginKind, ProvHop, Provenance, RouteDetail, RouteMutation,
};
pub use speaker::{SpeakerOs, SpeakerScript};
pub use traffic::{EcmpResidue, FlowSpec, TrafficConfig, TrafficState};
pub use vendor::{AggregateMode, FibOverflow, Quirks, VendorProfile};
