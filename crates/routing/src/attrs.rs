//! BGP path attributes and route representation.
//!
//! Attributes are shared via [`std::sync::Arc`] so that a route announced
//! to hundreds of devices costs one allocation — at L-DC scale the
//! emulation holds O(20M) routing-table entries (Table 3) and this sharing
//! is what keeps that affordable.

use crystalnet_net::{Asn, Ipv4Addr, Ipv4Prefix};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// BGP route origin, in decision-process preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Originated by an IGP (`network` statement).
    Igp,
    /// EGP (legacy).
    Egp,
    /// Incomplete (redistributed).
    Incomplete,
}

/// Path attributes attached to an announced prefix.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathAttrs {
    /// Flattened `AS_PATH` (AS_SEQUENCE only; production modifications are
    /// "mostly just repeating individual ASes", §5.2).
    pub as_path: Vec<Asn>,
    /// `NEXT_HOP`: address of the announcing interface.
    pub next_hop: Ipv4Addr,
    /// Origin code.
    pub origin: Origin,
    /// Multi-exit discriminator.
    pub med: u32,
    /// Local preference (meaningful within an AS; default 100).
    pub local_pref: u32,
    /// Community values.
    pub communities: Vec<u32>,
    /// Set when this route was produced by `aggregate-address` — the
    /// source of the §9 non-determinism the FIB comparator tolerates.
    pub aggregate: bool,
}

impl PathAttrs {
    /// Attributes for a locally originated prefix.
    #[must_use]
    pub fn originated(next_hop: Ipv4Addr) -> Self {
        PathAttrs {
            as_path: Vec::new(),
            next_hop,
            origin: Origin::Igp,
            med: 0,
            local_pref: 100,
            communities: Vec::new(),
            aggregate: false,
        }
    }

    /// Whether the path contains `asn` (eBGP loop prevention).
    #[must_use]
    pub fn contains_as(&self, asn: Asn) -> bool {
        self.as_path.contains(&asn)
    }

    /// A copy re-announced by `asn` from `next_hop`: prepends the AS and
    /// rewrites the next hop, resetting non-transitive attributes as eBGP
    /// does.
    #[must_use]
    pub fn announced_by(&self, asn: Asn, next_hop: Ipv4Addr) -> PathAttrs {
        let mut as_path = Vec::with_capacity(self.as_path.len() + 1);
        as_path.push(asn);
        as_path.extend_from_slice(&self.as_path);
        PathAttrs {
            as_path,
            next_hop,
            origin: self.origin,
            med: 0,          // MED is non-transitive across ASes
            local_pref: 100, // local-pref never crosses an eBGP session
            communities: self.communities.clone(),
            aggregate: self.aggregate,
        }
    }
}

/// A route: prefix plus shared attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// The destination prefix.
    pub prefix: Ipv4Prefix,
    /// Shared path attributes.
    pub attrs: Arc<PathAttrs>,
}

impl Route {
    /// Builds a route.
    #[must_use]
    pub fn new(prefix: Ipv4Prefix, attrs: PathAttrs) -> Self {
        Route {
            prefix,
            attrs: Arc::new(attrs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_preference_order() {
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn announced_by_prepends_and_resets() {
        let base = PathAttrs {
            as_path: vec![Asn(2), Asn(1)],
            next_hop: Ipv4Addr(9),
            origin: Origin::Igp,
            med: 50,
            local_pref: 300,
            communities: vec![7],
            aggregate: false,
        };
        let out = base.announced_by(Asn(6), Ipv4Addr(10));
        assert_eq!(out.as_path, vec![Asn(6), Asn(2), Asn(1)]);
        assert_eq!(out.next_hop, Ipv4Addr(10));
        assert_eq!(out.med, 0);
        assert_eq!(out.local_pref, 100);
        assert_eq!(out.communities, vec![7]); // communities are transitive
    }

    #[test]
    fn loop_detection() {
        let attrs = PathAttrs {
            as_path: vec![Asn(6), Asn(2), Asn(1)],
            ..PathAttrs::originated(Ipv4Addr(0))
        };
        assert!(attrs.contains_as(Asn(2)));
        assert!(!attrs.contains_as(Asn(3)));
    }

    #[test]
    fn originated_defaults() {
        let a = PathAttrs::originated(Ipv4Addr(5));
        assert!(a.as_path.is_empty());
        assert_eq!(a.local_pref, 100);
        assert_eq!(a.origin, Origin::Igp);
        assert!(!a.aggregate);
    }
}
