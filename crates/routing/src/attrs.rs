//! BGP path attributes and route representation.
//!
//! Attributes are shared via [`std::sync::Arc`] so that a route announced
//! to hundreds of devices costs one allocation — at L-DC scale the
//! emulation holds O(20M) routing-table entries (Table 3) and this sharing
//! is what keeps that affordable.
//!
//! On top of per-route sharing, [`PathAttrs::intern`] hash-conses attribute
//! sets fleet-wide: structurally identical `PathAttrs` resolve to the *same*
//! `Arc`, across devices and worker threads. In a Clos fabric most routes to
//! a prefix carry one of a handful of attribute shapes, so interning
//! collapses O(devices × prefixes) allocations to O(distinct shapes) — and
//! it makes RIB diffing a pointer comparison (`Arc::ptr_eq`) in the common
//! unchanged case.

use crystalnet_net::{Asn, Ipv4Addr, Ipv4Prefix};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Lookups served from the table without allocating.
static INTERN_HITS: AtomicU64 = AtomicU64::new(0);
/// Lookups that allocated a new canonical `Arc`.
static INTERN_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide interner statistics as `(hits, misses)` since process
/// start. The table outlives individual emulations (and is shared by
/// parallel workers), so treat these as execution diagnostics rather than
/// canonical per-run facts.
#[must_use]
pub fn intern_stats() -> (u64, u64) {
    (
        INTERN_HITS.load(Ordering::Relaxed),
        INTERN_MISSES.load(Ordering::Relaxed),
    )
}

/// BGP route origin, in decision-process preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Originated by an IGP (`network` statement).
    Igp,
    /// EGP (legacy).
    Egp,
    /// Incomplete (redistributed).
    Incomplete,
}

/// Path attributes attached to an announced prefix.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathAttrs {
    /// Flattened `AS_PATH` (AS_SEQUENCE only; production modifications are
    /// "mostly just repeating individual ASes", §5.2).
    pub as_path: Vec<Asn>,
    /// `NEXT_HOP`: address of the announcing interface.
    pub next_hop: Ipv4Addr,
    /// Origin code.
    pub origin: Origin,
    /// Multi-exit discriminator.
    pub med: u32,
    /// Local preference (meaningful within an AS; default 100).
    pub local_pref: u32,
    /// Community values.
    pub communities: Vec<u32>,
    /// Set when this route was produced by `aggregate-address` — the
    /// source of the §9 non-determinism the FIB comparator tolerates.
    pub aggregate: bool,
}

impl PathAttrs {
    /// Attributes for a locally originated prefix.
    #[must_use]
    pub fn originated(next_hop: Ipv4Addr) -> Self {
        PathAttrs {
            as_path: Vec::new(),
            next_hop,
            origin: Origin::Igp,
            med: 0,
            local_pref: 100,
            communities: Vec::new(),
            aggregate: false,
        }
    }

    /// Whether the path contains `asn` (eBGP loop prevention).
    #[must_use]
    pub fn contains_as(&self, asn: Asn) -> bool {
        self.as_path.contains(&asn)
    }

    /// A copy re-announced by `asn` from `next_hop`: prepends the AS and
    /// rewrites the next hop, resetting non-transitive attributes as eBGP
    /// does.
    #[must_use]
    pub fn announced_by(&self, asn: Asn, next_hop: Ipv4Addr) -> PathAttrs {
        let mut as_path = Vec::with_capacity(self.as_path.len() + 1);
        as_path.push(asn);
        as_path.extend_from_slice(&self.as_path);
        PathAttrs {
            as_path,
            next_hop,
            origin: self.origin,
            med: 0,          // MED is non-transitive across ASes
            local_pref: 100, // local-pref never crosses an eBGP session
            communities: self.communities.clone(),
            aggregate: self.aggregate,
        }
    }
}

/// The process-wide hash-consing table. `Arc<PathAttrs>` hashes/compares
/// through to the `PathAttrs` (and `Arc<T>: Borrow<T>`), so lookups by
/// value need no key wrapper.
fn interner() -> &'static Mutex<HashSet<Arc<PathAttrs>>> {
    static INTERNER: OnceLock<Mutex<HashSet<Arc<PathAttrs>>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(HashSet::new()))
}

impl PathAttrs {
    /// Hash-conses `self`: returns the canonical shared `Arc` for this
    /// attribute set, allocating only if no structurally equal set has been
    /// interned before.
    ///
    /// The guarantee callers rely on (and the differential tests assert):
    /// two interned handles are [`Arc::ptr_eq`] **iff** their contents are
    /// `==`. The table is process-wide and `Mutex`-guarded, so the parallel
    /// executor's workers share it safely; interning order never affects
    /// which value a handle dereferences to, so it cannot perturb
    /// determinism.
    #[must_use]
    pub fn intern(self) -> Arc<PathAttrs> {
        let mut table = interner().lock().expect("attr interner poisoned");
        if let Some(existing) = table.get(&self) {
            INTERN_HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(existing);
        }
        INTERN_MISSES.fetch_add(1, Ordering::Relaxed);
        let arc = Arc::new(self);
        table.insert(Arc::clone(&arc));
        arc
    }

    /// Number of distinct attribute sets currently interned.
    #[must_use]
    pub fn interned_count() -> usize {
        interner().lock().expect("attr interner poisoned").len()
    }

    /// Drops interned sets no longer referenced outside the table.
    /// Long-lived processes running many emulations call this between runs
    /// to keep the table proportional to live routes.
    pub fn intern_sweep() {
        interner()
            .lock()
            .expect("attr interner poisoned")
            .retain(|a| Arc::strong_count(a) > 1);
    }
}

/// A route: prefix plus shared attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// The destination prefix.
    pub prefix: Ipv4Prefix,
    /// Shared path attributes.
    pub attrs: Arc<PathAttrs>,
}

impl Route {
    /// Builds a route.
    #[must_use]
    pub fn new(prefix: Ipv4Prefix, attrs: PathAttrs) -> Self {
        Route {
            prefix,
            attrs: attrs.intern(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_preference_order() {
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn announced_by_prepends_and_resets() {
        let base = PathAttrs {
            as_path: vec![Asn(2), Asn(1)],
            next_hop: Ipv4Addr(9),
            origin: Origin::Igp,
            med: 50,
            local_pref: 300,
            communities: vec![7],
            aggregate: false,
        };
        let out = base.announced_by(Asn(6), Ipv4Addr(10));
        assert_eq!(out.as_path, vec![Asn(6), Asn(2), Asn(1)]);
        assert_eq!(out.next_hop, Ipv4Addr(10));
        assert_eq!(out.med, 0);
        assert_eq!(out.local_pref, 100);
        assert_eq!(out.communities, vec![7]); // communities are transitive
    }

    #[test]
    fn loop_detection() {
        let attrs = PathAttrs {
            as_path: vec![Asn(6), Asn(2), Asn(1)],
            ..PathAttrs::originated(Ipv4Addr(0))
        };
        assert!(attrs.contains_as(Asn(2)));
        assert!(!attrs.contains_as(Asn(3)));
    }

    #[test]
    fn interning_shares_structurally_equal_sets() {
        let a = PathAttrs {
            as_path: vec![Asn(65001), Asn(65002)],
            ..PathAttrs::originated(Ipv4Addr(42))
        };
        let b = a.clone();
        let c = PathAttrs {
            med: 1,
            ..a.clone()
        };
        let ia = a.intern();
        let ib = b.intern();
        let ic = c.intern();
        assert!(Arc::ptr_eq(&ia, &ib));
        assert!(!Arc::ptr_eq(&ia, &ic));
        assert_ne!(*ia, *ic);
    }

    #[test]
    fn intern_sweep_drops_dead_entries() {
        let unique = PathAttrs {
            communities: vec![0xdead_beef],
            ..PathAttrs::originated(Ipv4Addr(0xfeed))
        };
        let handle = unique.clone().intern();
        PathAttrs::intern_sweep();
        assert!(Arc::ptr_eq(&handle, &unique.clone().intern()));
        drop(handle);
        PathAttrs::intern_sweep();
        // Re-interning after the sweep allocates a fresh canonical Arc;
        // the table no longer pins the dead one. (Pointer identity with
        // the old Arc is unobservable — it was freed — so just check the
        // round trip still works.)
        let again = unique.intern();
        assert_eq!(again.communities, vec![0xdead_beef]);
    }

    #[test]
    fn intern_stats_count_hits_and_misses() {
        let (h0, m0) = intern_stats();
        let unique = PathAttrs {
            communities: vec![0x57a7_0001],
            ..PathAttrs::originated(Ipv4Addr(0x57a7))
        };
        let _first = unique.clone().intern(); // miss: allocates
        let _second = unique.intern(); // hit: shared
        let (h1, m1) = intern_stats();
        // Counters are process-global and only ever advance, so with other
        // tests running concurrently we can only assert monotonicity.
        assert!(h1 > h0, "expected at least one hit");
        assert!(m1 > m0, "expected at least one miss");
    }

    #[test]
    fn originated_defaults() {
        let a = PathAttrs::originated(Ipv4Addr(5));
        assert!(a.as_path.is_empty());
        assert_eq!(a.local_pref, 100);
        assert_eq!(a.origin, Origin::Igp);
        assert!(!a.aggregate);
    }
}
