//! BGP policy behaviour: route maps, prefix lists, local preference,
//! AS-path prepending — the §2 "configuration policies quite complicated"
//! machinery that CrystalNet loads from production configs.

use crystalnet_config::{
    generate_device,
    Action,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapEntry,
    RouteMatch,
    RouteSet, //
};
use crystalnet_net::fixtures::fig7;
use crystalnet_net::{DeviceId, Ipv4Prefix};
use crystalnet_routing::harness::build_full_bgp_sim;
use crystalnet_routing::{BgpRouterOs, ControlPlaneSim, UniformWorkModel, VendorProfile};
use crystalnet_sim::{SimDuration, SimTime};

fn work() -> Box<UniformWorkModel> {
    Box::new(UniformWorkModel {
        boot: SimDuration::from_secs(1),
        ..UniformWorkModel::default()
    })
}

fn converge(sim: &mut ControlPlaneSim) {
    sim.boot_all(SimTime::ZERO);
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::ZERO + SimDuration::from_mins(60),
    )
    .expect("converges");
}

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

/// Installs a custom-configured BgpRouterOs for `dev` in place of the
/// generated one.
fn with_config(
    sim: &mut ControlPlaneSim,
    topo: &crystalnet_net::Topology,
    dev: DeviceId,
    f: impl FnOnce(&mut crystalnet_config::DeviceConfig),
) {
    let mut cfg = generate_device(topo, dev);
    f(&mut cfg);
    let profile = VendorProfile::for_vendor(topo.device(dev).vendor);
    sim.add_os(
        dev,
        Box::new(BgpRouterOs::new(profile, cfg, topo.device(dev).loopback)),
    );
}

#[test]
fn outbound_deny_route_map_filters_announcements() {
    let f = fig7();
    let mut sim = build_full_bgp_sim(&f.topo, work());
    // T1 denies its own /24 toward everyone (keeps loopback).
    with_config(&mut sim, &f.topo, f.tors[0], |cfg| {
        cfg.prefix_lists.insert(
            "SRV".into(),
            PrefixList {
                entries: vec![PrefixListEntry {
                    seq: 5,
                    action: Action::Permit,
                    prefix: p("10.7.0.0/24"),
                    ge: None,
                    le: None,
                }],
            },
        );
        cfg.route_maps.insert(
            "NO-SRV".into(),
            RouteMap {
                entries: vec![
                    RouteMapEntry {
                        seq: 10,
                        action: Action::Deny,
                        matches: vec![RouteMatch::PrefixList("SRV".into())],
                        sets: vec![],
                    },
                    RouteMapEntry {
                        seq: 20,
                        action: Action::Permit,
                        matches: vec![],
                        sets: vec![],
                    },
                ],
            },
        );
        for n in &mut cfg.bgp.as_mut().unwrap().neighbors {
            n.route_map_out = Some("NO-SRV".into());
        }
    });
    converge(&mut sim);

    let spine_fib = sim.fib(f.spines[0]).unwrap();
    assert!(
        spine_fib.lookup(p("10.7.0.0/24").nth(1)).is_none(),
        "the denied /24 must not propagate"
    );
    // The loopback still does (permit-all entry 20).
    let t1_loopback = f.topo.device(f.tors[0]).loopback;
    assert!(spine_fib.get(Ipv4Prefix::host(t1_loopback)).is_some());
}

#[test]
fn inbound_local_pref_steers_best_path_selection() {
    let f = fig7();
    let mut sim = build_full_bgp_sim(&f.topo, work());
    // T1 prefers L1 (iface 0 peer) via local-preference 200 on routes
    // learned from it.
    let l1_addr = {
        let (_, _, remote) = f.topo.neighbors(f.tors[0]).next().unwrap();
        f.topo.device(remote.device).ifaces[remote.iface as usize]
            .addr
            .unwrap()
            .addr
    };
    with_config(&mut sim, &f.topo, f.tors[0], |cfg| {
        cfg.prefix_lists.insert(
            "ANY".into(),
            PrefixList {
                entries: vec![PrefixListEntry {
                    seq: 5,
                    action: Action::Permit,
                    prefix: p("0.0.0.0/0"),
                    ge: None,
                    le: Some(32),
                }],
            },
        );
        cfg.route_maps.insert(
            "PREF-L1".into(),
            RouteMap {
                entries: vec![RouteMapEntry {
                    seq: 10,
                    action: Action::Permit,
                    matches: vec![RouteMatch::PrefixList("ANY".into())],
                    sets: vec![RouteSet::LocalPref(200)],
                }],
            },
        );
        let bgp = cfg.bgp.as_mut().unwrap();
        let n = bgp.neighbor_mut(l1_addr).expect("L1 neighbor");
        n.route_map_in = Some("PREF-L1".into());
    });
    converge(&mut sim);

    // Without policy, T1 would ECMP across both leaves; with local-pref
    // 200 on L1-learned routes, L1 is the single best path.
    let fib = sim.fib(f.tors[0]).unwrap();
    let (_, entry) = fib.lookup(p("10.7.2.0/24").nth(1)).unwrap();
    assert_eq!(entry.next_hops.len(), 1, "local-pref must break ECMP");
    assert_eq!(entry.next_hops[0].via, l1_addr);
}

#[test]
fn as_path_prepend_sheds_inbound_traffic() {
    let f = fig7();
    let mut sim = build_full_bgp_sim(&f.topo, work());
    // L1 prepends 3x toward the spines: everyone upstream prefers L2 for
    // pod-1 destinations.
    with_config(&mut sim, &f.topo, f.leaves[0], |cfg| {
        cfg.prefix_lists.insert(
            "ANY".into(),
            PrefixList {
                entries: vec![PrefixListEntry {
                    seq: 5,
                    action: Action::Permit,
                    prefix: p("0.0.0.0/0"),
                    ge: None,
                    le: Some(32),
                }],
            },
        );
        cfg.route_maps.insert(
            "SHED".into(),
            RouteMap {
                entries: vec![RouteMapEntry {
                    seq: 10,
                    action: Action::Permit,
                    matches: vec![RouteMatch::PrefixList("ANY".into())],
                    sets: vec![RouteSet::AsPathPrepend(3)],
                }],
            },
        );
        let spine_asn = f.topo.device(f.spines[0]).asn;
        let bgp = cfg.bgp.as_mut().unwrap();
        let spine_peers: Vec<crystalnet_net::Ipv4Addr> = bgp
            .neighbors
            .iter()
            .filter(|n| n.remote_as == spine_asn)
            .map(|n| n.addr)
            .collect();
        for addr in spine_peers {
            bgp.neighbor_mut(addr).unwrap().route_map_out = Some("SHED".into());
        }
    });
    converge(&mut sim);

    // Spines now reach T1's subnet only via L2 (shorter path).
    let fib = sim.fib(f.spines[0]).unwrap();
    let (_, entry) = fib.lookup(p("10.7.0.0/24").nth(1)).unwrap();
    assert_eq!(entry.next_hops.len(), 1, "prepended path must lose");
    let l2_uplink_addrs: Vec<crystalnet_net::Ipv4Addr> = f
        .topo
        .device(f.leaves[1])
        .ifaces
        .iter()
        .filter_map(|i| i.addr.map(|a| a.addr))
        .collect();
    assert!(l2_uplink_addrs.contains(&entry.next_hops[0].via));
}

#[test]
fn community_tagging_matches_downstream() {
    // T1 tags its announcements with community 777; L1 drops 777-tagged
    // routes toward the spines (a scoped-announcement policy).
    let f = fig7();
    let mut sim = build_full_bgp_sim(&f.topo, work());
    with_config(&mut sim, &f.topo, f.tors[0], |cfg| {
        cfg.prefix_lists.insert(
            "ANY".into(),
            PrefixList {
                entries: vec![PrefixListEntry {
                    seq: 5,
                    action: Action::Permit,
                    prefix: p("0.0.0.0/0"),
                    ge: None,
                    le: Some(32),
                }],
            },
        );
        cfg.route_maps.insert(
            "TAG".into(),
            RouteMap {
                entries: vec![RouteMapEntry {
                    seq: 10,
                    action: Action::Permit,
                    matches: vec![RouteMatch::PrefixList("ANY".into())],
                    sets: vec![RouteSet::Community(777)],
                }],
            },
        );
        for n in &mut cfg.bgp.as_mut().unwrap().neighbors {
            n.route_map_out = Some("TAG".into());
        }
    });
    with_config(&mut sim, &f.topo, f.leaves[0], |cfg| {
        cfg.route_maps.insert(
            "NO-777-UP".into(),
            RouteMap {
                entries: vec![
                    RouteMapEntry {
                        seq: 10,
                        action: Action::Deny,
                        matches: vec![RouteMatch::Community(777)],
                        sets: vec![],
                    },
                    RouteMapEntry {
                        seq: 20,
                        action: Action::Permit,
                        matches: vec![],
                        sets: vec![],
                    },
                ],
            },
        );
        let spine_asn = f.topo.device(f.spines[0]).asn;
        let bgp = cfg.bgp.as_mut().unwrap();
        let spine_peers: Vec<crystalnet_net::Ipv4Addr> = bgp
            .neighbors
            .iter()
            .filter(|n| n.remote_as == spine_asn)
            .map(|n| n.addr)
            .collect();
        for addr in spine_peers {
            bgp.neighbor_mut(addr).unwrap().route_map_out = Some("NO-777-UP".into());
        }
    });
    converge(&mut sim);

    // Spines only see T1's routes via L2 (L1 scrubbed the tagged ones).
    let fib = sim.fib(f.spines[0]).unwrap();
    let (_, entry) = fib.lookup(p("10.7.0.0/24").nth(1)).unwrap();
    assert_eq!(entry.next_hops.len(), 1);
    // T2's (untagged) routes still flow through both leaves.
    let (_, entry2) = fib.lookup(p("10.7.1.0/24").nth(1)).unwrap();
    assert_eq!(entry2.next_hops.len(), 2);
}
