//! Property-based differential testing of the per-link-lookahead
//! parallel executor.
//!
//! Each case builds a randomized small Clos fabric, scripts a randomized
//! scenario (boot, optional mid-convergence link flap with a management
//! probe, optional *far-future* flap that lands long past the quiet
//! horizon and forces the coordinator's lock-step fallback), runs it
//! serially, and asserts every parallel worker count (1/2/4/8) is
//! bit-identical: same route-ready instant, same FIB on every device,
//! same RIB sizes, same route-operation counters, same surviving queue.

use crystalnet_net::{partition, ClosParams, LinkId, Topology};
use crystalnet_routing::harness::build_full_bgp_sim;
use crystalnet_routing::{ControlPlaneSim, MgmtCommand, UniformWorkModel, WorkModel};
use crystalnet_sim::{SimDuration, SimTime};
use proptest::prelude::*;

const QUIET: SimDuration = SimDuration::from_secs(5);

fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(120)
}

fn work() -> Box<UniformWorkModel> {
    Box::new(UniformWorkModel {
        boot: SimDuration::from_secs(1),
        ..UniformWorkModel::default()
    })
}

fn shard_models(k: usize) -> Vec<Box<dyn WorkModel>> {
    (0..k).map(|_| work() as Box<dyn WorkModel>).collect()
}

/// A randomized tiny Clos: every dimension small enough to converge in
/// well under a second, every combination structurally valid.
fn arb_params() -> impl Strategy<Value = ClosParams> {
    (
        1u32..3,
        1u32..3,
        1u32..3,
        1u32..4,
        1u32..3,
        1u32..3,
        0u32..2,
    )
        .prop_map(
            |(borders, spine_groups, spines_per_group, pods, leaves_per_pod, tors_per_pod, ext)| {
                ClosParams {
                    name: "prop-dc".into(),
                    borders,
                    spine_groups,
                    spines_per_group,
                    pods,
                    leaves_per_pod,
                    tors_per_pod,
                    groups_per_pod: spine_groups,
                    ext_peers_per_border: ext,
                    ext_prefixes_per_peer: 1,
                }
            },
        )
}

#[derive(Debug, Clone, Copy)]
struct Scenario {
    /// Flap `link % link_count` while converging, probe between edges.
    early_flap: bool,
    flap_link: u32,
    /// Script a second flap minutes after convergence — far beyond the
    /// quiet horizon, so only the lock-step fallback can reach it.
    late_flap: bool,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (any::<bool>(), 0u32..64, any::<bool>()).prop_map(|(early_flap, flap_link, late_flap)| {
        Scenario {
            early_flap,
            flap_link,
            late_flap,
        }
    })
}

fn apply_scenario(sim: &mut ControlPlaneSim, topo: &Topology, sc: Scenario) {
    sim.boot_all(SimTime::ZERO);
    let links = topo.link_count() as u32;
    if sc.early_flap && links > 0 {
        let ep = ControlPlaneSim::link_endpoints(topo, LinkId(sc.flap_link % links));
        sim.link_down(ep, SimTime::ZERO + SimDuration::from_millis(1500));
        sim.link_up(ep, SimTime::ZERO + SimDuration::from_secs(3));
        sim.mgmt(
            ep.0,
            MgmtCommand::ShowBgpSummary,
            SimTime::ZERO + SimDuration::from_secs(2),
        );
    }
    if sc.late_flap && links > 0 {
        let ep = ControlPlaneSim::link_endpoints(topo, LinkId((sc.flap_link / 2) % links));
        sim.link_down(ep, SimTime::ZERO + SimDuration::from_mins(4));
        sim.link_up(ep, SimTime::ZERO + SimDuration::from_mins(5));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn parallel_matches_serial_on_random_fabrics(
        params in arb_params(),
        sc in arb_scenario(),
    ) {
        let dc = params.build();
        let topo = &dc.topo;

        let mut serial = build_full_bgp_sim(topo, work());
        apply_scenario(&mut serial, topo, sc);
        let t_serial = serial.run_until_quiet(QUIET, deadline());
        prop_assert!(t_serial.is_some(), "serial run must converge");

        for workers in [1usize, 2, 4, 8] {
            let mut par = build_full_bgp_sim(topo, work());
            apply_scenario(&mut par, topo, sc);
            let p = partition(topo, workers);
            let k = p.shard_count();
            let (t_par, models) =
                par.run_until_quiet_parallel(QUIET, deadline(), &p, shard_models(k));
            prop_assert_eq!(models.len(), k);
            prop_assert_eq!(
                t_serial, t_par,
                "route-ready instant diverged at {} workers", workers
            );
            prop_assert_eq!(
                serial.engine.now().as_nanos(),
                par.engine.now().as_nanos(),
                "clock diverged at {} workers", workers
            );
            prop_assert_eq!(
                serial.engine.events_pending(),
                par.engine.events_pending(),
                "surviving queue depth diverged at {} workers", workers
            );
            prop_assert_eq!(
                serial.engine.world.route_ops_total,
                par.engine.world.route_ops_total,
                "route ops diverged at {} workers", workers
            );
            for (id, dev) in topo.devices() {
                prop_assert_eq!(
                    serial.is_up(id),
                    par.is_up(id),
                    "up state of {} diverged at {} workers", &dev.name, workers
                );
                match (serial.os(id), par.os(id)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(
                            a.rib_size(), b.rib_size(),
                            "RIB of {} diverged at {} workers", &dev.name, workers
                        );
                        prop_assert!(
                            a.fib() == b.fib(),
                            "FIB of {} diverged at {} workers", &dev.name, workers
                        );
                    }
                    _ => prop_assert!(
                        false,
                        "OS presence differs on {} at {} workers", &dev.name, workers
                    ),
                }
            }
        }
    }
}
