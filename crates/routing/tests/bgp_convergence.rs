//! End-to-end BGP behaviour: session bring-up, route propagation, ECMP,
//! withdraws on failure, the Figure 1 vendor divergence, and the §2
//! FIB-overflow blackhole — all running through the control-plane harness.

use bytes::Bytes;
use crystalnet_config::generate_device;
use crystalnet_dataplane::ForwardDecision;
use crystalnet_net::fixtures::{fig1, fig7};
use crystalnet_net::{Asn, Ipv4Prefix, Topology};
use crystalnet_routing::harness::{build_bgp_sim, build_full_bgp_sim};
use crystalnet_routing::{
    BgpRouterOs, ControlPlaneSim, MgmtCommand, MgmtResponse, UniformWorkModel, VendorProfile,
};
use crystalnet_sim::{SimDuration, SimTime};

fn work() -> Box<UniformWorkModel> {
    Box::new(UniformWorkModel {
        boot: SimDuration::from_secs(1),
        ..UniformWorkModel::default()
    })
}

fn converge(sim: &mut ControlPlaneSim) -> SimTime {
    sim.boot_all(SimTime::ZERO);
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::ZERO + SimDuration::from_mins(120),
    )
    .expect("network must converge")
}

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

#[test]
fn fig7_converges_and_all_tors_are_reachable_everywhere() {
    let f = fig7();
    let mut sim = build_full_bgp_sim(&f.topo, work());
    converge(&mut sim);

    // Every device installs every ToR /24.
    for (id, dev) in f.topo.devices() {
        let fib = sim.fib(id).unwrap();
        for i in 0..6u8 {
            let prefix = p(&format!("10.7.{i}.0/24"));
            assert!(
                fib.lookup(prefix.nth(1)).is_some(),
                "{} cannot reach {prefix}",
                dev.name
            );
        }
    }
}

#[test]
fn fig7_uses_ecmp_across_leaf_pairs_and_spines() {
    let f = fig7();
    let mut sim = build_full_bgp_sim(&f.topo, work());
    converge(&mut sim);

    // T1 reaches T3's subnet via both of its leaves.
    let fib = sim.fib(f.tors[0]).unwrap();
    let (_, entry) = fib.lookup(p("10.7.2.0/24").nth(1)).unwrap();
    assert_eq!(entry.next_hops.len(), 2, "ToR should ECMP across L1/L2");
    // A spine reaches T1's subnet via both L1 and L2.
    let fib = sim.fib(f.spines[0]).unwrap();
    let (_, entry) = fib.lookup(p("10.7.0.0/24").nth(1)).unwrap();
    assert_eq!(
        entry.next_hops.len(),
        2,
        "spine should ECMP across the pair"
    );
}

#[test]
fn fig7_packet_trace_follows_fib() {
    let f = fig7();
    let mut sim = build_full_bgp_sim(&f.topo, work());
    converge(&mut sim);

    let pkt = crystalnet_dataplane::Ipv4Packet {
        src: p("10.7.0.0/24").nth(5),
        dst: p("10.7.4.0/24").nth(9), // T5's subnet
        protocol: 6,
        ttl: 64,
        identification: 42,
        payload: Bytes::new(),
    };
    let (path, outcome) = sim.trace_packet(f.tors[0], &pkt);
    assert_eq!(outcome, ForwardDecision::Deliver);
    // T1 -> leaf (L1/L2) -> spine -> leaf (L5/L6) -> T5.
    assert_eq!(path.len(), 5);
    assert_eq!(*path.last().unwrap(), f.tors[4]);
    assert!(f.leaves[..2].contains(&path[1]));
    assert!(f.spines.contains(&path[2]));
    assert!(f.leaves[4..].contains(&path[3]));
}

#[test]
fn link_failure_withdraws_routes_and_recovers() {
    let f = fig7();
    let mut sim = build_full_bgp_sim(&f.topo, work());
    let t0 = converge(&mut sim);

    // Fail the T1-L1 link: T1's subnet must survive via L2 everywhere.
    let (lid, _, _) = f.topo.neighbors(f.tors[0]).next().unwrap();
    let ep = ControlPlaneSim::link_endpoints(&f.topo, lid);
    sim.link_down(ep, t0 + SimDuration::from_secs(10));
    let t1 = sim
        .run_until_quiet(SimDuration::from_secs(5), t0 + SimDuration::from_mins(60))
        .unwrap();

    let fib = sim.fib(f.spines[0]).unwrap();
    let (_, entry) = fib.lookup(p("10.7.0.0/24").nth(1)).unwrap();
    assert_eq!(entry.next_hops.len(), 1, "one leaf path remains");
    // T1 itself lost one uplink: ECMP narrows.
    let fib = sim.fib(f.tors[0]).unwrap();
    let (_, e) = fib.lookup(p("10.7.2.0/24").nth(1)).unwrap();
    assert_eq!(e.next_hops.len(), 1);

    // Bring it back: full ECMP returns.
    sim.link_up(ep, t1 + SimDuration::from_secs(10));
    sim.run_until_quiet(SimDuration::from_secs(5), t1 + SimDuration::from_mins(60))
        .unwrap();
    let fib = sim.fib(f.spines[0]).unwrap();
    let (_, entry) = fib.lookup(p("10.7.0.0/24").nth(1)).unwrap();
    assert_eq!(entry.next_hops.len(), 2);
}

#[test]
fn fig1_vendor_divergence_steers_all_traffic_to_r7() {
    let f = fig1();
    // R6 (index 5) aggregates with vendor-A semantics, R7 (index 6) with
    // vendor-C semantics. Configure the aggregate on both.
    let mut sim = build_bgp_sim(&f.topo, work(), |id, dev| {
        let mut prof = VendorProfile::for_vendor(dev.vendor);
        // Make MRAI uniform so only the aggregation behaviour differs.
        prof.mrai = VendorProfile::ctnr_a().mrai;
        let _ = id;
        Some(prof)
    });
    for &r in &[f.routers[5], f.routers[6]] {
        let mut cfg = generate_device(&f.topo, r);
        cfg.bgp
            .as_mut()
            .unwrap()
            .aggregates
            .push(crystalnet_config::AggregateConfig {
                prefix: f.p3,
                summary_only: true,
            });
        let dev = f.topo.device(r);
        let profile = VendorProfile::for_vendor(dev.vendor);
        sim.add_os(r, Box::new(BgpRouterOs::new(profile, cfg, dev.loopback)));
    }
    converge(&mut sim);

    // R8 sees P3 from both, but R7's empty-path aggregate has the
    // shortest AS path and wins — all P3 traffic goes through R7.
    let r8 = f.routers[7];
    let fib = sim.fib(r8).unwrap();
    let (got, entry) = fib.lookup(f.p3.nth(77)).unwrap();
    assert_eq!(got, f.p3, "R8 must route via the aggregate");
    assert_eq!(entry.next_hops.len(), 1, "no ECMP: paths differ in length");
    // The surviving next hop is R7's link.
    let r7_addr = f
        .topo
        .device(f.routers[6])
        .ifaces
        .last()
        .unwrap()
        .addr
        .unwrap();
    // R7's interface toward R8 is its last allocated one.
    assert_eq!(entry.next_hops[0].via, r7_addr.addr);

    // Sanity: with identical vendors there would be two equal paths; the
    // loc-rib of R8 must show P3 with AS-path length 1 (just R7's AS).
    let resp = sim
        .mgmt_sync(r8, MgmtCommand::ShowRoutes)
        .expect("mgmt response");
    let MgmtResponse::Routes(rows) = resp else {
        panic!("unexpected response");
    };
    let p3_row = rows.iter().find(|(pfx, _, _)| *pfx == f.p3).unwrap();
    assert_eq!(p3_row.1, 1, "winning aggregate path is just {{R7}}");
}

#[test]
fn fib_overflow_silently_blackholes_with_vendor_a() {
    // The §2 incident: a load balancer splits its /16 into /24 blocks; a
    // downstream router with a small FIB silently drops installs.
    let mut topo = Topology::new();
    let mut p2p = crystalnet_net::P2pAllocator::new(p("100.100.0.0/16"));
    let lb = topo
        .add_device(crystalnet_net::Device {
            name: "slb".into(),
            role: crystalnet_net::Role::Middlebox,
            vendor: crystalnet_net::Vendor::CtnrB,
            asn: Asn(65501),
            loopback: "172.30.0.1".parse().unwrap(),
            mgmt_addr: "192.168.30.1".parse().unwrap(),
            originated: p("10.1.0.0/16").subnets(24).into_iter().take(100).collect(),
            ifaces: vec![],
            pod: None,
        })
        .unwrap();
    let router = topo
        .add_device(crystalnet_net::Device {
            name: "r1".into(),
            role: crystalnet_net::Role::Leaf,
            vendor: crystalnet_net::Vendor::CtnrA,
            asn: Asn(65502),
            loopback: "172.30.0.2".parse().unwrap(),
            mgmt_addr: "192.168.30.2".parse().unwrap(),
            originated: vec![],
            ifaces: vec![],
            pod: None,
        })
        .unwrap();
    topo.connect_p2p(lb, router, &mut p2p).unwrap();

    let mut sim = ControlPlaneSim::new(&topo, work());
    let lb_cfg = generate_device(&topo, lb);
    sim.add_os(
        lb,
        Box::new(BgpRouterOs::new(
            VendorProfile::ctnr_b(),
            lb_cfg,
            topo.device(lb).loopback,
        )),
    );
    let mut r_cfg = generate_device(&topo, router);
    r_cfg.fib_capacity = Some(60); // too small for 100 blocks
    sim.add_os(
        router,
        Box::new(BgpRouterOs::new(
            VendorProfile::ctnr_a(), // SilentDrop overflow policy
            r_cfg,
            topo.device(router).loopback,
        )),
    );
    converge(&mut sim);

    let fib = sim.fib(router).unwrap();
    assert_eq!(fib.len(), 60, "FIB capped at capacity");
    assert_eq!(fib.dropped_installs(), 40, "40 blocks silently dropped");
    // Traffic to a dropped block blackholes at the router.
    let blocks = p("10.1.0.0/16").subnets(24);
    let blackholed = blocks
        .iter()
        .take(100)
        .filter(|b| fib.lookup(b.nth(1)).is_none())
        .count();
    assert_eq!(blackholed, 40);
    // But the RIB still holds them (SilentDrop keeps RIB + readvertises).
    assert_eq!(sim.os(router).unwrap().rib_size(), 100);
}

#[test]
fn stop_announcing_quirk_suppresses_origination() {
    let f = fig7();
    let mut sim = build_bgp_sim(&f.topo, work(), |id, dev| {
        let mut prof = VendorProfile::for_vendor(dev.vendor);
        if id == f.tors[0] {
            // T1 runs the buggy firmware that stopped announcing.
            prof.quirks.stop_announcing_networks = true;
        }
        Some(prof)
    });
    converge(&mut sim);

    // T1 still has its own subnet locally...
    assert!(sim
        .fib(f.tors[0])
        .unwrap()
        .lookup(p("10.7.0.0/24").nth(1))
        .is_some());
    // ...but nobody else learned it.
    assert!(
        sim.fib(f.spines[0])
            .unwrap()
            .lookup(p("10.7.0.0/24").nth(1))
            .is_none(),
        "the buggy firmware must not announce its networks"
    );
    // Other ToRs' subnets are unaffected.
    assert!(sim
        .fib(f.spines[0])
        .unwrap()
        .lookup(p("10.7.2.0/24").nth(1))
        .is_some());
}

#[test]
fn tool_bug_shuts_down_whole_router_instead_of_one_session() {
    // §2: "an unhandled exception caused a tool to shut down a router
    // instead of a single BGP session."
    let f = fig7();
    let mut sim = build_full_bgp_sim(&f.topo, work());
    let t0 = converge(&mut sim);

    // Intended: shut one session on L1. Buggy tool: DeviceShutdown.
    sim.mgmt(
        f.leaves[0],
        MgmtCommand::DeviceShutdown,
        t0 + SimDuration::from_secs(1),
    );
    // The orchestrator notices the device going dark and signals link
    // down to its neighbors (as the vnet layer does when a container
    // dies).
    let downs: Vec<_> = f
        .topo
        .neighbors(f.leaves[0])
        .map(|(lid, _, _)| ControlPlaneSim::link_endpoints(&f.topo, lid))
        .collect();
    for ep in downs {
        sim.link_down(ep, t0 + SimDuration::from_secs(2));
    }
    sim.run_until_quiet(SimDuration::from_secs(5), t0 + SimDuration::from_mins(60))
        .unwrap();

    assert!(sim.os(f.leaves[0]).unwrap().is_down());
    // The blast radius is visible: everything that was ECMP'd through L1
    // narrowed to one path — a clear emulation signal the tool is buggy.
    let fib = sim.fib(f.spines[0]).unwrap();
    let (_, entry) = fib.lookup(p("10.7.0.0/24").nth(1)).unwrap();
    assert_eq!(entry.next_hops.len(), 1);
}

#[test]
fn case2_dev_build_crashes_after_session_flaps() {
    let f = fig7();
    let mut sim = build_bgp_sim(&f.topo, work(), |id, dev| {
        let mut prof = VendorProfile::for_vendor(dev.vendor);
        if id == f.tors[0] {
            prof = VendorProfile::ctnr_b_dev(); // crash_after_flaps = 3
        }
        Some(prof)
    });
    let t0 = converge(&mut sim);

    // Flap T1's uplink three times.
    let (lid, _, _) = f.topo.neighbors(f.tors[0]).next().unwrap();
    let ep = ControlPlaneSim::link_endpoints(&f.topo, lid);
    let mut t = t0;
    for _ in 0..3 {
        t += SimDuration::from_secs(30);
        sim.link_down(ep, t);
        t += SimDuration::from_secs(30);
        sim.link_up(ep, t);
        sim.run_until_quiet(SimDuration::from_secs(5), t + SimDuration::from_mins(30))
            .unwrap();
    }
    assert!(
        sim.os(f.tors[0]).unwrap().is_down(),
        "dev build must crash after 3 flaps"
    );
    assert!(!sim.engine.world.crashes.is_empty());
    // The released build survives the same treatment (control).
    let mut sim2 = build_full_bgp_sim(&f.topo, work());
    let t0 = converge(&mut sim2);
    let mut t = t0;
    for _ in 0..3 {
        t += SimDuration::from_secs(30);
        sim2.link_down(ep, t);
        t += SimDuration::from_secs(30);
        sim2.link_up(ep, t);
        sim2.run_until_quiet(SimDuration::from_secs(5), t + SimDuration::from_mins(30))
            .unwrap();
    }
    assert!(!sim2.os(f.tors[0]).unwrap().is_down());
}

#[test]
fn case2_dev_build_skips_default_route_in_asic() {
    // A ToR learns 0.0.0.0/0 from its leaf; the dev build's ASIC sync
    // layer skips default-route updates.
    let f = fig7();
    let mut sim = build_bgp_sim(&f.topo, work(), |id, _| {
        if id == f.tors[0] {
            Some(VendorProfile::ctnr_b_dev())
        } else if id == f.tors[1] {
            Some(VendorProfile::ctnr_b()) // healthy control
        } else {
            Some(VendorProfile::ctnr_a())
        }
    });
    // L1 originates a default route (as a border would).
    let l1 = f.leaves[0];
    let mut cfg = generate_device(&f.topo, l1);
    cfg.bgp.as_mut().unwrap().networks.push(p("0.0.0.0/0"));
    sim.add_os(
        l1,
        Box::new(BgpRouterOs::new(
            VendorProfile::ctnr_a(),
            cfg,
            f.topo.device(l1).loopback,
        )),
    );
    converge(&mut sim);

    // Healthy ToR: default present in (ASIC) FIB.
    assert!(
        sim.fib(f.tors[1])
            .unwrap()
            .lookup(p("99.99.99.99/32").nth(0))
            .is_some(),
        "healthy ToR forwards via default"
    );
    // Buggy ToR: RIB has it, ASIC FIB does not — traffic blackholes.
    assert!(sim
        .fib(f.tors[0])
        .unwrap()
        .lookup(p("99.99.99.99/32").nth(0))
        .is_none());
    let pkt = crystalnet_dataplane::Ipv4Packet {
        src: p("10.7.0.0/24").nth(5),
        dst: "99.99.99.99".parse().unwrap(),
        protocol: 6,
        ttl: 64,
        identification: 7,
        payload: Bytes::new(),
    };
    let (_, outcome) = sim.trace_packet(f.tors[0], &pkt);
    assert_eq!(outcome, ForwardDecision::DropNoRoute);
}

#[test]
fn determinism_same_seedless_run_same_fibs() {
    let run = || {
        let f = fig7();
        let mut sim = build_full_bgp_sim(&f.topo, work());
        converge(&mut sim);
        let mut out = Vec::new();
        for (id, _) in f.topo.devices() {
            let mut rows: Vec<String> = sim
                .fib(id)
                .unwrap()
                .iter()
                .map(|(p, e)| format!("{p}:{:?}", e.next_hops))
                .collect();
            rows.sort();
            out.push(rows);
        }
        out
    };
    assert_eq!(run(), run());
}
