//! Datacenter-scale convergence, speaker sessions, and OSPF behaviour.

use crystalnet_net::fixtures::fig7;
use crystalnet_net::{ClosParams, Ipv4Prefix, Role, Topology};
use crystalnet_routing::harness::{build_bgp_sim, build_full_bgp_sim};
use crystalnet_routing::{
    ControlPlaneSim, OspfRouterOs, PathAttrs, SpeakerOs, SpeakerScript, UniformWorkModel,
};
use crystalnet_sim::{SimDuration, SimTime};
use std::sync::Arc;

fn work() -> Box<UniformWorkModel> {
    Box::new(UniformWorkModel {
        boot: SimDuration::from_secs(1),
        ..UniformWorkModel::default()
    })
}

fn p(s: &str) -> Ipv4Prefix {
    s.parse().unwrap()
}

#[test]
fn s_dc_converges_with_full_reachability() {
    let dc = ClosParams::s_dc().build();
    let mut sim = build_full_bgp_sim(&dc.topo, work());
    sim.boot_all(SimTime::ZERO);
    let t = sim
        .run_until_quiet(
            SimDuration::from_secs(10),
            SimTime::ZERO + SimDuration::from_mins(120),
        )
        .expect("S-DC converges");
    assert!(t > SimTime::ZERO);

    // Every ToR reaches every other ToR's server subnet.
    let tor_a = dc.pods[0].tors[0];
    let tor_b_subnet = dc
        .topo
        .device(dc.pods[5].tors[15])
        .originated
        .iter()
        .copied()
        .find(|pfx| pfx.len() == 24)
        .unwrap();
    let fib = sim.fib(tor_a).unwrap();
    assert!(fib.lookup(tor_b_subnet.nth(1)).is_some());
    // ToRs see the default route from the external peers via borders.
    assert!(fib.lookup(p("203.0.113.7/32").nth(0)).is_some());
    // ToR ECMPs across all four pod leaves.
    let (_, entry) = fib.lookup(tor_b_subnet.nth(1)).unwrap();
    assert_eq!(entry.next_hops.len(), 4);

    // Route totals land in the Table 3 band for S-DC: O(50K).
    let total: usize = dc
        .topo
        .devices()
        .filter(|(_, d)| d.role != Role::External)
        .map(|(id, _)| sim.fib(id).unwrap().route_entry_count())
        .sum();
    assert!(
        (20_000..200_000).contains(&total),
        "S-DC total route entries {total} outside O(50K) band"
    );
}

#[test]
fn speaker_feeds_boundary_device_and_stays_static() {
    // A single border + speaker: the speaker announces the default route
    // and a production-recorded prefix; the border installs them.
    let f = fig7();
    // Emulate the whole fig7 fabric, but replace nothing — attach a
    // speaker *outside* via S1's unused interface? fig7 has no spare
    // ifaces, so build a 2-node topology instead.
    let mut topo = Topology::new();
    let mut p2p = crystalnet_net::P2pAllocator::new(p("100.101.0.0/24"));
    let border = topo
        .add_device(crystalnet_net::Device {
            name: "border0".into(),
            role: Role::Border,
            vendor: crystalnet_net::Vendor::CtnrA,
            asn: crystalnet_net::Asn(65000),
            loopback: "172.31.0.1".parse().unwrap(),
            mgmt_addr: "192.168.31.1".parse().unwrap(),
            originated: vec![p("10.200.0.0/16")],
            ifaces: vec![],
            pod: None,
        })
        .unwrap();
    let speaker_dev = topo
        .add_device(crystalnet_net::Device {
            name: "speaker0".into(),
            role: Role::External,
            vendor: crystalnet_net::Vendor::VmB,
            asn: crystalnet_net::Asn(64600),
            loopback: "172.31.0.2".parse().unwrap(),
            mgmt_addr: "192.168.31.2".parse().unwrap(),
            originated: vec![],
            ifaces: vec![],
            pod: None,
        })
        .unwrap();
    topo.connect_p2p(border, speaker_dev, &mut p2p).unwrap();
    let _ = f;

    let mut sim = build_bgp_sim(&topo, work(), |_, dev| {
        (dev.role != Role::External)
            .then(|| crystalnet_routing::VendorProfile::for_vendor(dev.vendor))
    });
    let mut speaker = SpeakerOs::new(
        "speaker0".into(),
        crystalnet_net::Asn(64600),
        "172.31.0.2".parse().unwrap(),
    );
    speaker.set_script(
        0,
        SpeakerScript {
            routes: vec![
                (
                    p("0.0.0.0/0"),
                    Arc::new(PathAttrs {
                        as_path: vec![crystalnet_net::Asn(64600)],
                        ..PathAttrs::originated("172.31.0.2".parse().unwrap())
                    }),
                ),
                (
                    p("40.0.1.0/24"),
                    Arc::new(PathAttrs {
                        as_path: vec![crystalnet_net::Asn(64600), crystalnet_net::Asn(64601)],
                        ..PathAttrs::originated("172.31.0.2".parse().unwrap())
                    }),
                ),
            ],
        },
    );
    sim.add_os(speaker_dev, Box::new(speaker));
    sim.boot_all(SimTime::ZERO);
    sim.run_until_quiet(
        SimDuration::from_secs(5),
        SimTime::ZERO + SimDuration::from_mins(30),
    )
    .unwrap();

    let fib = sim.fib(border).unwrap();
    assert!(fib.get(p("0.0.0.0/0")).is_some(), "default installed");
    assert!(
        fib.get(p("40.0.1.0/24")).is_some(),
        "recorded route installed"
    );

    // The speaker kept its identity and never originated anything of
    // its own (static by construction).
    let os = sim.os(speaker_dev).unwrap();
    assert_eq!(os.hostname(), "speaker0");
    assert_eq!(os.rib_size(), 0);
}

#[test]
fn ospf_triangle_converges_via_spf() {
    // Three routers in a triangle, each originating one prefix.
    let mut topo = Topology::new();
    let mut p2p = crystalnet_net::P2pAllocator::new(p("100.102.0.0/24"));
    let mk = |topo: &mut Topology, n: u32| {
        topo.add_device(crystalnet_net::Device {
            name: format!("o{n}"),
            role: Role::Spine,
            vendor: crystalnet_net::Vendor::CtnrA,
            asn: crystalnet_net::Asn(0),
            loopback: crystalnet_net::Ipv4Addr::new(172, 32, 0, n as u8),
            mgmt_addr: crystalnet_net::Ipv4Addr::new(192, 168, 32, n as u8),
            originated: vec![],
            ifaces: vec![],
            pod: None,
        })
        .unwrap()
    };
    let a = mk(&mut topo, 1);
    let b = mk(&mut topo, 2);
    let c = mk(&mut topo, 3);
    topo.connect_p2p(a, b, &mut p2p).unwrap();
    topo.connect_p2p(b, c, &mut p2p).unwrap();
    topo.connect_p2p(a, c, &mut p2p).unwrap();

    let mut sim = ControlPlaneSim::new(&topo, work());
    for (i, &dev) in [a, b, c].iter().enumerate() {
        let d = topo.device(dev);
        let ifaces: Vec<u32> = (0..d.ifaces.len() as u32).collect();
        let os = OspfRouterOs::new(
            d.name.clone(),
            d.loopback,
            1,
            ifaces,
            vec![p(&format!("10.50.{i}.0/24"))],
        );
        sim.add_os(dev, Box::new(os));
    }
    sim.boot_all(SimTime::ZERO);
    sim.run_until_quiet(
        SimDuration::from_secs(10),
        SimTime::ZERO + SimDuration::from_mins(30),
    )
    .unwrap();

    // Everyone has everyone's prefix; direct neighbors are one hop.
    for &dev in &[a, b, c] {
        let fib = sim.fib(dev).unwrap();
        for i in 0..3 {
            assert!(
                fib.lookup(p(&format!("10.50.{i}.0/24")).nth(1)).is_some(),
                "{} missing 10.50.{i}.0/24",
                topo.device(dev).name
            );
        }
    }
}

#[test]
fn ospf_link_failure_reroutes_around() {
    let mut topo = Topology::new();
    let mut p2p = crystalnet_net::P2pAllocator::new(p("100.103.0.0/24"));
    let mut ids = Vec::new();
    for n in 1..=3u32 {
        ids.push(
            topo.add_device(crystalnet_net::Device {
                name: format!("o{n}"),
                role: Role::Spine,
                vendor: crystalnet_net::Vendor::CtnrA,
                asn: crystalnet_net::Asn(0),
                loopback: crystalnet_net::Ipv4Addr::new(172, 33, 0, n as u8),
                mgmt_addr: crystalnet_net::Ipv4Addr::new(192, 168, 33, n as u8),
                originated: vec![],
                ifaces: vec![],
                pod: None,
            })
            .unwrap(),
        );
    }
    let (a, b, c) = (ids[0], ids[1], ids[2]);
    let ab = topo.connect_p2p(a, b, &mut p2p).unwrap();
    topo.connect_p2p(b, c, &mut p2p).unwrap();
    topo.connect_p2p(a, c, &mut p2p).unwrap();

    let mut sim = ControlPlaneSim::new(&topo, work());
    for (i, &dev) in ids.iter().enumerate() {
        let d = topo.device(dev);
        let ifaces: Vec<u32> = (0..d.ifaces.len() as u32).collect();
        sim.add_os(
            dev,
            Box::new(OspfRouterOs::new(
                d.name.clone(),
                d.loopback,
                1,
                ifaces,
                vec![p(&format!("10.51.{i}.0/24"))],
            )),
        );
    }
    sim.boot_all(SimTime::ZERO);
    let t0 = sim
        .run_until_quiet(
            SimDuration::from_secs(10),
            SimTime::ZERO + SimDuration::from_mins(30),
        )
        .unwrap();

    // A reaches B's prefix directly.
    let direct_hop = sim
        .fib(a)
        .unwrap()
        .lookup(p("10.51.1.0/24").nth(1))
        .unwrap()
        .1
        .next_hops[0]
        .via;
    assert_eq!(direct_hop, topo.device(b).loopback);

    // Cut A-B: A must reroute via C.
    let ep = ControlPlaneSim::link_endpoints(&topo, ab);
    sim.link_down(ep, t0 + SimDuration::from_secs(5));
    sim.run_until_quiet(SimDuration::from_secs(10), t0 + SimDuration::from_mins(30))
        .unwrap();
    let hop = sim
        .fib(a)
        .unwrap()
        .lookup(p("10.51.1.0/24").nth(1))
        .unwrap()
        .1
        .next_hops[0]
        .via;
    assert_eq!(hop, topo.device(c).loopback, "reroute around the cut");
}
