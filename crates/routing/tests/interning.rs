//! Property tests for the `PathAttrs` hash-consing interner.
//!
//! The contract the RIB diff fast path and the parallel executor rely on:
//! interned handles are pointer-equal **iff** they are structurally equal,
//! and interning is idempotent.

use crystalnet_net::{Asn, Ipv4Addr};
use crystalnet_routing::attrs::{Origin, PathAttrs};
use proptest::prelude::*;
use std::sync::Arc;

/// Small value domains so random pairs collide often — the property is
/// only interesting when both the equal and unequal cases are exercised.
fn attrs_strategy() -> impl Strategy<Value = PathAttrs> {
    (
        prop::collection::vec(64500u32..64504, 0..3),
        0u32..4,
        0u8..3,
        0u32..2,
        (
            100u32..102,
            prop::collection::vec(0u32..2, 0..2),
            any::<bool>(),
        ),
    )
        .prop_map(
            |(path, nh, origin, med, (local_pref, communities, aggregate))| PathAttrs {
                as_path: path.into_iter().map(Asn).collect(),
                next_hop: Ipv4Addr(nh),
                origin: match origin {
                    0 => Origin::Igp,
                    1 => Origin::Egp,
                    _ => Origin::Incomplete,
                },
                med,
                local_pref,
                communities,
                aggregate,
            },
        )
}

proptest! {
    #[test]
    fn interned_ptr_eq_iff_structurally_equal(
        a in attrs_strategy(),
        b in attrs_strategy(),
    ) {
        let ia = a.clone().intern();
        let ib = b.clone().intern();
        prop_assert_eq!(Arc::ptr_eq(&ia, &ib), a == b);
        prop_assert_eq!(*ia == *ib, a == b);
    }

    #[test]
    fn interning_is_idempotent(a in attrs_strategy()) {
        let first = a.clone().intern();
        let again = (*first).clone().intern();
        prop_assert!(Arc::ptr_eq(&first, &again));
        prop_assert_eq!(*first, a);
    }

    #[test]
    fn derived_attrs_intern_consistently(a in attrs_strategy()) {
        // announced_by is deterministic, so deriving twice and interning
        // must converge on one canonical Arc.
        let x = a.announced_by(Asn(64999), Ipv4Addr(9)).intern();
        let y = a.announced_by(Asn(64999), Ipv4Addr(9)).intern();
        prop_assert!(Arc::ptr_eq(&x, &y));
        prop_assert_eq!(x.as_path.first(), Some(&Asn(64999)));
    }
}
