//! Differential determinism: the parallel conservative executor must be
//! bit-identical to the serial engine.
//!
//! Each scenario builds two identical sims, runs one with
//! `run_until_quiet` and the other with `run_until_quiet_parallel`, and
//! compares *everything observable*: the route-ready instant, every FIB,
//! RIB sizes, route-operation counters, crash and management logs, the
//! final clock, and the surviving event-queue depth. A serial
//! continuation after the parallel phase then verifies the merged world
//! is a fully coherent serial world (key counters, queued timers, link
//! state).

use crystalnet_net::fixtures::{fig1, fig7};
use crystalnet_net::{partition, ClosParams, DeviceId, LinkId, Topology};
use crystalnet_routing::harness::build_full_bgp_sim;
use crystalnet_routing::{ControlPlaneSim, MgmtCommand, UniformWorkModel, WorkModel};
use crystalnet_sim::{SimDuration, SimTime};

fn work() -> Box<UniformWorkModel> {
    Box::new(UniformWorkModel {
        boot: SimDuration::from_secs(1),
        ..UniformWorkModel::default()
    })
}

fn shard_models(k: usize) -> Vec<Box<dyn WorkModel>> {
    (0..k).map(|_| work() as Box<dyn WorkModel>).collect()
}

const QUIET: SimDuration = SimDuration::from_secs(5);

fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(120)
}

/// Asserts every observable of the two sims is identical.
fn assert_identical(serial: &ControlPlaneSim, par: &ControlPlaneSim, topo: &Topology, tag: &str) {
    assert_eq!(serial.engine.now(), par.engine.now(), "{tag}: clock");
    assert_eq!(
        serial.engine.events_pending(),
        par.engine.events_pending(),
        "{tag}: surviving queue depth"
    );
    let (ws, wp) = (&serial.engine.world, &par.engine.world);
    assert_eq!(
        ws.last_route_activity, wp.last_route_activity,
        "{tag}: last route activity"
    );
    assert_eq!(ws.route_ops_total, wp.route_ops_total, "{tag}: route ops");
    assert_eq!(
        ws.route_ops_by_dev, wp.route_ops_by_dev,
        "{tag}: per-device route ops"
    );
    let sort_crashes = |v: &[(SimTime, DeviceId)]| {
        let mut v = v.to_vec();
        v.sort_by_key(|&(t, d)| (t, d.0));
        v
    };
    assert_eq!(
        sort_crashes(&ws.crashes),
        sort_crashes(&wp.crashes),
        "{tag}: crash log"
    );
    let sort_resp = |v: &[(DeviceId, crystalnet_routing::MgmtResponse)]| {
        let mut v = v.to_vec();
        v.sort_by_key(|r| (r.0).0);
        v
    };
    assert_eq!(
        sort_resp(&ws.mgmt_responses),
        sort_resp(&wp.mgmt_responses),
        "{tag}: mgmt responses"
    );
    for (id, dev) in topo.devices() {
        assert_eq!(
            serial.is_up(id),
            par.is_up(id),
            "{tag}: up state of {}",
            dev.name
        );
        match (serial.os(id), par.os(id)) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.rib_size(), b.rib_size(), "{tag}: RIB of {}", dev.name);
                assert_eq!(a.is_down(), b.is_down(), "{tag}: down flag of {}", dev.name);
                assert_eq!(a.fib(), b.fib(), "{tag}: FIB of {}", dev.name);
            }
            _ => panic!("{tag}: OS presence differs on {}", dev.name),
        }
    }
}

/// Runs `scenario` against both engines with `shards` shards and asserts
/// convergence instants and world state match bit-for-bit.
fn differential(
    topo: &Topology,
    shards: usize,
    tag: &str,
    scenario: impl Fn(&mut ControlPlaneSim),
) -> (ControlPlaneSim, ControlPlaneSim) {
    let mut serial = build_full_bgp_sim(topo, work());
    scenario(&mut serial);
    let t_serial = serial.run_until_quiet(QUIET, deadline());

    let mut par = build_full_bgp_sim(topo, work());
    scenario(&mut par);
    let p = partition(topo, shards);
    let (t_par, models) = par.run_until_quiet_parallel(QUIET, deadline(), &p, shard_models(shards));
    assert_eq!(models.len(), shards, "{tag}: shard models returned");

    assert_eq!(t_serial, t_par, "{tag}: route-ready instant");
    assert!(t_serial.is_some(), "{tag}: scenario must converge");
    assert_identical(&serial, &par, topo, tag);
    (serial, par)
}

#[test]
fn fig1_boot_convergence_matches_serial() {
    let f = fig1();
    for shards in [2, 3] {
        differential(&f.topo, shards, &format!("fig1/{shards}"), |sim| {
            sim.boot_all(SimTime::ZERO);
        });
    }
}

#[test]
fn fig7_flap_and_mgmt_matches_serial() {
    let f = fig7();
    // A spine–leaf link flaps while the network is still converging, and
    // a management probe lands between the flap edges.
    let lid = LinkId(0);
    let ep = ControlPlaneSim::link_endpoints(&f.topo, lid);
    let probe = f.tors[0];
    let (serial, par) = differential(&f.topo, 4, "fig7/4", move |sim| {
        sim.boot_all(SimTime::ZERO);
        sim.link_down(ep, SimTime::ZERO + SimDuration::from_millis(1500));
        sim.link_up(ep, SimTime::ZERO + SimDuration::from_secs(3));
        sim.mgmt(
            probe,
            MgmtCommand::ShowBgpSummary,
            SimTime::ZERO + SimDuration::from_secs(2),
        );
    });
    // Both observed the same management answer.
    assert!(!serial.engine.world.mgmt_responses.is_empty());
    assert!(!par.engine.world.mgmt_responses.is_empty());
}

#[test]
fn fig7_disconnect_long_after_convergence_matches_serial() {
    // The flap lands well past the quiet horizon, exercising the
    // coordinator's lock-step mode.
    let f = fig7();
    let lid = LinkId(2);
    let ep = ControlPlaneSim::link_endpoints(&f.topo, lid);
    differential(&f.topo, 3, "fig7-late/3", move |sim| {
        sim.boot_all(SimTime::ZERO);
        sim.link_down(ep, SimTime::ZERO + SimDuration::from_mins(5));
        sim.link_up(ep, SimTime::ZERO + SimDuration::from_mins(6));
    });
}

#[test]
fn s_dc_clos_matches_serial_and_continues_serially() {
    let dc = ClosParams::s_dc().build();
    let lid = LinkId(0);
    let ep = ControlPlaneSim::link_endpoints(&dc.topo, lid);
    let (mut serial, mut par) = differential(&dc.topo, 4, "s-dc/4", |sim| {
        sim.boot_all(SimTime::ZERO);
    });

    // Continuation: after the parallel phase merged back, the world must
    // behave as a plain serial world — flap a link and settle serially.
    for sim in [&mut serial, &mut par] {
        let t = sim.engine.now();
        sim.link_down(ep, t + SimDuration::from_secs(1));
        sim.link_up(ep, t + SimDuration::from_secs(20));
        sim.run_until_quiet(QUIET, deadline())
            .expect("flap settles serially");
    }
    assert_identical(&serial, &par, &dc.topo, "s-dc/continuation");
}
