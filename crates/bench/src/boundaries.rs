//! Figure 7: the unsafe and safe static boundaries, checked three ways —
//! by the exact Lemma 5.1 oracle, by the efficient propositions, and by
//! differential emulation against the full network.

use crystalnet_boundary::{
    check_lemma_5_1,
    check_prop_5_2,
    check_prop_5_3,
    differential_validate,
    emulated_set,
    Classification, //
};
use crystalnet_dataplane::CompareOptions;
use crystalnet_net::fixtures::{fig7, Fig7};
use crystalnet_net::DeviceId;
use crystalnet_routing::{ControlPlaneSim, MgmtCommand};
use crystalnet_sim::SimTime;
use std::collections::BTreeSet;

/// One Figure 7 sub-case result.
pub struct Fig7Case {
    /// Sub-figure label.
    pub label: String,
    /// Lemma 5.1 verdict.
    pub lemma_safe: bool,
    /// Prop 5.2 verdict.
    pub prop52: bool,
    /// Prop 5.3 verdict.
    pub prop53: bool,
    /// Differential emulation consistency under the §5.1 change.
    pub differential_consistent: bool,
    /// FIB differences observed (0 when consistent).
    pub differences: usize,
}

/// The change each sub-case validates (matching the paper's narratives).
enum Change {
    /// §5.1: T4 gets a new prefix 10.1.0.0/16 (cases 7a/7b, where T4 is
    /// emulated).
    AddPrefixOnT4,
    /// §5.2: the S1-L1 link fails (case 7c, where the ToRs are speakers
    /// and cannot be reconfigured — the whole point of "safe to emulate
    /// L1-4 but not T1-4").
    FailS1L1,
}

fn check(
    f: &Fig7,
    label: &str,
    emulated: BTreeSet<DeviceId>,
    must_have: &[DeviceId],
    change: Change,
) -> Fig7Case {
    let class = Classification::new(&f.topo, &emulated);
    let t4 = f.tors[3];
    let topo = f.topo.clone();
    let s1 = f.spines[0];
    let l1 = f.leaves[0];
    type ApplyFn = Box<dyn Fn(&mut ControlPlaneSim, SimTime)>;
    let apply: ApplyFn = match change {
        Change::AddPrefixOnT4 => Box::new(move |sim, at| {
            sim.mgmt(
                t4,
                MgmtCommand::AddNetwork("10.1.0.0/16".parse().unwrap()),
                at,
            );
        }),
        Change::FailS1L1 => Box::new(move |sim, at| {
            let (lid, _, _) = topo
                .neighbors(s1)
                .find(|(_, _, remote)| remote.device == l1)
                .expect("S1-L1 link exists");
            let ep = ControlPlaneSim::link_endpoints(&topo, lid);
            sim.link_down(ep, at);
        }),
    };
    let report = differential_validate(
        &f.topo,
        &emulated,
        must_have,
        &CompareOptions::strict(),
        &*apply,
    );
    Fig7Case {
        label: label.into(),
        lemma_safe: check_lemma_5_1(&f.topo, &emulated).is_ok(),
        prop52: check_prop_5_2(&f.topo, &class).is_ok(),
        prop53: check_prop_5_3(&f.topo, &class).is_ok(),
        differential_consistent: report.consistent(),
        differences: report.difference_count(),
    }
}

/// Runs the three Figure 7 boundaries.
#[must_use]
pub fn run_fig7() -> Vec<Fig7Case> {
    let f = fig7();
    let a = emulated_set(
        &f.leaves[..4]
            .iter()
            .chain(&f.tors[..4])
            .copied()
            .collect::<Vec<_>>(),
    );
    let b = emulated_set(
        &f.spines
            .iter()
            .chain(&f.leaves[..4])
            .chain(&f.tors[..4])
            .copied()
            .collect::<Vec<_>>(),
    );
    let c = emulated_set(
        &f.spines
            .iter()
            .chain(&f.leaves[..4])
            .copied()
            .collect::<Vec<_>>(),
    );
    vec![
        check(
            &f,
            "7a: T1-4,L1-4 (speakers S1-2) — unsafe",
            a,
            &[f.leaves[0], f.tors[0]],
            Change::AddPrefixOnT4,
        ),
        check(
            &f,
            "7b: +S1-2 emulated — safe",
            b,
            &[f.leaves[0], f.tors[0], f.tors[3]],
            Change::AddPrefixOnT4,
        ),
        check(
            &f,
            "7c: S1-2,L1-4 (speakers T1-4,L5-6) — safe for leaves",
            c,
            &f.leaves[..4],
            Change::FailS1L1,
        ),
    ]
}

/// Prints the Figure 7 verdicts.
pub fn print_fig7(cases: &[Fig7Case]) {
    println!("\n=== Figure 7: static boundary safety ===");
    println!(
        "{:<52} {:>9} {:>8} {:>8} {:>13} {:>6}",
        "Boundary", "Lemma 5.1", "Prop 5.2", "Prop 5.3", "differential", "diffs"
    );
    let mark = |b: bool| if b { "safe" } else { "UNSAFE" };
    for c in cases {
        println!(
            "{:<52} {:>9} {:>8} {:>8} {:>13} {:>6}",
            c.label,
            mark(c.lemma_safe),
            mark(c.prop52),
            mark(c.prop53),
            if c.differential_consistent {
                "consistent"
            } else {
                "DIVERGED"
            },
            c.differences,
        );
    }
    println!("(Props 5.2/5.3 are sufficient conditions — conservative 'UNSAFE' on a Lemma-safe boundary is expected for 7b/7c.)");
}
