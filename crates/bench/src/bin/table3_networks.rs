//! Regenerates Table 3 (evaluation networks and route totals).

fn main() {
    let rows = crystalnet_bench::tables::table3();
    crystalnet_bench::tables::print_table3(&rows);
}
