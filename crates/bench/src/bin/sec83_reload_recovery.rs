//! Regenerates the §8.3 reload and VM-recovery results, plus the
//! DESIGN.md ablations (bridge implementation, vendor grouping).

fn main() {
    let rows = crystalnet_bench::ops::reload_comparison(3);
    crystalnet_bench::ops::print_reload(&rows);
    let rec = crystalnet_bench::ops::recovery_by_density(4);
    crystalnet_bench::ops::print_recovery(&rec);
    let cfgs = crystalnet_bench::config::figure8_configs();
    let ab = crystalnet_bench::ops::bridge_ablation(&cfgs[0], 5);
    crystalnet_bench::ops::print_ablation("Linux bridge vs OVS (S-DC/5)", &ab);
    let gr = crystalnet_bench::ops::grouping_ablation(6);
    crystalnet_bench::ops::print_ablation("vendor grouping on/off (S-DC)", &gr);
}
