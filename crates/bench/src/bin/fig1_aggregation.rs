//! Regenerates the Figure 1 traffic-imbalance measurement.

fn main() {
    let r = crystalnet_bench::incidents::run_fig1(7, 200);
    crystalnet_bench::incidents::print_fig1(&r);
}
