//! Regenerates Figure 9 (p95 VM CPU utilization during Mockup).

fn main() {
    let configs = crystalnet_bench::config::figure8_configs();
    let series: Vec<_> = configs
        .iter()
        .map(|cfg| {
            eprintln!("running {}...", cfg.label);
            crystalnet_bench::fig9::run_config(cfg, 1)
        })
        .collect();
    crystalnet_bench::fig9::print_series(&series);
}
