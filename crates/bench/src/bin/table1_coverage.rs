//! Regenerates the Table 1 coverage matrix by executing the incident
//! scenario suite under the emulator.

fn main() {
    crystalnet_bench::incidents::print_table1(42);
}
