//! Regenerates Figure 8 (start/stop latencies across scales and fleets).

fn main() {
    let configs = crystalnet_bench::config::figure8_configs();
    let rows: Vec<_> = configs
        .iter()
        .map(|cfg| {
            eprintln!(
                "running {} ({} reps)...",
                cfg.label,
                crystalnet_bench::config::reps()
            );
            crystalnet_bench::fig8::run_config(cfg)
        })
        .collect();
    crystalnet_bench::fig8::print_table(&rows);
    println!("\nclaim checks:");
    for (claim, ok) in crystalnet_bench::fig8::verdicts(&rows) {
        println!("  [{}] {claim}", if ok { "ok" } else { "FAIL" });
    }
}
