//! Regenerates Table 4 and the §8.4 cost-reduction result.

fn main() {
    let rows = crystalnet_bench::tables::table4();
    crystalnet_bench::tables::print_table4(&rows);
}
