//! Regenerates the Figure 7 boundary-safety comparison (oracle,
//! propositions, differential emulation).

fn main() {
    let cases = crystalnet_bench::boundaries::run_fig7();
    crystalnet_bench::boundaries::print_fig7(&cases);
}
