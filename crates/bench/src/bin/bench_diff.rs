//! `bench_diff`: regression diffing between two sets of `BENCH_*.json`
//! artifacts (a checked-in *baseline* directory and a freshly measured
//! *current* one).
//!
//! ```text
//! bench_diff <baseline-dir> <current-dir> [--threshold PCT] [--out PATH]
//! ```
//!
//! Row identity is structural: the bench name plus every string field
//! of the row plus the discrete shape fields (`workers`, `devices`,
//! `vms`) — so reordering rows or adding new ones never misattributes
//! a timing. Metrics are every numeric row field ending in `_seconds`.
//! A metric regresses when `current > baseline × (1 + threshold/100)`
//! (default 20%).
//!
//! Tolerance comes from the shared `bench_meta` block and per-row
//! flags: rows marked `degraded` on either side (oversubscribed run),
//! files whose two `bench_meta.hardware_threads` differ (different
//! machines), or mismatched `schema_version`s downgrade regressions to
//! warnings — those wall clocks are not comparable, and failing CI on
//! them would train people to ignore the gate. A baseline row missing
//! from current is always a hard failure: silently dropping coverage
//! must not pass.
//!
//! Exit status: 0 when no hard regressions, 1 when any, 2 on usage or
//! I/O errors. `--out` additionally writes the report to a file (the
//! CI artifact).

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

/// The artifact set a full bench run produces at the workspace root.
const BENCH_FILES: [&str; 5] = [
    "BENCH_convergence.json",
    "BENCH_recovery.json",
    "BENCH_incremental.json",
    "BENCH_fork.json",
    "BENCH_health.json",
];

/// Discrete per-row shape fields that are identity, not measurement.
const IDENTITY_NUMERIC: [&str; 3] = ["workers", "devices", "vms"];

fn as_num(v: &Value) -> Option<f64> {
    match v {
        Value::Uint(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// The stable identity of one result row: bench name + every string
/// field + the discrete shape fields, in the row's own key order.
fn row_key(bench: &str, row: &Value) -> String {
    let mut key = bench.to_string();
    if let Value::Object(entries) = row {
        for (k, v) in entries {
            match v {
                Value::Str(s) => {
                    let _ = write!(key, " {k}={s}");
                }
                _ if IDENTITY_NUMERIC.contains(&k.as_str()) => {
                    if let Some(n) = as_num(v) {
                        let _ = write!(key, " {k}={n}");
                    }
                }
                _ => {}
            }
        }
    }
    key
}

fn is_degraded(row: &Value) -> bool {
    row.get("degraded") == Some(&Value::Bool(true))
}

/// Indexes a report's `results` rows by [`row_key`]. Duplicate keys
/// keep the first row (and the caller's counts still cover the rest).
fn rows_by_key<'a>(bench: &str, report: &'a Value) -> BTreeMap<String, &'a Value> {
    let mut map = BTreeMap::new();
    if let Some(rows) = report.get("results").and_then(Value::as_array) {
        for row in rows {
            map.entry(row_key(bench, row)).or_insert(row);
        }
    }
    map
}

/// Accumulated outcome of one diff run.
#[derive(Default)]
struct Diff {
    /// Hard failures: real slowdowns and lost coverage.
    regressions: Vec<String>,
    /// Downgraded or advisory findings (degraded rows, meta mismatches).
    warnings: Vec<String>,
    /// Speedups beyond the threshold, reported for trend reading.
    improvements: Vec<String>,
    /// Metrics compared (a zero here means the diff saw no data).
    compared: usize,
}

/// Why a file's regressions are only advisory, if they are.
fn file_downgrade_reason(name: &str, base: &Value, cur: &Value, diff: &mut Diff) -> Option<String> {
    let (bm, cm) = (base.get("bench_meta"), cur.get("bench_meta"));
    let (Some(bm), Some(cm)) = (bm, cm) else {
        diff.warnings
            .push(format!("{name}: bench_meta missing on one side"));
        return None;
    };
    let field = |m: &Value, k: &str| m.get(k).and_then(serde_json::Value::as_u64);
    if field(bm, "schema_version") != field(cm, "schema_version") {
        return Some("schema_version mismatch".into());
    }
    if field(bm, "hardware_threads") != field(cm, "hardware_threads") {
        return Some("hardware_threads mismatch (different machines)".into());
    }
    if is_degraded(bm) || is_degraded(cm) {
        return Some("bench_meta.degraded run".into());
    }
    None
}

/// Diffs one baseline/current report pair into `diff`.
fn diff_reports(name: &str, base: &Value, cur: &Value, threshold_pct: f64, diff: &mut Diff) {
    let downgrade = file_downgrade_reason(name, base, cur, diff);
    if let Some(reason) = &downgrade {
        diff.warnings.push(format!(
            "{name}: {reason} — regressions in this file are advisory"
        ));
    }
    let base_rows = rows_by_key(name, base);
    let cur_rows = rows_by_key(name, cur);
    for key in cur_rows.keys() {
        if !base_rows.contains_key(key) {
            diff.warnings.push(format!("new row (no baseline): {key}"));
        }
    }
    for (key, brow) in &base_rows {
        let Some(crow) = cur_rows.get(key) else {
            // Lost coverage is never advisory: a deleted row would
            // otherwise hide exactly the regression it used to catch.
            diff.regressions
                .push(format!("row missing from current: {key}"));
            continue;
        };
        let advisory = downgrade.is_some() || is_degraded(brow) || is_degraded(crow);
        let Value::Object(entries) = *brow else {
            continue;
        };
        for (mkey, bval) in entries {
            if !mkey.ends_with("_seconds") {
                continue;
            }
            let (Some(b), Some(c)) = (as_num(bval), crow.get(mkey).and_then(as_num)) else {
                continue;
            };
            diff.compared += 1;
            let ratio = c / b.max(1e-12);
            let pct = (ratio - 1.0) * 100.0;
            if pct > threshold_pct {
                let msg = format!("{key} :: {mkey}: {b:.6}s -> {c:.6}s (+{pct:.1}%)");
                if advisory {
                    diff.warnings.push(format!("{msg} [degraded — advisory]"));
                } else {
                    diff.regressions.push(msg);
                }
            } else if pct < -threshold_pct {
                diff.improvements
                    .push(format!("{key} :: {mkey}: {b:.6}s -> {c:.6}s ({pct:.1}%)"));
            }
        }
    }
}

/// Renders the human/CI report.
fn render(diff: &Diff, threshold_pct: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench_diff: {} metric(s) compared, threshold {threshold_pct}%",
        diff.compared
    );
    for (title, items) in [
        ("REGRESSIONS", &diff.regressions),
        ("warnings", &diff.warnings),
        ("improvements", &diff.improvements),
    ] {
        let _ = writeln!(out, "{title}: {}", items.len());
        for item in items {
            let _ = writeln!(out, "  {item}");
        }
    }
    out
}

fn run(baseline: &Path, current: &Path, threshold_pct: f64) -> Result<Diff, String> {
    let mut diff = Diff::default();
    let mut seen_any = false;
    for name in BENCH_FILES {
        let (bpath, cpath) = (baseline.join(name), current.join(name));
        match (bpath.exists(), cpath.exists()) {
            (false, false) => continue,
            (true, false) => {
                diff.regressions
                    .push(format!("{name}: present in baseline, missing from current"));
                continue;
            }
            (false, true) => {
                diff.warnings
                    .push(format!("{name}: new artifact (no baseline)"));
                continue;
            }
            (true, true) => {}
        }
        let read = |p: &Path| -> Result<Value, String> {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", p.display()))
        };
        diff_reports(
            name,
            &read(&bpath)?,
            &read(&cpath)?,
            threshold_pct,
            &mut diff,
        );
        seen_any = true;
    }
    if !seen_any && diff.regressions.is_empty() {
        return Err(format!(
            "no {} artifacts found under either directory",
            "BENCH_*.json"
        ));
    }
    Ok(diff)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut threshold_pct = 20.0;
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threshold_pct = v,
                None => {
                    eprintln!("--threshold needs a numeric percentage");
                    return ExitCode::from(2);
                }
            },
            "--out" => out_path = it.next(),
            _ => positional.push(arg),
        }
    }
    let [baseline, current] = positional.as_slice() else {
        eprintln!("usage: bench_diff <baseline-dir> <current-dir> [--threshold PCT] [--out PATH]");
        return ExitCode::from(2);
    };
    let diff = match run(Path::new(baseline), Path::new(current), threshold_pct) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let report = render(&diff, threshold_pct);
    print!("{report}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("bench_diff: write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if diff.regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(median: f64, degraded_row: bool, meta_degraded: bool, hw: u64) -> Value {
        serde_json::from_str(&format!(
            "{{\"bench\": \"convergence_scaling\", \
              \"bench_meta\": {{\"schema_version\": 1, \"hardware_threads\": {hw}, \
              \"workers\": 8, \"degraded\": {meta_degraded}}}, \
              \"results\": [ \
                {{\"topology\": \"clos-64\", \"devices\": 64, \"workers\": 1, \
                  \"median_seconds\": {median:.6}, \"degraded\": {degraded_row}}}, \
                {{\"topology\": \"clos-64\", \"devices\": 64, \"workers\": 4, \
                  \"median_seconds\": 0.5, \"degraded\": false}} ]}}"
        ))
        .expect("fixture parses")
    }

    fn diff_of(base: &Value, cur: &Value, threshold: f64) -> Diff {
        let mut d = Diff::default();
        diff_reports("BENCH_convergence.json", base, cur, threshold, &mut d);
        d
    }

    #[test]
    fn identical_sets_have_zero_regressions() {
        let r = report(2.0, false, false, 8);
        let d = diff_of(&r, &r, 20.0);
        assert!(d.regressions.is_empty(), "{:?}", d.regressions);
        assert!(d.improvements.is_empty());
        assert_eq!(d.compared, 2);
    }

    #[test]
    fn injected_slowdown_is_a_regression() {
        let d = diff_of(
            &report(2.0, false, false, 8),
            &report(4.0, false, false, 8),
            20.0,
        );
        assert_eq!(d.regressions.len(), 1, "{:?}", d.regressions);
        assert!(d.regressions[0].contains("median_seconds"));
        assert!(d.regressions[0].contains("+100.0%"));
    }

    #[test]
    fn threshold_is_respected() {
        let base = report(2.0, false, false, 8);
        let cur = report(2.3, false, false, 8); // +15%
        assert!(diff_of(&base, &cur, 20.0).regressions.is_empty());
        assert_eq!(diff_of(&base, &cur, 10.0).regressions.len(), 1);
    }

    #[test]
    fn degraded_row_downgrades_to_warning() {
        let d = diff_of(
            &report(2.0, true, false, 8),
            &report(4.0, true, false, 8),
            20.0,
        );
        assert!(d.regressions.is_empty(), "{:?}", d.regressions);
        assert!(d.warnings.iter().any(|w| w.contains("advisory")));
    }

    #[test]
    fn hardware_mismatch_downgrades_whole_file() {
        let d = diff_of(
            &report(2.0, false, false, 8),
            &report(4.0, false, false, 2),
            20.0,
        );
        assert!(d.regressions.is_empty(), "{:?}", d.regressions);
        assert!(d.warnings.iter().any(|w| w.contains("hardware_threads")));
    }

    #[test]
    fn missing_row_is_a_hard_failure_even_when_degraded() {
        let base = report(2.0, false, true, 8);
        let mut cur = report(2.0, false, true, 8);
        if let Value::Object(entries) = &mut cur {
            for (k, v) in entries.iter_mut() {
                if k == "results" {
                    if let Value::Array(rows) = v {
                        rows.pop();
                    }
                }
            }
        }
        let d = diff_of(&base, &cur, 20.0);
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].contains("row missing"));
    }

    #[test]
    fn improvements_are_reported_not_failed() {
        let d = diff_of(
            &report(4.0, false, false, 8),
            &report(2.0, false, false, 8),
            20.0,
        );
        assert!(d.regressions.is_empty());
        assert_eq!(d.improvements.len(), 1);
    }

    #[test]
    fn row_identity_survives_reordering() {
        let base = report(2.0, false, false, 8);
        let mut cur = report(2.0, false, false, 8);
        if let Value::Object(entries) = &mut cur {
            for (k, v) in entries.iter_mut() {
                if k == "results" {
                    if let Value::Array(rows) = v {
                        rows.reverse();
                    }
                }
            }
        }
        let d = diff_of(&base, &cur, 20.0);
        assert!(d.regressions.is_empty(), "{:?}", d.regressions);
        assert_eq!(d.compared, 2);
    }
}
