//! Figure 8: network-ready / route-ready / mockup / clear latencies, at
//! the 10th/50th/90th percentile over repeated runs, across datacenter
//! scales and VM fleet sizes.

use crate::config::{reps, DcConfig};
use crystalnet::{mockup, prepare, BoundaryMode, Emulation, MockupOptions, SpeakerSource};
use crystalnet_sim::{LatencySummary, SimDuration};
use std::sync::Arc;

/// Latency samples of one configuration across repetitions.
pub struct Fig8Row {
    /// Configuration label (`M-DC/50`).
    pub label: String,
    /// Network-ready percentiles.
    pub network_ready: LatencySummary,
    /// Route-ready percentiles.
    pub route_ready: LatencySummary,
    /// Whole-Mockup percentiles.
    pub mockup: LatencySummary,
    /// Clear percentiles.
    pub clear: LatencySummary,
    /// Devices emulated.
    pub devices: usize,
    /// Route operations of the median run.
    pub route_ops: u64,
}

/// Runs one configuration once; returns the emulation for reuse.
#[must_use]
pub fn run_once(cfg: &DcConfig, seed: u64) -> Emulation {
    let dc = cfg.params.build();
    let prep = prepare(
        &dc.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &cfg.plan_options(),
    );
    mockup(
        Arc::new(prep),
        MockupOptions::builder()
            .seed(seed)
            .quiet(SimDuration::from_secs(45))
            .build(),
    )
}

/// Runs `reps()` seeds of one configuration and summarizes.
#[must_use]
pub fn run_config(cfg: &DcConfig) -> Fig8Row {
    let mut network = Vec::new();
    let mut route = Vec::new();
    let mut mockup_l = Vec::new();
    let mut clear_l = Vec::new();
    let mut devices = 0;
    let mut ops = Vec::new();
    for seed in 0..reps() {
        let mut emu = run_once(cfg, seed);
        network.push(emu.metrics.network_ready);
        route.push(emu.metrics.route_ready);
        mockup_l.push(emu.metrics.mockup);
        ops.push(emu.metrics.route_ops);
        devices = emu.prep.emulated.len();
        clear_l.push(emu.clear());
    }
    ops.sort_unstable();
    Fig8Row {
        label: cfg.label.clone(),
        network_ready: LatencySummary::from_samples(&network).expect("reps >= 1"),
        route_ready: LatencySummary::from_samples(&route).expect("reps >= 1"),
        mockup: LatencySummary::from_samples(&mockup_l).expect("reps >= 1"),
        clear: LatencySummary::from_samples(&clear_l).expect("reps >= 1"),
        devices,
        route_ops: ops[ops.len() / 2],
    }
}

/// Prints the Figure 8 table for the given configurations.
pub fn print_table(rows: &[Fig8Row]) {
    println!(
        "\n=== Figure 8: start/stop latencies (p10/p50/p90 over {} runs) ===",
        reps()
    );
    println!(
        "{:<12} {:>8} | {:>26} | {:>26} | {:>26} | {:>26}",
        "DC/#VMs", "devices", "network-ready", "route-ready", "mockup", "clear"
    );
    for r in rows {
        println!(
            "{:<12} {:>8} | {:>26} | {:>26} | {:>26} | {:>26}",
            r.label,
            r.devices,
            fmt3(&r.network_ready),
            fmt3(&r.route_ready),
            fmt3(&r.mockup),
            fmt3(&r.clear),
        );
    }
}

fn fmt3(s: &LatencySummary) -> String {
    format!("{} / {} / {}", s.p10, s.p50, s.p90)
}

/// Checks the paper's headline claims against the measured rows; returns
/// human-readable verdicts (for EXPERIMENTS.md).
#[must_use]
pub fn verdicts(rows: &[Fig8Row]) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for r in rows {
        out.push((
            format!("{}: median mockup < 32 min", r.label),
            r.mockup.p50 < SimDuration::from_mins(32),
        ));
        out.push((
            format!("{}: p90 mockup < 50 min", r.label),
            r.mockup.p90 < SimDuration::from_mins(50),
        ));
        out.push((
            format!("{}: network-ready < 2 min (<5% of mockup)", r.label),
            r.network_ready.p90 < SimDuration::from_mins(2),
        ));
        out.push((
            format!("{}: clear < 2 min", r.label),
            r.clear.p90 < SimDuration::from_mins(2),
        ));
    }
    // More VMs ⇒ faster, steadier mockup within each DC pair.
    for pair in rows.chunks(2) {
        if let [small, big] = pair {
            out.push((
                format!(
                    "{} → {}: more VMs do not slow mockup",
                    small.label, big.label
                ),
                big.mockup.p50 <= small.mockup.p50,
            ));
        }
    }
    out
}
