//! Table 3 (evaluation networks, including total route counts) and
//! Table 4 (safe-boundary emulation scales and the §8.4 cost reduction).

use crate::config::full_scale;
use crystalnet::{plan_vms, PlanOptions};
use crystalnet_boundary::{find_safe_dc_boundary, Classification};
use crystalnet_net::{ClosParams, ClosTopology, DeviceId, Role};
use crystalnet_routing::harness::build_full_bgp_sim;
use crystalnet_routing::UniformWorkModel;
use crystalnet_sim::{SimDuration, SimTime};

/// A Table 3 row.
pub struct Table3Row {
    /// Network name.
    pub name: String,
    /// Border count.
    pub borders: usize,
    /// Spine count.
    pub spines: usize,
    /// Leaf count.
    pub leaves: usize,
    /// ToR count.
    pub tors: usize,
    /// Total routing-table entries across all switches (measured from a
    /// converged control plane; `None` if not measured at this scale).
    pub routes: Option<usize>,
    /// Scale factor the measurement ran at.
    pub scale: f64,
}

/// Converges a DC's control plane and counts all routing-table entries.
#[must_use]
pub fn measure_routes(dc: &ClosTopology) -> usize {
    let mut sim = build_full_bgp_sim(
        &dc.topo,
        Box::new(UniformWorkModel {
            boot: SimDuration::from_secs(1),
            ..UniformWorkModel::default()
        }),
    );
    sim.boot_all(SimTime::ZERO);
    sim.run_until_quiet(
        SimDuration::from_secs(30),
        SimTime::ZERO + SimDuration::from_mins(600),
    )
    .expect("DC converges");
    dc.topo
        .devices()
        .filter(|(_, d)| d.role != Role::External)
        .map(|(id, _)| sim.fib(id).map_or(0, |f| f.route_entry_count()))
        .sum()
}

/// Builds and measures the three evaluation networks.
#[must_use]
pub fn table3() -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for (params, measure_scale) in [
        (ClosParams::s_dc(), 1.0),
        (ClosParams::m_dc(), 1.0),
        (ClosParams::l_dc(), if full_scale() { 1.0 } else { 0.25 }),
    ] {
        // Layer counts always reflect the paper-scale geometry.
        let geom = params.clone().build();
        let c = geom.layer_counts();
        let measured = params.clone().scaled_pods(measure_scale).build();
        let routes = measure_routes(&measured);
        rows.push(Table3Row {
            name: params.name.to_uppercase(),
            borders: c.borders,
            spines: c.spines,
            leaves: c.leaves,
            tors: c.tors,
            routes: Some(routes),
            scale: measure_scale,
        });
    }
    rows
}

/// Prints Table 3.
pub fn print_table3(rows: &[Table3Row]) {
    println!("\n=== Table 3: evaluation datacenter networks ===");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>14} {:>7}",
        "Network", "#Borders", "#Spines", "#Leaves", "#ToRs", "#Routes", "scale"
    );
    for r in rows {
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>8} {:>14} {:>7}",
            r.name,
            r.borders,
            r.spines,
            r.leaves,
            r.tors,
            r.routes.map_or("-".into(), |n| format!("{n}")),
            format!("{}x", r.scale),
        );
    }
    println!("paper bands: S-DC O(50K), M-DC O(1M), L-DC O(20M) routes");
}

/// A Table 4 row: a boundary-restricted emulation of L-DC.
pub struct Table4Row {
    /// Case name.
    pub case: String,
    /// Per-layer emulated counts.
    pub borders: usize,
    /// Spines.
    pub spines: usize,
    /// Leaves.
    pub leaves: usize,
    /// ToRs.
    pub tors: usize,
    /// Emulated fraction of the whole DC.
    pub proportion: f64,
    /// Speaker devices at the boundary.
    pub speakers: usize,
    /// VMs the planner needs (devices + speakers).
    pub vms: usize,
    /// VMs a whole-DC emulation needs.
    pub whole_dc_vms: usize,
    /// Cost reduction vs emulating everything.
    pub cost_reduction: f64,
}

/// Computes both §8.4 cases on the full L-DC geometry.
#[must_use]
pub fn table4() -> Vec<Table4Row> {
    let dc = ClosParams::l_dc().build();
    let whole_devices: Vec<DeviceId> = dc
        .topo
        .devices()
        .filter(|(_, d)| d.role != Role::External)
        .map(|(id, _)| id)
        .collect();
    let plan_opts = PlanOptions {
        max_devices_per_vm: 12,
        ..PlanOptions::default()
    };
    let whole_plan = plan_vms(&dc.topo, &whole_devices, &[], &plan_opts);

    let pod = &dc.pods[0];
    let case1: Vec<DeviceId> = pod.tors.iter().chain(&pod.leaves).copied().collect();
    let case2 = dc.spines();
    [("One Pod", case1), ("All Spines", case2)]
        .into_iter()
        .map(|(name, must)| {
            let emulated = find_safe_dc_boundary(&dc.topo, &must);
            let class = Classification::new(&dc.topo, &emulated);
            let speakers = class.speakers();
            let devices: Vec<DeviceId> = emulated.iter().copied().collect();
            let plan = plan_vms(&dc.topo, &devices, &speakers, &plan_opts);
            let (mut b, mut s, mut l, mut t) = (0, 0, 0, 0);
            for &d in &emulated {
                match dc.topo.device(d).role {
                    Role::Border => b += 1,
                    Role::Spine => s += 1,
                    Role::Leaf => l += 1,
                    Role::Tor => t += 1,
                    _ => {}
                }
            }
            Table4Row {
                case: name.into(),
                borders: b,
                spines: s,
                leaves: l,
                tors: t,
                proportion: emulated.len() as f64 / whole_devices.len() as f64,
                speakers: speakers.len(),
                vms: plan.vm_count(),
                whole_dc_vms: whole_plan.vm_count(),
                cost_reduction: 1.0 - plan.hourly_cost_usd() / whole_plan.hourly_cost_usd(),
            }
        })
        .collect()
}

/// Prints Table 4.
pub fn print_table4(rows: &[Table4Row]) {
    println!("\n=== Table 4 / §8.4: safe-boundary emulation scales in L-DC ===");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>11} {:>9} {:>6} {:>9} {:>9}",
        "Case",
        "#Borders",
        "#Spines",
        "#Leaves",
        "#ToRs",
        "proportion",
        "speakers",
        "VMs",
        "whole-VMs",
        "cost cut"
    );
    for r in rows {
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>10.1}% {:>9} {:>6} {:>9} {:>8.1}%",
            r.case,
            r.borders,
            r.spines,
            r.leaves,
            r.tors,
            r.proportion * 100.0,
            r.speakers,
            r.vms,
            r.whole_dc_vms,
            r.cost_reduction * 100.0,
        );
    }
    println!("paper: One Pod = 4/64/4/16 (<=2%), All Spines = 12/112/0/0 (<=3%), cost cut > 90%");
}
