//! Benchmark scaling knobs (environment-driven).
//!
//! The default harness runs the paper's S-DC and M-DC at full scale and
//! L-DC at 1:4 pod scale (same aggregation layers, a quarter of the
//! pods, VM fleets scaled to keep packing density identical). Setting
//! `CRYSTALNET_FULL=1` runs L-DC at full 4,600-device scale (needs ~10+
//! GB RAM and tens of minutes). `CRYSTALNET_REPS` overrides the
//! repetition count (the paper uses 10).

use crystalnet::PlanOptions;
use crystalnet_net::ClosParams;

/// Whether full-scale L-DC runs are requested.
#[must_use]
pub fn full_scale() -> bool {
    std::env::var("CRYSTALNET_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Repetitions per configuration (paper: 10).
#[must_use]
pub fn reps() -> u64 {
    std::env::var("CRYSTALNET_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// One Figure 8 configuration: a datacenter and a VM budget.
#[derive(Clone)]
pub struct DcConfig {
    /// Row label (`S-DC/5`).
    pub label: String,
    /// Clos parameters.
    pub params: ClosParams,
    /// VM fleet size.
    pub vms: u32,
    /// The pod-scale factor applied (1.0 = paper scale).
    pub scale: f64,
}

impl DcConfig {
    /// Planner options matching the paper's packing density for this VM
    /// budget.
    #[must_use]
    pub fn plan_options(&self) -> PlanOptions {
        PlanOptions {
            // The paper packs ~10-25 devices per 4-core VM depending on
            // the run; the caps below let the target fleet size dominate.
            max_devices_per_vm: 40,
            max_ifaces_per_vm: 4_000,
            max_speakers_per_vm: 50,
            vendor_grouping: true,
            target_vms: Some(self.vms),
        }
    }
}

/// The six Figure 8 / Figure 9 configurations.
#[must_use]
pub fn figure8_configs() -> Vec<DcConfig> {
    let l_scale = if full_scale() { 1.0 } else { 0.25 };
    let scale_vms = |v: u32| ((v as f64 * l_scale).round() as u32).max(1);
    vec![
        DcConfig {
            label: "S-DC/5".into(),
            params: ClosParams::s_dc(),
            vms: 5,
            scale: 1.0,
        },
        DcConfig {
            label: "S-DC/10".into(),
            params: ClosParams::s_dc(),
            vms: 10,
            scale: 1.0,
        },
        DcConfig {
            label: "M-DC/50".into(),
            params: ClosParams::m_dc(),
            vms: 50,
            scale: 1.0,
        },
        DcConfig {
            label: "M-DC/100".into(),
            params: ClosParams::m_dc(),
            vms: 100,
            scale: 1.0,
        },
        DcConfig {
            label: format!("L-DC/{}", scale_vms(500)),
            params: ClosParams::l_dc().scaled_pods(l_scale),
            vms: scale_vms(500),
            scale: l_scale,
        },
        DcConfig {
            label: format!("L-DC/{}", scale_vms(1000)),
            params: ClosParams::l_dc().scaled_pods(l_scale),
            vms: scale_vms(1000),
            scale: l_scale,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_configs_cover_three_dcs() {
        let cfgs = figure8_configs();
        assert_eq!(cfgs.len(), 6);
        assert!(cfgs[0].label.starts_with("S-DC"));
        assert!(cfgs[2].label.starts_with("M-DC"));
        assert!(cfgs[4].label.starts_with("L-DC"));
        // Each DC appears with two fleet sizes, the second doubled.
        assert_eq!(cfgs[1].vms, cfgs[0].vms * 2);
        assert_eq!(cfgs[3].vms, cfgs[2].vms * 2);
        assert_eq!(cfgs[5].vms, cfgs[4].vms * 2);
    }

    #[test]
    fn default_reps_match_paper() {
        if std::env::var("CRYSTALNET_REPS").is_err() {
            assert_eq!(reps(), 10);
        }
    }
}
