//! Shared `bench_meta` block stamped into every `BENCH_*.json` artifact.
//!
//! Regression diffing (`bench_diff`) keys its tolerance decisions off
//! this block: a `degraded` run (fewer hardware threads than the
//! bench's maximum worker count) downgrades its regressions to
//! warnings, a `hardware_threads` mismatch between baseline and
//! current means the wall clocks came from different machines, and a
//! `schema_version` bump tells a diff it is comparing different
//! layouts. Keeping the emitter here — rather than copy-pasted into
//! each bench — is what keeps the four artifacts' blocks identical.

/// Version of the `BENCH_*.json` layout. Bump when a row field is
/// renamed or its meaning changes; `bench_diff` warns on mismatch.
pub const SCHEMA_VERSION: u64 = 1;

/// Hardware threads visible to this process (1 when undetectable).
#[must_use]
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Renders the shared `bench_meta` JSON object. `workers` is the
/// maximum worker count the bench exercises (1 for single-worker
/// benches); the block is `degraded` when the host cannot give every
/// worker its own hardware thread, which taints wall-clock numbers.
#[must_use]
pub fn bench_meta_json(workers: usize) -> String {
    let hw = hardware_threads();
    format!(
        "{{\"schema_version\": {SCHEMA_VERSION}, \"hardware_threads\": {hw}, \
         \"workers\": {workers}, \"degraded\": {}}}",
        hw < workers
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    #[test]
    fn meta_block_parses_and_carries_every_field() {
        let v: Value = serde_json::from_str(&bench_meta_json(1)).expect("valid JSON");
        let Value::Object(entries) = v else {
            panic!("bench_meta must be an object")
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["schema_version", "hardware_threads", "workers", "degraded"]
        );
        assert_eq!(entries[0].1, Value::Uint(SCHEMA_VERSION));
        // One worker can always be scheduled: never degraded.
        assert_eq!(entries[3].1, Value::Bool(false));
    }

    #[test]
    fn oversubscription_marks_degraded() {
        let v: Value = serde_json::from_str(&bench_meta_json(usize::MAX)).expect("valid JSON");
        let Value::Object(entries) = v else {
            panic!("bench_meta must be an object")
        };
        assert_eq!(entries[3].0, "degraded");
        assert_eq!(entries[3].1, Value::Bool(true));
    }
}
