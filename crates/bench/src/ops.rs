//! §8.3 (reload and VM-failure recovery) and the DESIGN.md ablations
//! (Linux bridge vs OVS; vendor grouping on/off).

use crate::config::DcConfig;
use crystalnet::{
    mockup,
    prepare,
    BoundaryMode,
    MockupOptions,
    PlanOptions,
    SpeakerSource, //
};
use crystalnet_net::ClosParams;
use crystalnet_sim::SimDuration;
use crystalnet_vnet::BridgeImpl;
use std::sync::Arc;

/// A §8.3 reload measurement for one device class.
pub struct ReloadRow {
    /// Device class label.
    pub class: String,
    /// Interface count of the measured device.
    pub ifaces: usize,
    /// Two-layer (CrystalNet) reload downtime.
    pub two_layer: SimDuration,
    /// Everything-together strawman downtime.
    pub strawman: SimDuration,
}

/// Measures reload downtime per device class on an M-DC emulation
/// (M-DC leaf/spine radix is closest to the paper's devices).
#[must_use]
pub fn reload_comparison(seed: u64) -> Vec<ReloadRow> {
    let dc = ClosParams::m_dc().build();
    let prep = prepare(
        &dc.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions {
            max_devices_per_vm: 40,
            max_ifaces_per_vm: 4_000,
            target_vms: Some(50),
            ..PlanOptions::default()
        },
    );
    let mut emu = mockup(Arc::new(prep), MockupOptions::builder().seed(seed).build());

    let targets = [
        ("ToR", dc.pods[0].tors[0]),
        ("Leaf", dc.pods[0].leaves[0]),
        ("Spine", dc.spine_groups[0][0]),
        ("Border", dc.borders[0]),
    ];
    let mut rows = Vec::new();
    for (class, dev) in targets {
        let cfg = emu
            .prep
            .configs
            .iter()
            .find(|(d, _)| *d == dev)
            .expect("emulated device")
            .1
            .clone();
        let two_layer = emu.reload(dev, cfg.clone(), false);
        let _ = emu.settle();
        let strawman = emu.reload(dev, cfg, true);
        let _ = emu.settle();
        rows.push(ReloadRow {
            class: class.into(),
            ifaces: dc.topo.device(dev).ifaces.len(),
            two_layer,
            strawman,
        });
    }
    rows
}

/// Prints the reload comparison.
pub fn print_reload(rows: &[ReloadRow]) {
    println!("\n=== §8.3: Reload — two-layer design vs everything-together strawman ===");
    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>8}",
        "Device", "ifaces", "two-layer", "strawman", "extra"
    );
    for r in rows {
        println!(
            "{:<8} {:>7} {:>12} {:>12} {:>8}",
            r.class,
            r.ifaces,
            format!("{}", r.two_layer),
            format!("{}", r.strawman),
            format!("{}", r.strawman - r.two_layer),
        );
    }
    println!("paper: two-layer reload ~3s; strawman at least 15 extra seconds on its devices");
}

/// A §8.3 VM-recovery measurement.
pub struct RecoveryRow {
    /// Devices packed on the failed VM.
    pub density: usize,
    /// Recovery latency (excluding VM reboot).
    pub recovery: SimDuration,
}

/// Measures VM failure recovery at several packing densities.
#[must_use]
pub fn recovery_by_density(seed: u64) -> Vec<RecoveryRow> {
    let mut rows = Vec::new();
    for (max_per_vm, target) in [(4u32, 40u32), (12, 14), (25, 7), (40, 5)] {
        let dc = ClosParams::s_dc().build();
        let prep = prepare(
            &dc.topo,
            &[],
            BoundaryMode::WholeNetwork,
            SpeakerSource::OriginatedOnly,
            &PlanOptions {
                max_devices_per_vm: max_per_vm,
                max_ifaces_per_vm: 4_000,
                target_vms: Some(target),
                ..PlanOptions::default()
            },
        );
        let mut emu = mockup(Arc::new(prep), MockupOptions::builder().seed(seed).build());
        let vm_idx = (0..emu.prep.vm_plan.vms.len())
            .max_by_key(|&i| emu.prep.vm_plan.vms[i].devices.len())
            .expect("plan has VMs");
        let density = emu.prep.vm_plan.vms[vm_idx].devices.len();
        let recovery = emu.fail_and_recover_vm(vm_idx).expect("valid live VM");
        let _ = emu.settle();
        rows.push(RecoveryRow { density, recovery });
    }
    rows
}

/// Prints the recovery table.
pub fn print_recovery(rows: &[RecoveryRow]) {
    println!("\n=== §8.3: VM failure recovery vs deployment density ===");
    println!("{:>18} {:>12}", "devices on VM", "recovery");
    for r in rows {
        println!("{:>18} {:>12}", r.density, format!("{}", r.recovery));
    }
    println!("paper: 10-50 seconds depending on deployment density (VM reboot excluded)");
}

/// An ablation row: network-ready latency under a design variant.
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Network-ready latency.
    pub network_ready: SimDuration,
    /// Whole mockup latency.
    pub mockup: SimDuration,
    /// VM count used.
    pub vms: usize,
}

/// Ablation 1 (§6.2): Linux bridge vs OVS for the virtual-link fabric.
#[must_use]
pub fn bridge_ablation(cfg: &DcConfig, seed: u64) -> Vec<AblationRow> {
    [BridgeImpl::LinuxBridge, BridgeImpl::Ovs]
        .into_iter()
        .map(|bridge| {
            let dc = cfg.params.build();
            let prep = prepare(
                &dc.topo,
                &[],
                BoundaryMode::WholeNetwork,
                SpeakerSource::OriginatedOnly,
                &cfg.plan_options(),
            );
            let vms = prep.vm_plan.vm_count();
            let emu = mockup(
                Arc::new(prep),
                MockupOptions::builder().seed(seed).bridge(bridge).build(),
            );
            AblationRow {
                variant: format!("{bridge:?}"),
                network_ready: emu.metrics.network_ready,
                mockup: emu.metrics.mockup,
                vms,
            }
        })
        .collect()
}

/// Ablation 2 (§6.2): vendor grouping on vs off. With grouping off the
/// build still *works* here (the simulated kernel has no cross-vendor
/// sysctl conflicts), so the measured quantity is the packing/VM-count
/// effect; the correctness argument is documented, not simulated.
#[must_use]
pub fn grouping_ablation(seed: u64) -> Vec<AblationRow> {
    [true, false]
        .into_iter()
        .map(|grouping| {
            let dc = ClosParams::s_dc().build();
            let prep = prepare(
                &dc.topo,
                &[],
                BoundaryMode::WholeNetwork,
                SpeakerSource::OriginatedOnly,
                &PlanOptions {
                    vendor_grouping: grouping,
                    ..PlanOptions::default()
                },
            );
            let vms = prep.vm_plan.vm_count();
            let emu = mockup(Arc::new(prep), MockupOptions::builder().seed(seed).build());
            AblationRow {
                variant: if grouping {
                    "vendor-grouped".into()
                } else {
                    "mixed-vendors".into()
                },
                network_ready: emu.metrics.network_ready,
                mockup: emu.metrics.mockup,
                vms,
            }
        })
        .collect()
}

/// Prints ablation rows.
pub fn print_ablation(title: &str, rows: &[AblationRow]) {
    println!("\n=== Ablation: {title} ===");
    println!(
        "{:<16} {:>6} {:>15} {:>12}",
        "variant", "VMs", "network-ready", "mockup"
    );
    for r in rows {
        println!(
            "{:<16} {:>6} {:>15} {:>12}",
            r.variant,
            r.vms,
            format!("{}", r.network_ready),
            format!("{}", r.mockup),
        );
    }
}
