//! Benchmark harness regenerating every table and figure in the
//! CrystalNet paper's evaluation (plus the DESIGN.md ablations).
//!
//! Two entry styles:
//! * `cargo bench -p crystalnet-bench` runs `benches/paper_figures.rs`
//!   (all tables/figures, env-scaled) and `benches/micro.rs` (criterion
//!   micro-benchmarks of the hot substrate paths);
//! * `cargo run --release -p crystalnet-bench --bin <figure>` regenerates
//!   one artifact.
//!
//! Scaling: `CRYSTALNET_FULL=1` for full L-DC, `CRYSTALNET_REPS=n` to
//! change the repetition count (default 10, as in the paper).

pub mod boundaries;
pub mod config;
pub mod fig8;
pub mod fig9;
pub mod incidents;
pub mod meta;
pub mod ops;
pub mod tables;
