//! Figure 9: 95th-percentile VM CPU utilization over time during Mockup,
//! per datacenter scale and fleet size.

use crate::config::DcConfig;
use crate::fig8::run_once;

/// One CPU-utilization series.
pub struct Fig9Series {
    /// Configuration label.
    pub label: String,
    /// Bucket width in seconds.
    pub bucket_secs: f64,
    /// p95 utilization per bucket (0..=1).
    pub p95: Vec<f64>,
}

impl Fig9Series {
    /// The peak utilization.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.p95.iter().copied().fold(0.0, f64::max)
    }

    /// Minutes until utilization first drops below `level` after its peak.
    #[must_use]
    pub fn quiesce_minute(&self, level: f64) -> Option<f64> {
        let peak_idx = self
            .p95
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))?
            .0;
        self.p95[peak_idx..]
            .iter()
            .position(|&u| u < level)
            .map(|off| (peak_idx + off) as f64 * self.bucket_secs / 60.0)
    }
}

/// Runs one configuration and captures its CPU series.
#[must_use]
pub fn run_config(cfg: &DcConfig, seed: u64) -> Fig9Series {
    let emu = run_once(cfg, seed);
    Fig9Series {
        label: cfg.label.clone(),
        bucket_secs: emu.cpu_bucket().as_secs_f64(),
        p95: emu.cpu_p95_series(),
    }
}

/// Prints an ASCII rendering of the series plus a CSV block.
pub fn print_series(series: &[Fig9Series]) {
    println!("\n=== Figure 9: p95 VM CPU utilization during Mockup ===");
    for s in series {
        println!(
            "\n{} (bucket {}s, peak {:.0}%, quiesces below 20% at ~{:.1} min):",
            s.label,
            s.bucket_secs,
            s.peak() * 100.0,
            s.quiesce_minute(0.2).unwrap_or(f64::NAN)
        );
        // One bar per bucket, 50 columns max.
        for (i, u) in s.p95.iter().enumerate() {
            let t_min = i as f64 * s.bucket_secs / 60.0;
            let cols = (u * 50.0).round() as usize;
            println!(
                "  {t_min:>5.1}min |{:<50}| {:>3.0}%",
                "#".repeat(cols),
                u * 100.0
            );
        }
    }
    println!("\ncsv,label,minute,p95_util");
    for s in series {
        for (i, u) in s.p95.iter().enumerate() {
            println!(
                "csv,{},{:.2},{u:.4}",
                s.label,
                i as f64 * s.bucket_secs / 60.0
            );
        }
    }
}
