//! Table 1 (incident coverage) and Figure 1 (aggregation imbalance)
//! regenerators.

use crystalnet::{
    mockup,
    prepare,
    run_all_scenarios,
    BoundaryMode,
    MockupOptions,
    PlanOptions,
    RootCause,
    ScenarioResult,
    SpeakerSource, //
};
use crystalnet_config::AggregateConfig;
use crystalnet_net::fixtures::fig1;
use std::sync::Arc;

/// Runs the incident suite and prints the Table 1 coverage matrix.
pub fn print_table1(seed: u64) -> Vec<ScenarioResult> {
    let results = run_all_scenarios(seed);
    println!("\n=== Table 1: incident root causes and coverage ===");
    println!(
        "{:<10} {:<58} {:>10} {:>13}",
        "Cause", "Scenario", "CrystalNet", "Verification"
    );
    let mark = |b: bool| if b { "yes" } else { "no" };
    for r in &results {
        println!(
            "{:<10} {:<58} {:>10} {:>13}",
            match r.cause {
                RootCause::SoftwareBug => "software",
                RootCause::ConfigBug => "config",
                RootCause::HumanError => "human",
                RootCause::HardwareFailure => "hardware",
            },
            r.name,
            mark(r.detected),
            mark(r.verification_covers),
        );
    }
    // Aggregate coverage per class, next to the paper's proportions.
    println!("\nper-class coverage (paper proportion of incidents):");
    for cause in [
        RootCause::SoftwareBug,
        RootCause::ConfigBug,
        RootCause::HumanError,
        RootCause::HardwareFailure,
    ] {
        let class: Vec<&ScenarioResult> = results.iter().filter(|r| r.cause == cause).collect();
        let detected = class.iter().filter(|r| r.detected).count();
        println!(
            "  {:?}: {detected}/{} scenarios detected ({}% of production incidents)",
            cause,
            class.len(),
            (cause.paper_proportion() * 100.0) as u32
        );
    }
    results
}

/// The Figure 1 measurement: per-router traffic share for the aggregate.
pub struct Fig1Result {
    /// Flows carried via R6 (Vendor-A).
    pub via_r6: u32,
    /// Flows carried via R7 (Vendor-C).
    pub via_r7: u32,
    /// AS-path length of the winning aggregate at R8.
    pub winning_path_len: usize,
}

/// Reproduces Figure 1 with `flows` telemetry probes.
#[must_use]
pub fn run_fig1(seed: u64, flows: u32) -> Fig1Result {
    let f = fig1();
    let mut prep = prepare(
        &f.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    for (dev, cfg) in &mut prep.configs {
        if *dev == f.routers[5] || *dev == f.routers[6] {
            cfg.bgp.as_mut().unwrap().aggregates.push(AggregateConfig {
                prefix: f.p3,
                summary_only: true,
            });
        }
    }
    let mut emu = mockup(Arc::new(prep), MockupOptions::builder().seed(seed).build());

    // Pull R8's route for P3 via the management plane.
    let winning_path_len = match emu
        .sim
        .mgmt_sync(f.routers[7], crystalnet_routing::MgmtCommand::ShowRoutes)
    {
        Some(crystalnet_routing::MgmtResponse::Routes(rows)) => rows
            .iter()
            .find(|(p, _, _)| *p == f.p3)
            .map(|(_, len, _)| *len)
            .unwrap_or(0),
        _ => 0,
    };

    let (mut via_r6, mut via_r7) = (0, 0);
    for flow in 0..flows {
        let src = crystalnet_net::Ipv4Addr::new(203, 0, (flow >> 8) as u8, flow as u8);
        let sig = emu.inject_packet(f.routers[7], src, f.p3.nth(flow * 13 + 1));
        let (path, _) = emu.pull_packets(sig).expect("probe traced");
        if path.contains(&f.routers[5]) {
            via_r6 += 1;
        }
        if path.contains(&f.routers[6]) {
            via_r7 += 1;
        }
    }
    Fig1Result {
        via_r6,
        via_r7,
        winning_path_len,
    }
}

/// Prints the Figure 1 result.
pub fn print_fig1(r: &Fig1Result) {
    println!("\n=== Figure 1: vendor-divergent aggregation imbalance ===");
    println!(
        "R8's winning aggregate AS-path length: {} (Vendor-C announces {{7}} only)",
        r.winning_path_len
    );
    println!(
        "traffic split toward P3: R6 {} flows, R7 {} flows — paper: \"R8 always prefers R7\"",
        r.via_r6, r.via_r7
    );
}
