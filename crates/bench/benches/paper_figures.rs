//! The full paper-evaluation regeneration: every table and figure, in
//! order, printed to stdout. Runs under `cargo bench -p crystalnet-bench`
//! (plain harness) so one command reproduces the whole evaluation.
//!
//! Scaling knobs: `CRYSTALNET_FULL=1` (full L-DC), `CRYSTALNET_REPS=n`
//! (repetitions for Figure 8; paper default 10).

fn main() {
    // `cargo bench` passes `--bench`; accept and ignore harness flags.
    println!("CrystalNet reproduction — full evaluation run");
    println!(
        "scale: L-DC at {} | repetitions: {}",
        if crystalnet_bench::config::full_scale() {
            "1x (full)"
        } else {
            "0.25x (default)"
        },
        crystalnet_bench::config::reps()
    );

    // Table 1 — incident coverage.
    crystalnet_bench::incidents::print_table1(42);

    // Figure 1 — aggregation imbalance.
    let f1 = crystalnet_bench::incidents::run_fig1(7, 200);
    crystalnet_bench::incidents::print_fig1(&f1);

    // Figure 7 — boundary safety.
    let f7 = crystalnet_bench::boundaries::run_fig7();
    crystalnet_bench::boundaries::print_fig7(&f7);

    // Table 3 — evaluation networks.
    let t3 = crystalnet_bench::tables::table3();
    crystalnet_bench::tables::print_table3(&t3);

    // Table 4 — safe-boundary scales.
    let t4 = crystalnet_bench::tables::table4();
    crystalnet_bench::tables::print_table4(&t4);

    // Figure 8 — start/stop latencies.
    let configs = crystalnet_bench::config::figure8_configs();
    let rows: Vec<_> = configs
        .iter()
        .map(|cfg| {
            eprintln!("fig8: running {}...", cfg.label);
            crystalnet_bench::fig8::run_config(cfg)
        })
        .collect();
    crystalnet_bench::fig8::print_table(&rows);
    println!("\nFigure 8 claim checks:");
    for (claim, ok) in crystalnet_bench::fig8::verdicts(&rows) {
        println!("  [{}] {claim}", if ok { "ok" } else { "FAIL" });
    }

    // Figure 9 — CPU utilization curves.
    let series: Vec<_> = configs
        .iter()
        .map(|cfg| {
            eprintln!("fig9: running {}...", cfg.label);
            crystalnet_bench::fig9::run_config(cfg, 1)
        })
        .collect();
    crystalnet_bench::fig9::print_series(&series);

    // §8.3 — reload + recovery, and the DESIGN.md ablations.
    let reload = crystalnet_bench::ops::reload_comparison(3);
    crystalnet_bench::ops::print_reload(&reload);
    let rec = crystalnet_bench::ops::recovery_by_density(4);
    crystalnet_bench::ops::print_recovery(&rec);
    let ab = crystalnet_bench::ops::bridge_ablation(&configs[0], 5);
    crystalnet_bench::ops::print_ablation("Linux bridge vs OVS (S-DC/5)", &ab);
    let gr = crystalnet_bench::ops::grouping_ablation(6);
    crystalnet_bench::ops::print_ablation("vendor grouping on/off (S-DC)", &gr);

    println!("\nevaluation run complete");
}
