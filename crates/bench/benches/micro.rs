//! Criterion micro-benchmarks of the substrate hot paths: the operations
//! whose costs bound emulation scale (Table 3's O(20M) routes, §4.2's
//! O(1000) tunnels per VM, Algorithm 1 on the full fabric).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use crystalnet_dataplane::{
    compare_fibs,
    ecmp_select,
    CompareOptions,
    EthernetFrame,
    Fib,
    FibEntry,
    NextHop, //
};
use crystalnet_net::{ClosParams, Ipv4Addr, Ipv4Prefix, LinkId, MacAddr};
use crystalnet_routing::harness::build_full_bgp_sim;
use crystalnet_routing::UniformWorkModel;
use crystalnet_sim::{SimDuration, SimTime};
use crystalnet_vnet::{VirtualLink, VmId, VniAllocator};

fn bench_fib(c: &mut Criterion) {
    // A FIB the size of an L-DC ToR's table.
    let mut fib = Fib::default();
    for i in 0..8_192u32 {
        let prefix = Ipv4Prefix::new(Ipv4Addr(0x0a00_0000 + (i << 8)), 24);
        fib.install(
            prefix,
            FibEntry::new(vec![
                NextHop {
                    iface: i % 4,
                    via: Ipv4Addr(i),
                },
                NextHop {
                    iface: (i + 1) % 4,
                    via: Ipv4Addr(i + 1),
                },
            ]),
        );
    }
    fib.install(
        Ipv4Prefix::DEFAULT,
        FibEntry::new(vec![NextHop {
            iface: 0,
            via: Ipv4Addr(1),
        }]),
    );

    c.bench_function("fib_lookup_hit_8k", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2654435761);
            std::hint::black_box(fib.lookup(Ipv4Addr(0x0a00_0000 + (i % (8_192 << 8)))))
        })
    });
    c.bench_function("fib_lookup_default_route", |b| {
        b.iter(|| std::hint::black_box(fib.lookup(Ipv4Addr(0xc0a8_0101))))
    });
    c.bench_function("fib_install_remove", |b| {
        let prefix: Ipv4Prefix = "99.99.99.0/24".parse().unwrap();
        let entry = FibEntry::new(vec![NextHop {
            iface: 1,
            via: Ipv4Addr(7),
        }]);
        b.iter(|| {
            fib.install(prefix, entry.clone());
            fib.remove(prefix);
        })
    });
    c.bench_function("ecmp_select", |b| {
        let entry = FibEntry::new(
            (0..64)
                .map(|i| NextHop {
                    iface: i,
                    via: Ipv4Addr(i),
                })
                .collect(),
        );
        let mut flow = 0u16;
        b.iter(|| {
            flow = flow.wrapping_add(1);
            std::hint::black_box(ecmp_select(&entry, Ipv4Addr(1), Ipv4Addr(2), 6, flow))
        })
    });
}

fn bench_compare(c: &mut Criterion) {
    let build = |seed: u32| {
        let mut f = Fib::default();
        for i in 0..4_096u32 {
            f.install(
                Ipv4Prefix::new(Ipv4Addr(0x0a00_0000 + (i << 8)), 24),
                FibEntry::new(vec![NextHop {
                    iface: (i + seed) % 4,
                    via: Ipv4Addr(i),
                }]),
            );
        }
        f
    };
    let a = build(0);
    let b2 = build(0);
    c.bench_function("fib_compare_equal_4k", |b| {
        b.iter(|| std::hint::black_box(compare_fibs(&a, &b2, &CompareOptions::strict()).len()))
    });
}

fn bench_vxlan(c: &mut Criterion) {
    let mut vnis = VniAllocator::new();
    let link = VirtualLink::provision(LinkId(1), VmId(0), VmId(1), false, &mut vnis);
    let frame = EthernetFrame {
        dst: MacAddr::from_id(1),
        src: MacAddr::from_id(2),
        ethertype: crystalnet_dataplane::ethertype::IPV4,
        payload: Bytes::from(vec![0u8; 256]),
    };
    let vtep_a = Ipv4Addr::new(10, 0, 0, 4);
    let vtep_b = Ipv4Addr::new(10, 0, 0, 5);
    c.bench_function("vxlan_encap_256B", |b| {
        b.iter(|| std::hint::black_box(link.encapsulate(&frame, vtep_a, vtep_b)))
    });
    let wire = link.encapsulate(&frame, vtep_a, vtep_b);
    c.bench_function("vxlan_decap_256B", |b| {
        b.iter(|| std::hint::black_box(link.decapsulate(wire.clone())))
    });
    c.bench_function("vni_allocate_release", |b| {
        let mut alloc = VniAllocator::new();
        b.iter(|| {
            let vni = alloc.allocate(VmId(0), VmId(1));
            alloc.release(VmId(0), VmId(1), vni);
        })
    });
}

fn bench_topology_and_boundary(c: &mut Criterion) {
    c.bench_function("generate_s_dc_topology", |b| {
        b.iter(|| std::hint::black_box(ClosParams::s_dc().build().topo.device_count()))
    });
    let dc = ClosParams::l_dc().build();
    let pod: Vec<_> = dc.pods[0]
        .tors
        .iter()
        .chain(&dc.pods[0].leaves)
        .copied()
        .collect();
    c.bench_function("algorithm1_one_pod_full_l_dc", |b| {
        b.iter(|| {
            std::hint::black_box(crystalnet_boundary::find_safe_dc_boundary(&dc.topo, &pod).len())
        })
    });
    let devices: Vec<_> = dc
        .topo
        .devices()
        .filter(|(_, d)| d.role != crystalnet_net::Role::External)
        .map(|(id, _)| id)
        .collect();
    c.bench_function("vm_planner_full_l_dc", |b| {
        b.iter(|| {
            std::hint::black_box(
                crystalnet::plan_vms(&dc.topo, &devices, &[], &crystalnet::PlanOptions::default())
                    .vm_count(),
            )
        })
    });
}

fn bench_convergence(c: &mut Criterion) {
    // Full control-plane convergence of the Figure 7 fabric — the unit of
    // work behind every differential validation.
    c.bench_function("fig7_full_convergence", |b| {
        b.iter_batched(
            crystalnet_net::fixtures::fig7,
            |f| {
                let mut sim = build_full_bgp_sim(
                    &f.topo,
                    Box::new(UniformWorkModel {
                        boot: SimDuration::from_secs(1),
                        ..UniformWorkModel::default()
                    }),
                );
                sim.boot_all(SimTime::ZERO);
                sim.run_until_quiet(
                    SimDuration::from_secs(5),
                    SimTime::ZERO + SimDuration::from_mins(60),
                )
                .expect("converges")
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_provenance(c: &mut Criterion) {
    use crystalnet_routing::{OriginKind, Provenance};
    use crystalnet_sim::EventId;
    use crystalnet_telemetry::{FieldValue, TraceRecord, TraceSink};

    // Per-hop provenance extension: one Arc + interner probe per
    // re-exported announcement, the incremental cost of tagging every
    // BGP update with its causal chain.
    let origin = Provenance::originated(
        OriginKind::Network,
        Ipv4Addr::new(10, 0, 0, 1),
        EventId {
            time_ns: 1_000,
            key: 42,
        },
    );
    c.bench_function("provenance_extend_intern", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            std::hint::black_box(origin.extended(
                Ipv4Addr(0x0a00_0000 + (i % 64)),
                EventId {
                    time_ns: 2_000,
                    key: u64::from(i % 64),
                },
            ))
        })
    });
    let chain = (0..4).fold(origin, |p, i| {
        p.extended(
            Ipv4Addr(0x0a00_0100 + i),
            EventId {
                time_ns: 3_000 + u64::from(i),
                key: u64::from(i),
            },
        )
    });
    c.bench_function("provenance_digest_4hop", |b| {
        b.iter(|| std::hint::black_box(chain.digest()))
    });

    // Ring-buffer push at capacity: the steady-state trace cost once the
    // sink is full and every record evicts the oldest.
    c.bench_function("trace_sink_push_at_capacity", |b| {
        let mut sink = TraceSink::new(4_096);
        let mut t = 0u64;
        b.iter(|| {
            t = t.wrapping_add(1);
            sink.push(TraceRecord::new(
                SimTime::ZERO + SimDuration::from_nanos(t),
                EventId { time_ns: t, key: t },
                None,
                "fib_install",
                Some(7),
                vec![("prov", FieldValue::U64(t))],
            ));
        });
        std::hint::black_box(sink.len());
    });
}

fn bench_config(c: &mut Criterion) {
    let dc = ClosParams::s_dc().build();
    let spine = dc.spine_groups[0][0];
    c.bench_function("generate_device_config", |b| {
        b.iter(|| std::hint::black_box(crystalnet_config::generate_device(&dc.topo, spine)))
    });
    let cfg = crystalnet_config::generate_device(&dc.topo, spine);
    let text = crystalnet_config::render(&cfg);
    c.bench_function("parse_device_config", |b| {
        b.iter(|| std::hint::black_box(crystalnet_config::parse_config(&text).unwrap()))
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_fib,
        bench_compare,
        bench_vxlan,
        bench_topology_and_boundary,
        bench_convergence,
        bench_provenance,
        bench_config
);
criterion_main!(micro);
