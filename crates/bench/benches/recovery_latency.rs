//! Recovery-latency bench: how fast the emulation heals from injected
//! infrastructure faults (§8.3's failure-handling story).
//!
//! For each Clos fabric it injects one fault of each kind through the
//! typed fault plan, lets the health monitor detect / retry / quarantine,
//! and reads the resulting recovery latency out of the structured
//! journal. Virtual-time latencies are deterministic per seed; the
//! wall-clock column (median over `CRYSTALNET_REPS` runs) measures the
//! orchestrator's own overhead. Writes `BENCH_recovery.json` at the
//! workspace root.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_net::ClosTopology;
use std::time::Instant;

const SEED: u64 = 7;

fn fabrics() -> Vec<(&'static str, ClosTopology, u32)> {
    vec![
        ("s-dc", crystalnet_net::ClosParams::s_dc().build(), 16),
        (
            "s-dc-spread",
            crystalnet_net::ClosParams::s_dc().build(),
            32,
        ),
    ]
}

/// The fault menu: one representative of each plan kind plus the direct
/// synchronous injection API.
fn scenarios(emu: &Emulation) -> Vec<(&'static str, Option<FaultPlan>)> {
    let speaker = emu.prep.speaker_plan.scripts[0].0;
    let at = SimDuration::from_secs(15);
    vec![
        ("direct-vm-crash", None),
        (
            "vm-crash",
            Some(FaultPlan::default().then(at, FaultKind::VmCrash { vm: 0 })),
        ),
        (
            "vm-slow-restart",
            Some(FaultPlan::default().then(
                at,
                FaultKind::VmSlowRestart {
                    vm: 0,
                    failed_attempts: 2,
                },
            )),
        ),
        (
            "quarantine",
            Some(FaultPlan::default().then(
                at,
                FaultKind::VmSlowRestart {
                    vm: 0,
                    failed_attempts: 4,
                },
            )),
        ),
        (
            "speaker-crash",
            Some(FaultPlan::default().then(at, FaultKind::SpeakerCrash { device: speaker })),
        ),
    ]
}

fn build(topo: &ClosTopology, target_vms: u32) -> Emulation {
    let prep = prepare(
        &topo.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions {
            target_vms: Some(target_vms),
            ..PlanOptions::default()
        },
    );
    mockup(Arc::new(prep), MockupOptions::builder().seed(SEED).build())
}

struct Sample {
    latency: SimDuration,
    devices: usize,
    wall: f64,
    counters: String,
}

fn run_once(topo: &ClosTopology, target_vms: u32, plan: Option<&FaultPlan>) -> Sample {
    let mut emu = build(topo, target_vms);
    let start = Instant::now();
    match plan {
        None => {
            let vm_idx = (0..emu.prep.vm_plan.vms.len())
                .max_by_key(|&i| emu.prep.vm_plan.vms[i].devices.len())
                .expect("plan has VMs");
            emu.fail_and_recover_vm(vm_idx).expect("live VM");
            emu.settle().expect("re-converges");
        }
        Some(p) => {
            emu.run_fault_plan(p).expect("plan executes");
        }
    }
    let wall = start.elapsed().as_secs_f64();
    // Read the *latest* recovery in virtual time, not emission order:
    // overlapping faults interleave in the raw journal.
    let (_, latency, devices) = *emu
        .journal
        .sorted()
        .recoveries()
        .last()
        .expect("every scenario completes a recovery");
    Sample {
        latency,
        devices,
        wall,
        counters: emu.pull_report().counters_json(),
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let samples: usize = std::env::var("CRYSTALNET_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    println!("recovery_latency: {samples} sample(s)/scenario, seed {SEED}");

    let mut rows = Vec::new();
    for (label, topo, target_vms) in fabrics() {
        let probe = build(&topo, target_vms);
        let devices = topo.topo.device_count();
        let vms = probe.prep.vm_plan.vms.len();
        for (scenario, plan) in scenarios(&probe) {
            let mut walls = Vec::with_capacity(samples);
            let mut first: Option<Sample> = None;
            for _ in 0..samples {
                let s = run_once(&topo, target_vms, plan.as_ref());
                if let Some(f) = &first {
                    // Virtual-time recovery is deterministic: identical
                    // latency on every repetition or the bench is wrong.
                    assert_eq!(f.latency, s.latency, "{label}/{scenario}: latency");
                    assert_eq!(f.devices, s.devices, "{label}/{scenario}: devices");
                }
                walls.push(s.wall);
                first.get_or_insert(s);
            }
            let s = first.expect("at least one sample");
            let wall = median(walls);
            let virt = s.latency.as_nanos() as f64 / 1e9;
            println!(
                "{label:<10} vms={vms:<3} {scenario:<16} recovered {dev:>3} device(s) \
                 in {virt:>8.2}s virtual  ({wall:>6.3}s wall)",
                dev = s.devices
            );
            rows.push(format!(
                "{{\"topology\": \"{label}\", \"devices\": {devices}, \"vms\": {vms}, \
                 \"scenario\": \"{scenario}\", \"recovered_devices\": {}, \
                 \"recovery_latency_ns\": {}, \"median_wall_seconds\": {wall:.6}, \
                 \"counters\": {}}}",
                s.devices,
                s.latency.as_nanos(),
                s.counters
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"recovery_latency\",\n  \"bench_meta\": {},\n  \"seed\": {SEED},\n  \
         \"samples\": {samples},\n  \"results\": [\n    {}\n  ]\n}}\n",
        crystalnet_bench::meta::bench_meta_json(1),
        rows.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(path, json).expect("write BENCH_recovery.json");
    println!("wrote {path}");
}
