//! Fork-rehearsal bench: the session path (fork the warm baseline,
//! apply the change on the child) vs the cold path (fresh mockup, apply
//! the change the Table 2 way, full settle) across Table 3 scale bands.
//!
//! Prints a table and writes `BENCH_fork.json` at the workspace root.
//! Before any timing is accepted, the fork result is checked
//! FIB-identical to the cold-path emulation for the same change — a
//! fast fork that lands on different routes is not a result.
//!
//! Timings are the median of `CRYSTALNET_REPS` samples (default 3,
//! min 2). `full_seconds` = measured mockup wall + post-change settle
//! wall, the cost an operator pays per what-if without a warm baseline;
//! `fork_rehearse_seconds` = fork wall + warm apply wall, the cost per
//! what-if with one. Both paths run single-worker, so the ratio is not
//! bounded by hardware threads; `hardware_threads` is recorded anyway
//! so rows from oversubscribed CI runners can be told apart.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_dataplane::Fib;
use crystalnet_net::{ClosParams, ClosTopology, DeviceId, LinkId};
use std::collections::BTreeMap;
use std::time::Instant;

fn bands() -> Vec<(&'static str, ClosTopology)> {
    let mut v = vec![
        ("s-dc", ClosParams::s_dc().build()),
        ("m-dc", ClosParams::m_dc().build()),
    ];
    if std::env::var("CRYSTALNET_FULL").is_ok_and(|x| x == "1") {
        v.push(("l-dc", ClosParams::l_dc().scaled_pods(0.25).build()));
    }
    v
}

fn prep_for(topo: &ClosTopology) -> Arc<PrepareOutput> {
    Arc::new(prepare(
        &topo.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    ))
}

fn fib_map(emu: &Emulation) -> BTreeMap<DeviceId, Fib> {
    let mut devs: Vec<DeviceId> = emu.sandboxes.keys().copied().collect();
    devs.sort_unstable_by_key(|d| d.0);
    devs.into_iter()
        .filter_map(|d| emu.sim.os(d).map(|os| (d, os.fib().clone())))
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// One rehearsable change plus how the cold reference applies it.
enum Change {
    ConfigUpdate(DeviceId, Box<crystalnet_config::DeviceConfig>),
    LinkDown(LinkId),
}

impl Change {
    fn change_set(&self) -> ChangeSet {
        match self {
            Change::ConfigUpdate(dev, cfg) => ChangeSet::new().config_update(*dev, (**cfg).clone()),
            Change::LinkDown(lid) => ChangeSet::new().link_down(*lid),
        }
    }

    /// Plays the change on a cold emulation via the pre-existing Table 2
    /// surface (Reload / Disconnect) and settles it.
    fn apply_cold(&self, emu: &mut Emulation) {
        match self {
            Change::ConfigUpdate(dev, cfg) => {
                emu.reload(*dev, (**cfg).clone(), false);
            }
            Change::LinkDown(lid) => emu.disconnect(*lid),
        }
        emu.settle().expect("cold path settles");
    }
}

struct Row {
    band: String,
    devices: usize,
    change: &'static str,
    fib_changes: usize,
    fork_secs: f64,
    fork_rehearse_secs: f64,
    full_secs: f64,
}

fn main() {
    let samples: usize = std::env::var("CRYSTALNET_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(2);
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("fork_rehearsal: {samples} samples/row, {hw} hardware thread(s)");

    let mut rows: Vec<Row> = Vec::new();
    for (band, topo) in bands() {
        let devices = topo.topo.device_count();
        let prep = prep_for(&topo);

        // The warm baseline every fork branches from, built once.
        let t = Instant::now();
        let warm = mockup(Arc::clone(&prep), MockupOptions::builder().seed(42).build());
        let mockup_secs = t.elapsed().as_secs_f64();
        println!("{band:<6} devices={devices:<5} baseline mockup {mockup_secs:>7.3}s");

        // Change 1: announce a new network on a pod-0 ToR — a new
        // origination floods the band, the heavyweight rehearsal.
        let tor = topo.pods[0].tors[0];
        let mut cfg = warm
            .prep
            .configs
            .iter()
            .find(|(d, _)| *d == tor)
            .map(|(_, c)| c.clone())
            .expect("tor has a config");
        cfg.bgp
            .as_mut()
            .expect("generated configs run BGP")
            .networks
            .push("10.200.0.0/24".parse().unwrap());
        // Change 2: drop the first pod-0 leaf uplink — ECMP keeps the
        // ripple pod-local, the lightweight rehearsal.
        let leaf = topo.pods[0].leaves[0];
        let lid = topo
            .topo
            .links()
            .find(|(_, l)| l.a.device == leaf || l.b.device == leaf)
            .map(|(lid, _)| lid)
            .expect("leaf has links");

        for (name, change) in [
            (
                "config-update",
                Change::ConfigUpdate(tor, Box::new(cfg.clone())),
            ),
            ("link-down", Change::LinkDown(lid)),
        ] {
            let set = change.change_set();
            let mut fork_times = Vec::with_capacity(samples);
            let mut rehearse_times = Vec::with_capacity(samples);
            let mut full_times = Vec::with_capacity(samples);
            let mut fib_changes = 0;

            for rep in 0..samples {
                // Warm path: fork the baseline, rehearse on the child,
                // drop it (rollback) — the per-what-if session cost.
                let t = Instant::now();
                let mut fork = warm.fork();
                let fork_secs = t.elapsed().as_secs_f64();
                let delta = fork.apply(&set).expect("change applies on fork");
                let rehearse_secs = t.elapsed().as_secs_f64();
                fib_changes = delta.total_fib_changes();

                // Cold path: fresh mockup plus Table 2 apply + settle.
                let t = Instant::now();
                let mut cold = mockup(Arc::clone(&prep), MockupOptions::builder().seed(42).build());
                change.apply_cold(&mut cold);
                let full_secs = t.elapsed().as_secs_f64();

                // Equivalence gate before the timing counts: the fork
                // must land on the cold path's FIBs exactly.
                if rep == 0 {
                    assert_eq!(
                        fib_map(fork.emulation()),
                        fib_map(&cold),
                        "{band}/{name}: fork result diverged from cold settle"
                    );
                }

                fork_times.push(fork_secs);
                rehearse_times.push(rehearse_secs);
                full_times.push(full_secs);
            }

            rows.push(Row {
                band: band.to_string(),
                devices,
                change: name,
                fib_changes,
                fork_secs: median(fork_times),
                fork_rehearse_secs: median(rehearse_times),
                full_secs: median(full_times),
            });
        }
    }

    let mut json_rows = Vec::new();
    for r in &rows {
        let speedup = r.full_secs / r.fork_rehearse_secs.max(1e-9);
        println!(
            "{:<6} {:<14} fib_changes={:<6} fork {:>8.4}s  fork+rehearse {:>8.3}s  \
             mockup+settle {:>8.3}s  speedup {:>7.1}x",
            r.band,
            r.change,
            r.fib_changes,
            r.fork_secs,
            r.fork_rehearse_secs,
            r.full_secs,
            speedup
        );
        json_rows.push(format!(
            "{{\"band\": \"{}\", \"devices\": {}, \"change\": \"{}\", \"fib_changes\": {}, \
             \"fork_seconds\": {:.6}, \"fork_rehearse_seconds\": {:.6}, \
             \"full_seconds\": {:.6}, \"speedup\": {:.2}}}",
            r.band,
            r.devices,
            r.change,
            r.fib_changes,
            r.fork_secs,
            r.fork_rehearse_secs,
            r.full_secs,
            speedup
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"fork_rehearsal\",\n  \"bench_meta\": {},\n  \"full_definition\": \
         \"mockup wall + post-change settle wall\",\n  \"fork_rehearse_definition\": \
         \"fork wall + warm apply wall\",\n  \"samples\": {samples},\n  \
         \"hardware_threads\": {hw},\n  \"results\": [\n    {}\n  ]\n}}\n",
        crystalnet_bench::meta::bench_meta_json(1),
        json_rows.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fork.json");
    std::fs::write(path, json).expect("write BENCH_fork.json");
    println!("wrote {path}");
}
