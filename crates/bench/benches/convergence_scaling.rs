//! Convergence-scaling bench: serial vs sharded parallel executor on
//! Clos fabrics of ~64/128/256 devices × 1/2/4/8 workers.
//!
//! Prints a table and writes `BENCH_convergence.json` at the workspace
//! root. Every parallel run is checked bit-identical to the serial
//! baseline (converged instant, route-op totals, and every FIB) before
//! its timing is accepted — a wrong answer fast is not a result.
//!
//! Wall-clock speedup requires hardware parallelism: when a row was
//! measured with fewer hardware threads than workers, its
//! `speedup_vs_serial` is `null` and the row carries `"degraded": true`
//! — an oversubscribed run measures scheduler thrash, not the executor,
//! and a misleading "1.0x" from single-core CI must never look like a
//! real result. Timings are the median of `CRYSTALNET_REPS` samples
//! (floored at 2 so no single outlier can become a headline number).

use crystalnet::prelude::MemRecorder;
use crystalnet_net::{partition, ClosParams, ClosTopology};
use crystalnet_routing::harness::build_full_bgp_sim;
use crystalnet_routing::{ControlPlaneSim, UniformWorkModel, WorkModel};
use crystalnet_sim::{SimDuration, SimTime};
use std::time::Instant;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const QUIET: SimDuration = SimDuration::from_secs(5);

fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(120)
}

fn work() -> Box<dyn WorkModel> {
    Box::new(UniformWorkModel {
        boot: SimDuration::from_secs(1),
        ..UniformWorkModel::default()
    })
}

/// Clos fabrics sized to land near 64 / 128 / 256 total devices.
fn fabrics() -> Vec<(&'static str, ClosTopology)> {
    let mk = |name: &str, b, sg, spg, p, l, t, gpp| {
        ClosParams {
            name: name.into(),
            borders: b,
            spine_groups: sg,
            spines_per_group: spg,
            pods: p,
            leaves_per_pod: l,
            tors_per_pod: t,
            groups_per_pod: gpp,
            ext_peers_per_border: 1,
            ext_prefixes_per_peer: 8,
        }
        .build()
    };
    vec![
        ("clos-64", mk("clos-64", 2, 1, 2, 4, 2, 13, 1)),
        ("clos-128", mk("clos-128", 2, 1, 4, 6, 2, 18, 1)),
        ("clos-256", mk("clos-256", 4, 2, 4, 12, 2, 18, 2)),
    ]
}

struct Outcome {
    converged_at: Option<SimTime>,
    route_ops: u64,
    sim: ControlPlaneSim,
}

fn run_once(topo: &ClosTopology, workers: usize) -> (Outcome, f64) {
    let mut sim = build_full_bgp_sim(&topo.topo, work());
    sim.boot_all(SimTime::ZERO);
    let start = Instant::now();
    let converged_at = if workers == 1 {
        sim.run_until_quiet(QUIET, deadline())
    } else {
        let part = partition(&topo.topo, workers);
        let models = (0..workers).map(|_| work()).collect();
        let (t, _) = sim.run_until_quiet_parallel(QUIET, deadline(), &part, models);
        t
    };
    let secs = start.elapsed().as_secs_f64();
    let route_ops = sim.engine.world.route_ops_total;
    (
        Outcome {
            converged_at,
            route_ops,
            sim,
        },
        secs,
    )
}

/// One extra, untimed run with a live recorder: the timed runs keep the
/// no-op recorder (so instrumentation stays off the measured path), and
/// this run supplies the canonical counter section for the JSON artifact.
fn instrumented_counters(topo: &ClosTopology) -> String {
    let mut sim = build_full_bgp_sim(&topo.topo, work());
    sim.engine.world.recorder = Box::new(MemRecorder::new());
    sim.boot_all(SimTime::ZERO);
    sim.run_until_quiet(QUIET, deadline());
    MemRecorder::from_recorder(&*sim.engine.world.recorder)
        .expect("recorder was installed above")
        .report()
        .counters_json()
}

fn assert_matches(base: &Outcome, got: &Outcome, topo: &ClosTopology, tag: &str) {
    assert_eq!(base.converged_at, got.converged_at, "{tag}: converged_at");
    assert_eq!(base.route_ops, got.route_ops, "{tag}: route ops");
    for (id, d) in topo.topo.devices() {
        match (base.sim.os(id), got.sim.os(id)) {
            (None, None) => {}
            (Some(a), Some(b)) => assert_eq!(a.fib(), b.fib(), "{tag}: FIB of {}", d.name),
            _ => panic!("{tag}: OS presence differs on {}", d.name),
        }
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn main() {
    let samples: usize = std::env::var("CRYSTALNET_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(2);
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("convergence_scaling: {samples} samples/config, {hw} hardware thread(s)");
    if hw < *WORKERS.last().unwrap() {
        println!("note: fewer hardware threads than max workers — speedups are bounded by {hw}x");
    }

    let mut rows = Vec::new();
    let mut counter_rows = Vec::new();
    for (label, topo) in fabrics() {
        let devices = topo.topo.device_count();
        counter_rows.push(format!(
            "{{\"topology\": \"{label}\", \"counters\": {}}}",
            instrumented_counters(&topo)
        ));
        let mut serial_median = 0.0;
        let mut baseline: Option<Outcome> = None;
        for &workers in &WORKERS {
            let mut times = Vec::with_capacity(samples);
            for _ in 0..samples {
                let (out, secs) = run_once(&topo, workers);
                match &baseline {
                    None => {
                        assert!(out.converged_at.is_some(), "{label}: must converge");
                        baseline = Some(out);
                    }
                    Some(base) => assert_matches(base, &out, &topo, label),
                }
                times.push(secs);
            }
            let med = median(times);
            if workers == 1 {
                serial_median = med;
            }
            // An oversubscribed run (more workers than hardware threads)
            // measures scheduler thrash, not the executor: refuse to
            // report a speedup for it.
            let degraded = hw < workers;
            let (speedup_str, speedup_json) = if degraded {
                (
                    "   n/a (degraded: oversubscribed)".to_string(),
                    "null".to_string(),
                )
            } else {
                let speedup = serial_median / med;
                (format!("speedup {speedup:>5.2}x"), format!("{speedup:.4}"))
            };
            println!(
                "{label:<10} devices={devices:<4} workers={workers}  median {med:>8.3}s  {speedup_str}"
            );
            rows.push(format!(
                "{{\"topology\": \"{label}\", \"devices\": {devices}, \"workers\": {workers}, \
                 \"median_seconds\": {med:.6}, \"speedup_vs_serial\": {speedup_json}, \
                 \"degraded\": {degraded}, \"converged_at_ns\": {}}}",
                baseline
                    .as_ref()
                    .and_then(|b| b.converged_at)
                    .map_or(0, SimTime::as_nanos)
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"convergence_scaling\",\n  \"bench_meta\": {},\n  \
         \"quiet_seconds\": {},\n  \
         \"samples\": {samples},\n  \"hardware_threads\": {hw},\n  \"results\": [\n    {}\n  ],\n  \
         \"counters\": [\n    {}\n  ]\n}}\n",
        crystalnet_bench::meta::bench_meta_json(*WORKERS.last().unwrap()),
        QUIET.as_nanos() / 1_000_000_000,
        rows.join(",\n    "),
        counter_rows.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_convergence.json");
    std::fs::write(path, json).expect("write BENCH_convergence.json");
    println!("wrote {path}");
}
