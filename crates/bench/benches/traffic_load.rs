//! Traffic-plane load bench: what deterministic flow generation costs,
//! and proof the congestion watchdogs fire under a real fault.
//!
//! For each Table 3 scale band the bench runs the same workload twice —
//! mockup plus 30 virtual seconds under an injected ToR-uplink flap —
//! once with the traffic plane off (the baseline: exactly the
//! pre-traffic engine) and once with a 1s-period flow load whose link
//! capacity is starved so the redistributed load over-subscribes.
//! Prints a table and writes `BENCH_traffic.json` at the workspace
//! root.
//!
//! Two gates run before any timing is accepted:
//!
//! 1. **FIB equivalence** — the traffic-on run's FIBs must be
//!    bit-identical to the traffic-off run's. Flows observe the
//!    dataplane and must never perturb the control plane.
//! 2. **Congestion witness** — the traffic-on run must produce at least
//!    one congestion incident (link over-subscription, ECMP
//!    polarisation, or flow SLO breach) *correlated to the injected
//!    fault*. A load model too light to trip its own watchdogs under a
//!    starved link is not exercising the subsystem.
//!
//! Timings are the median of `CRYSTALNET_REPS` samples (default 3,
//! min 2). Both paths run single-worker so the overhead ratio is pure
//! event-loop cost.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_dataplane::Fib;
use crystalnet_net::{ClosParams, ClosTopology, DeviceId};
use std::collections::BTreeMap;
use std::time::Instant;

fn bands() -> Vec<(&'static str, ClosTopology)> {
    let mut v = vec![
        ("s-dc", ClosParams::s_dc().build()),
        ("m-dc", ClosParams::m_dc().build()),
    ];
    if std::env::var("CRYSTALNET_FULL").is_ok_and(|x| x == "1") {
        v.push(("l-dc", ClosParams::l_dc().scaled_pods(0.25).build()));
    }
    v
}

fn prep_for(topo: &ClosTopology) -> Arc<PrepareOutput> {
    Arc::new(prepare(
        &topo.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    ))
}

fn fib_map(emu: &Emulation) -> BTreeMap<DeviceId, Fib> {
    let mut devs: Vec<DeviceId> = emu.sandboxes.keys().copied().collect();
    devs.sort_unstable_by_key(|d| d.0);
    devs.into_iter()
        .filter_map(|d| emu.sim.os(d).map(|os| (d, os.fib().clone())))
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Virtual time spent watching the converged fabric after mockup.
const WATCH: SimDuration = SimDuration::from_secs(30);

/// A 1s-period flow load over starved links: 64 kbit/s → 8000 bytes of
/// capacity per period, so a single 20 kB response flow
/// over-subscribes whatever link carries it.
fn load_cfg() -> TrafficConfig {
    TrafficConfig {
        link_capacity_bps: 64_000,
        ..TrafficConfig::with_period(SimDuration::from_secs(1))
    }
}

/// The injected fault both runs share: a ToR uplink flaps down at +3s
/// and back up at +13s, concentrating the pod's flows on the surviving
/// uplinks while the transient lasts.
fn flap_plan(topo: &ClosTopology) -> FaultPlan {
    let tor = topo.pods[0].tors[0];
    let (lid, _, _) = topo
        .topo
        .neighbors(tor)
        .next()
        .expect("a ToR has an uplink");
    FaultPlan::default().then(
        SimDuration::from_secs(3),
        FaultKind::LinkFlapBurst {
            link: lid,
            flaps: 1,
            period: SimDuration::from_secs(10),
        },
    )
}

fn run_once(prep: &Arc<PrepareOutput>, topo: &ClosTopology, traffic: bool) -> (f64, Emulation) {
    let mut b = MockupOptions::builder()
        .seed(42)
        .workers(1)
        .fault_plan(flap_plan(topo));
    if traffic {
        b = b.traffic_config(load_cfg());
    }
    let t = Instant::now();
    let mut emu = mockup(Arc::clone(prep), b.build());
    emu.advance(WATCH);
    (t.elapsed().as_secs_f64(), emu)
}

fn is_congestion(kind: &IncidentKind) -> bool {
    matches!(
        kind,
        IncidentKind::LinkOversubscribed { .. }
            | IncidentKind::EcmpPolarisation { .. }
            | IncidentKind::FlowSloBreach { .. }
    )
}

struct Row {
    band: String,
    devices: usize,
    baseline_secs: f64,
    traffic_secs: f64,
    flows_sent: u64,
    flows_delivered: u64,
    flows_rerouted: u64,
    bytes_offered: u64,
    congestion_incidents: u64,
    correlated_incidents: u64,
}

fn main() {
    let samples: usize = std::env::var("CRYSTALNET_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(2);
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("traffic_load: {samples} samples/row, {hw} hardware thread(s), {WATCH:?} watched");

    let mut rows: Vec<Row> = Vec::new();
    for (band, topo) in bands() {
        let devices = topo.topo.device_count();
        let prep = prep_for(&topo);

        let mut baseline_times = Vec::with_capacity(samples);
        let mut traffic_times = Vec::with_capacity(samples);
        let mut last: Option<(TrafficReport, u64, u64)> = None;
        for rep in 0..samples {
            let (off_secs, off) = run_once(&prep, &topo, false);
            let (on_secs, on) = run_once(&prep, &topo, true);

            // Gate 1 before the timing counts: flows must leave every
            // FIB exactly as the traffic-off run left it.
            if rep == 0 {
                assert_eq!(
                    fib_map(&on),
                    fib_map(&off),
                    "{band}: the traffic plane perturbed the control plane"
                );
            }
            let congestion: Vec<_> = on
                .incidents()
                .into_iter()
                .filter(|ci| is_congestion(&ci.incident.kind))
                .collect();
            let correlated = congestion
                .iter()
                .filter(|ci| matches!(&ci.cause, Some(IncidentCause::Fault { .. })))
                .count() as u64;
            // Gate 2: the starved fabric must trip its own watchdogs,
            // and the timeline must tie at least one firing to the flap.
            assert!(
                !congestion.is_empty(),
                "{band}: no congestion incident under a starved link"
            );
            assert!(
                correlated > 0,
                "{band}: no congestion incident correlated to the injected fault"
            );
            last = Some((on.pull_traffic(), congestion.len() as u64, correlated));

            baseline_times.push(off_secs);
            traffic_times.push(on_secs);
        }

        let (traffic, congestion_incidents, correlated_incidents) =
            last.expect("at least two reps ran");
        rows.push(Row {
            band: band.to_string(),
            devices,
            baseline_secs: median(baseline_times),
            traffic_secs: median(traffic_times),
            flows_sent: traffic.flows_sent,
            flows_delivered: traffic.flows_delivered,
            flows_rerouted: traffic.flows_rerouted,
            bytes_offered: traffic.bytes_offered,
            congestion_incidents,
            correlated_incidents,
        });
    }

    let mut json_rows = Vec::new();
    for r in &rows {
        let overhead_pct = (r.traffic_secs / r.baseline_secs.max(1e-9) - 1.0) * 100.0;
        println!(
            "{:<6} devices={:<5} baseline {:>8.3}s  traffic-on {:>8.3}s  overhead {:>6.1}%  \
             flows={}/{} rerouted={} congestion={} correlated={}",
            r.band,
            r.devices,
            r.baseline_secs,
            r.traffic_secs,
            overhead_pct,
            r.flows_delivered,
            r.flows_sent,
            r.flows_rerouted,
            r.congestion_incidents,
            r.correlated_incidents
        );
        json_rows.push(format!(
            "{{\"band\": \"{}\", \"devices\": {}, \"baseline_seconds\": {:.6}, \
             \"traffic_seconds\": {:.6}, \"overhead_pct\": {:.2}, \"flows_sent\": {}, \
             \"flows_delivered\": {}, \"flows_rerouted\": {}, \"bytes_offered\": {}, \
             \"congestion_incidents\": {}, \"correlated_incidents\": {}}}",
            r.band,
            r.devices,
            r.baseline_secs,
            r.traffic_secs,
            overhead_pct,
            r.flows_sent,
            r.flows_delivered,
            r.flows_rerouted,
            r.bytes_offered,
            r.congestion_incidents,
            r.correlated_incidents
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"traffic_load\",\n  \"bench_meta\": {},\n  \
         \"baseline_definition\": \"mockup wall + 30 virtual seconds watched under a ToR-uplink flap, traffic off\",\n  \
         \"traffic_definition\": \"same with a 1s-period flow load over 64 kbit/s links\",\n  \
         \"samples\": {samples},\n  \"hardware_threads\": {hw},\n  \"results\": [\n    {}\n  ]\n}}\n",
        crystalnet_bench::meta::bench_meta_json(1),
        json_rows.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_traffic.json");
    std::fs::write(path, json).expect("write BENCH_traffic.json");
    println!("wrote {path}");
}
