//! Health-plane overhead bench: what the continuous probe mesh costs.
//!
//! For each Table 3 scale band the bench runs the same workload twice —
//! mockup plus 30 virtual seconds of watching the converged fabric —
//! once with the health plane off (the baseline: exactly the pre-probe
//! engine) and once with a 1s-period probe mesh on. Prints a table and
//! writes `BENCH_health.json` at the workspace root.
//!
//! Before any timing is accepted, the probes-on run's FIBs are checked
//! bit-identical to the probes-off run's — the probe mesh observes the
//! control plane and must never perturb it. A fast probe round that
//! leaked into convergence is not a result.
//!
//! Timings are the median of `CRYSTALNET_REPS` samples (default 3,
//! min 2). Both paths run single-worker so the overhead ratio is pure
//! event-loop cost; `hardware_threads` is recorded so rows from
//! oversubscribed CI runners can be told apart.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_dataplane::Fib;
use crystalnet_net::{ClosParams, ClosTopology, DeviceId};
use std::collections::BTreeMap;
use std::time::Instant;

fn bands() -> Vec<(&'static str, ClosTopology)> {
    let mut v = vec![
        ("s-dc", ClosParams::s_dc().build()),
        ("m-dc", ClosParams::m_dc().build()),
    ];
    if std::env::var("CRYSTALNET_FULL").is_ok_and(|x| x == "1") {
        v.push(("l-dc", ClosParams::l_dc().scaled_pods(0.25).build()));
    }
    v
}

fn prep_for(topo: &ClosTopology) -> Arc<PrepareOutput> {
    Arc::new(prepare(
        &topo.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    ))
}

fn fib_map(emu: &Emulation) -> BTreeMap<DeviceId, Fib> {
    let mut devs: Vec<DeviceId> = emu.sandboxes.keys().copied().collect();
    devs.sort_unstable_by_key(|d| d.0);
    devs.into_iter()
        .filter_map(|d| emu.sim.os(d).map(|os| (d, os.fib().clone())))
        .collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Virtual time spent watching the converged fabric after mockup.
const WATCH: SimDuration = SimDuration::from_secs(30);

fn run_once(prep: &Arc<PrepareOutput>, health: bool) -> (f64, Emulation) {
    let mut b = MockupOptions::builder().seed(42).workers(1);
    if health {
        b = b.health(SimDuration::from_secs(1));
    }
    let t = Instant::now();
    let mut emu = mockup(Arc::clone(prep), b.build());
    emu.advance(WATCH);
    (t.elapsed().as_secs_f64(), emu)
}

struct Row {
    band: String,
    devices: usize,
    baseline_secs: f64,
    probes_secs: f64,
    probes_sent: u64,
    incidents: u64,
}

fn main() {
    let samples: usize = std::env::var("CRYSTALNET_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(2);
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("health_overhead: {samples} samples/row, {hw} hardware thread(s), {WATCH:?} watched");

    let mut rows: Vec<Row> = Vec::new();
    for (band, topo) in bands() {
        let devices = topo.topo.device_count();
        let prep = prep_for(&topo);

        let mut baseline_times = Vec::with_capacity(samples);
        let mut probes_times = Vec::with_capacity(samples);
        let mut probes_sent = 0;
        let mut incidents = 0;
        for rep in 0..samples {
            let (off_secs, off) = run_once(&prep, false);
            let (on_secs, on) = run_once(&prep, true);

            // Equivalence gate before the timing counts: the probe mesh
            // must leave every FIB exactly as the probes-off run left it.
            if rep == 0 {
                assert_eq!(
                    fib_map(&on),
                    fib_map(&off),
                    "{band}: the probe mesh perturbed the control plane"
                );
            }
            let health = on.pull_health();
            probes_sent = health.probes_sent;
            incidents = health.incident_count;

            baseline_times.push(off_secs);
            probes_times.push(on_secs);
        }

        rows.push(Row {
            band: band.to_string(),
            devices,
            baseline_secs: median(baseline_times),
            probes_secs: median(probes_times),
            probes_sent,
            incidents,
        });
    }

    let mut json_rows = Vec::new();
    for r in &rows {
        let overhead_pct = (r.probes_secs / r.baseline_secs.max(1e-9) - 1.0) * 100.0;
        println!(
            "{:<6} devices={:<5} baseline {:>8.3}s  probes-on {:>8.3}s  overhead {:>6.1}%  \
             probes_sent={:<7} incidents={}",
            r.band,
            r.devices,
            r.baseline_secs,
            r.probes_secs,
            overhead_pct,
            r.probes_sent,
            r.incidents
        );
        json_rows.push(format!(
            "{{\"band\": \"{}\", \"devices\": {}, \"baseline_seconds\": {:.6}, \
             \"probes_seconds\": {:.6}, \"overhead_pct\": {:.2}, \"probes_sent\": {}, \
             \"incidents\": {}}}",
            r.band,
            r.devices,
            r.baseline_secs,
            r.probes_secs,
            overhead_pct,
            r.probes_sent,
            r.incidents
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"health_overhead\",\n  \"bench_meta\": {},\n  \
         \"baseline_definition\": \"mockup wall + 30 virtual seconds watched, health off\",\n  \
         \"probes_definition\": \"same with a 1s-period probe mesh on\",\n  \
         \"samples\": {samples},\n  \"hardware_threads\": {hw},\n  \"results\": [\n    {}\n  ]\n}}\n",
        crystalnet_bench::meta::bench_meta_json(1),
        json_rows.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_health.json");
    std::fs::write(path, json).expect("write BENCH_health.json");
    println!("wrote {path}");
}
