//! Incremental-rehearsal bench: warm re-convergence through the
//! fork/commit session API vs the full-settle path (rebuild the
//! mockup, apply the change the old way, settle) across Table 3 scale
//! bands.
//!
//! Prints a table and writes `BENCH_incremental.json` at the workspace
//! root. Every incremental run is checked FIB-identical to the full-path
//! emulation after each change before its timing is accepted.
//!
//! `full_seconds` = measured mockup wall + post-change settle wall: the
//! cost an operator pays without warm-start. `CRYSTALNET_FULL=1` adds the
//! L-DC band (at 0.25 pod scale unless also `CRYSTALNET_LDC_FULL=1`).
//!
//! `dirty_devices` is the scoped ripple *prediction*: the config-acl row
//! must stay leaf-local and the link-down row pod-local, while the
//! network-origination row legitimately floods the band. The FIB
//! equivalence check diffs the full scope regardless, so a short
//! prediction can never hide a mutation.

use crystalnet::prelude::*;
use crystalnet::PlanOptions;
use crystalnet_dataplane::Fib;
use crystalnet_net::{ClosParams, ClosTopology, DeviceId};
use std::collections::BTreeMap;
use std::time::Instant;

fn bands() -> Vec<(&'static str, ClosTopology)> {
    let mut v = vec![
        ("s-dc", ClosParams::s_dc().build()),
        ("m-dc", ClosParams::m_dc().build()),
    ];
    if std::env::var("CRYSTALNET_FULL").is_ok_and(|x| x == "1") {
        let params = if std::env::var("CRYSTALNET_LDC_FULL").is_ok_and(|x| x == "1") {
            ClosParams::l_dc()
        } else {
            ClosParams::l_dc().scaled_pods(0.25)
        };
        v.push(("l-dc", params.build()));
    }
    v
}

fn build(topo: &ClosTopology, seed: u64) -> (Emulation, f64) {
    let prep = prepare(
        &topo.topo,
        &[],
        BoundaryMode::WholeNetwork,
        SpeakerSource::OriginatedOnly,
        &PlanOptions::default(),
    );
    let start = Instant::now();
    let emu = mockup(Arc::new(prep), MockupOptions::builder().seed(seed).build());
    (emu, start.elapsed().as_secs_f64())
}

/// Applies `set` on the warm emulation through the session API — fork,
/// rehearse on the child, commit the child back — the supported
/// incremental path (the in-place `apply_change` wrapper is deprecated).
fn apply_warm(warm: &mut Emulation, set: &ChangeSet) -> ConvergenceDelta {
    let mut fork = warm.fork();
    let delta = fork.apply(set).expect("change applies on fork");
    fork.commit(warm);
    delta
}

fn fib_map(emu: &Emulation) -> BTreeMap<DeviceId, Fib> {
    let mut devs: Vec<DeviceId> = emu.sandboxes.keys().copied().collect();
    devs.sort_unstable_by_key(|d| d.0);
    devs.into_iter()
        .filter_map(|d| emu.sim.os(d).map(|os| (d, os.fib().clone())))
        .collect()
}

struct Row {
    band: String,
    devices: usize,
    change: &'static str,
    dirty: usize,
    fib_changes: usize,
    incremental_secs: f64,
    full_secs: f64,
    incremental_virtual_ns: u64,
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    for (band, topo) in bands() {
        let devices = topo.topo.device_count();
        // One warm emulation takes the incremental path; a second takes
        // the pre-existing full path (reload/disconnect + full settle).
        let (mut warm, warm_mockup_secs) = build(&topo, 42);
        let (mut full, full_mockup_secs) = build(&topo, 42);
        println!(
            "{band:<6} devices={devices:<5} mockup {warm_mockup_secs:>7.3}s / {full_mockup_secs:>7.3}s"
        );

        // -- Change 1: ACL-only edit on a ToR. Filtering packets cannot
        // change what the device announces or selects, so the predicted
        // dirty set must stay leaf-local (ToR + direct neighbors), not
        // flood the band — this row is the pruning regression gauge.
        let tor = topo.pods[0].tors[0];
        let mut cfg = warm
            .prep
            .configs
            .iter()
            .find(|(d, _)| *d == tor)
            .map(|(_, c)| c.clone())
            .expect("tor has a config");
        cfg.acls.insert(
            "ACL-BENCH".into(),
            crystalnet_config::Acl {
                entries: vec![crystalnet_config::AclEntry {
                    seq: 10,
                    action: crystalnet_config::Action::Deny,
                    src: "10.66.0.0/24".parse().unwrap(),
                    dst: "0.0.0.0/0".parse().unwrap(),
                }],
            },
        );
        let delta = apply_warm(&mut warm, &ChangeSet::new().config_update(tor, cfg.clone()));
        assert!(
            delta.dirty.len() < devices,
            "{band}: ACL-only edit must not dirty the whole band"
        );
        let t = Instant::now();
        full.reload(tor, cfg.clone(), false);
        full.settle().expect("full path settles");
        let full_secs = full_mockup_secs + t.elapsed().as_secs_f64();
        assert_eq!(
            fib_map(&warm),
            fib_map(&full),
            "{band}: config-acl FIB mismatch"
        );
        rows.push(Row {
            band: band.to_string(),
            devices,
            change: "config-acl",
            dirty: delta.dirty.len(),
            fib_changes: delta.total_fib_changes(),
            incremental_secs: delta.wall.as_secs_f64(),
            full_secs,
            incremental_virtual_ns: delta.virtual_cost.as_nanos(),
        });

        // -- Change 2: config update (announce a new network on the same
        // ToR) — a new origination legitimately reaches every device, so
        // this row's dirty set stays fabric-wide.
        cfg.bgp
            .as_mut()
            .expect("generated configs run BGP")
            .networks
            .push("10.200.0.0/24".parse().unwrap());

        let delta = apply_warm(&mut warm, &ChangeSet::new().config_update(tor, cfg.clone()));
        let t = Instant::now();
        full.reload(tor, cfg, false);
        full.settle().expect("full path settles");
        let full_secs = full_mockup_secs + t.elapsed().as_secs_f64();
        assert_eq!(
            fib_map(&warm),
            fib_map(&full),
            "{band}: config-update FIB mismatch"
        );
        rows.push(Row {
            band: band.to_string(),
            devices,
            change: "config-update",
            dirty: delta.dirty.len(),
            fib_changes: delta.total_fib_changes(),
            incremental_secs: delta.wall.as_secs_f64(),
            full_secs,
            incremental_virtual_ns: delta.virtual_cost.as_nanos(),
        });

        // -- Change 3: link down (first pod-0 leaf uplink) — ECMP
        // redundancy bounds the ripple to the pod plus the shared
        // spine/border tier, so dirty stays below the device count on
        // multi-pod bands.
        let leaf = topo.pods[0].leaves[0];
        let lid = topo
            .topo
            .links()
            .find(|(_, l)| l.a.device == leaf || l.b.device == leaf)
            .map(|(lid, _)| lid)
            .expect("leaf has links");
        let delta = apply_warm(&mut warm, &ChangeSet::new().link_down(lid));
        let t = Instant::now();
        full.disconnect(lid);
        full.settle().expect("full path settles");
        let full_secs = full_mockup_secs + t.elapsed().as_secs_f64();
        assert_eq!(
            fib_map(&warm),
            fib_map(&full),
            "{band}: link-down FIB mismatch"
        );
        rows.push(Row {
            band: band.to_string(),
            devices,
            change: "link-down",
            dirty: delta.dirty.len(),
            fib_changes: delta.total_fib_changes(),
            incremental_secs: delta.wall.as_secs_f64(),
            full_secs,
            incremental_virtual_ns: delta.virtual_cost.as_nanos(),
        });
    }

    let mut json_rows = Vec::new();
    for r in &rows {
        let speedup = r.full_secs / r.incremental_secs.max(1e-9);
        println!(
            "{:<6} {:<14} dirty={:<5} fib_changes={:<6} incremental {:>8.3}s  full {:>8.3}s  speedup {:>7.1}x",
            r.band, r.change, r.dirty, r.fib_changes, r.incremental_secs, r.full_secs, speedup
        );
        json_rows.push(format!(
            "{{\"band\": \"{}\", \"devices\": {}, \"change\": \"{}\", \"dirty_devices\": {}, \
             \"fib_changes\": {}, \"incremental_seconds\": {:.6}, \"full_seconds\": {:.6}, \
             \"speedup\": {:.2}, \"incremental_virtual_ns\": {}}}",
            r.band,
            r.devices,
            r.change,
            r.dirty,
            r.fib_changes,
            r.incremental_secs,
            r.full_secs,
            speedup,
            r.incremental_virtual_ns
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"incremental\",\n  \"bench_meta\": {},\n  \"full_definition\": \
         \"mockup wall + post-change settle wall\",\n  \"results\": [\n    {}\n  ]\n}}\n",
        crystalnet_bench::meta::bench_meta_json(1),
        json_rows.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(path, json).expect("write BENCH_incremental.json");
    println!("wrote {path}");
}
