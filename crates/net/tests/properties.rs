//! Property-based tests for addressing and topology invariants.

use crystalnet_net::{ClosParams, Ipv4Addr, Ipv4Prefix, Role};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Ipv4Prefix::new(Ipv4Addr(a), l))
}

proptest! {
    /// Parsing the display form of a prefix round-trips.
    #[test]
    fn prefix_display_parse_round_trip(p in arb_prefix()) {
        let back: Ipv4Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(p, back);
    }

    /// A prefix covers exactly its own subnets.
    #[test]
    fn cover_is_reflexive_and_antisymmetric(a in arb_prefix(), b in arb_prefix()) {
        prop_assert!(a.covers(a));
        if a.covers(b) && b.covers(a) {
            prop_assert_eq!(a, b);
        }
        // Overlap is symmetric.
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
    }

    /// `aggregate` yields a prefix covering every input.
    #[test]
    fn aggregate_covers_all_inputs(ps in prop::collection::vec(arb_prefix(), 1..20)) {
        let agg = Ipv4Prefix::aggregate(&ps).unwrap();
        for p in &ps {
            prop_assert!(agg.covers(*p), "{} does not cover {}", agg, p);
        }
    }

    /// `split` partitions a prefix: children cover disjoint halves.
    #[test]
    fn split_partitions(p in (any::<u32>(), 0u8..32).prop_map(|(a, l)| Ipv4Prefix::new(Ipv4Addr(a), l))) {
        let (lo, hi) = p.split().unwrap();
        prop_assert!(p.covers(lo) && p.covers(hi));
        prop_assert!(!lo.overlaps(hi));
        prop_assert_eq!(lo.parent().unwrap(), p);
        prop_assert_eq!(hi.parent().unwrap(), p);
    }

    /// `subnets(n)` yields disjoint prefixes that tile the parent.
    #[test]
    fn subnets_tile_parent(l in 8u8..=24, extra in 1u8..=4, seed in any::<u32>()) {
        let parent = Ipv4Prefix::new(Ipv4Addr(seed), l);
        let subs = parent.subnets(l + extra);
        prop_assert_eq!(subs.len(), 1usize << extra);
        for (i, s) in subs.iter().enumerate() {
            prop_assert!(parent.covers(*s));
            for t in &subs[i + 1..] {
                prop_assert!(!s.overlaps(*t));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated Clos fabrics are structurally sound for any parameter mix:
    /// layered links only, unique names, valid /31 endpoints.
    #[test]
    fn clos_generator_structural_invariants(
        borders in 1u32..6,
        groups in 1u32..4,
        spines in 1u32..6,
        pods in 1u32..8,
        tors in 1u32..6,
    ) {
        let params = ClosParams {
            name: "t".into(),
            borders,
            spine_groups: groups,
            spines_per_group: spines,
            pods,
            leaves_per_pod: 2,
            tors_per_pod: tors,
            groups_per_pod: groups.min(2),
            ext_peers_per_border: 1,
            ext_prefixes_per_peer: 2,
        };
        let dc = params.build();
        let topo = &dc.topo;
        // Links only connect adjacent layers (no valley links).
        for (_, link) in topo.links() {
            let ra = topo.device(link.a.device).role;
            let rb = topo.device(link.b.device).role;
            let pair = if ra.layer() <= rb.layer() { (ra, rb) } else { (rb, ra) };
            prop_assert!(matches!(
                pair,
                (Role::Tor, Role::Leaf)
                    | (Role::Leaf, Role::Spine)
                    | (Role::Spine, Role::Border)
                    | (Role::Border, Role::External)
            ), "unexpected link {:?}", pair);
        }
        // Every interface endpoint resolves and carries an address.
        for (id, dev) in topo.devices() {
            for (lid, local, remote) in topo.neighbors(id) {
                let link = topo.link(lid);
                prop_assert!(link.end_on(id).is_some());
                prop_assert_eq!(local.device, id);
                let my = dev.ifaces[local.iface as usize].addr.unwrap();
                let peer = topo.device(remote.device).ifaces[remote.iface as usize]
                    .addr
                    .unwrap();
                prop_assert!(my.same_subnet(peer));
                prop_assert_ne!(my.addr, peer.addr);
            }
        }
    }
}
