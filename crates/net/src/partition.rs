//! Deterministic k-way topology partitioning for the parallel convergence
//! runtime.
//!
//! The conservative parallel executor steps each shard's devices on its own
//! worker thread and only synchronizes at virtual-time window barriers, so
//! the cost of parallelism is proportional to the number of *cut links*
//! (frames crossing shards pay a channel hop, and the window length is
//! bounded by the minimum cut-link latency). This module computes the
//! device → shard assignment: balanced shards, few cut links, and — for the
//! orchestrator — "groups" (devices hosted on one VM, which share a CPU
//! server) that must land in the same shard.
//!
//! Everything here is deterministic: iteration is over index order, never
//! hash order, so the same topology always yields the same partition — a
//! precondition for the executor's bit-identical-replay contract.

use crate::topology::Topology;
use crate::types::{DeviceId, LinkId};

/// A device → shard assignment with its cut set.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Shard index per device (indexed by `DeviceId::index`).
    pub shard_of: Vec<usize>,
    /// Devices per shard, each sorted by id.
    pub shards: Vec<Vec<DeviceId>>,
    /// Links whose endpoints live in different shards, sorted by id.
    pub cut_links: Vec<LinkId>,
}

impl Partition {
    /// Number of shards (some may be empty on degenerate inputs).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding `dev`.
    #[must_use]
    pub fn shard(&self, dev: DeviceId) -> usize {
        self.shard_of[dev.index()]
    }

    /// Whether `link` crosses shards.
    #[must_use]
    pub fn is_cut(&self, link: LinkId) -> bool {
        self.cut_links.binary_search(&link).is_ok()
    }

    /// The k×k per-shard-pair lookahead matrix, row-major: entry
    /// `[i * k + j]` is the minimum `link_delay_ns` over cut links with
    /// one endpoint in shard `i` and the other in shard `j`, or
    /// `u64::MAX` when no link crosses that pair (no direct influence
    /// path). The diagonal is `0`. Links are undirected, so the matrix
    /// is symmetric; the parallel executor closes it over transitive
    /// paths itself.
    ///
    /// This replaces the old global min-cut scalar: shard pairs that do
    /// not share an edge no longer bound each other's windows at all,
    /// so unrelated pods of a Clos fabric stop serializing each other.
    #[must_use]
    pub fn lookahead_matrix_nanos(
        &self,
        topo: &Topology,
        link_delay_ns: impl Fn(LinkId) -> u64,
    ) -> Vec<u64> {
        let k = self.shard_count();
        let mut m = vec![u64::MAX; k * k];
        for i in 0..k {
            m[i * k + i] = 0;
        }
        for &lid in &self.cut_links {
            let link = topo.link(lid);
            let (a, b) = (self.shard(link.a.device), self.shard(link.b.device));
            let d = link_delay_ns(lid);
            let e = &mut m[a * k + b];
            *e = (*e).min(d);
            let e = &mut m[b * k + a];
            *e = (*e).min(d);
        }
        m
    }
}

/// Partitions `topo` into `shards` balanced shards minimizing cut links.
///
/// Each device is its own unit; use [`partition_grouped`] when devices must
/// stay together (VM co-residency).
#[must_use]
pub fn partition(topo: &Topology, shards: usize) -> Partition {
    let group_of: Vec<u32> = (0..topo.device_count() as u32).collect();
    partition_grouped(topo, shards, &group_of)
}

/// Partitions `topo` with a co-residency constraint: devices sharing a
/// `group_of` value are assigned to the same shard (the orchestrator passes
/// the hosting VM index, so a VM's CPU server is only ever touched by one
/// worker thread).
///
/// Algorithm: collapse groups into weighted super-nodes, grow shards by
/// breadth-first expansion from deterministic seeds (keeping shards
/// connected where the graph allows), then run a few boundary-refinement
/// passes moving super-nodes to the neighboring shard with the highest
/// edge gain, subject to a balance bound. O(passes × edges).
///
/// # Panics
///
/// Panics if `shards == 0` or `group_of.len() != topo.device_count()`.
#[must_use]
pub fn partition_grouped(topo: &Topology, shards: usize, group_of: &[u32]) -> Partition {
    assert!(shards > 0, "shard count must be positive");
    let n = topo.device_count();
    assert_eq!(group_of.len(), n, "one group id per device");

    // ------------------------------------------------------------------
    // Collapse groups into super-nodes with dense indices.
    // ------------------------------------------------------------------
    let mut group_index: Vec<Option<usize>> = Vec::new();
    let mut node_of_dev: Vec<usize> = vec![0; n];
    let mut weight: Vec<u64> = Vec::new();
    let mut members: Vec<Vec<DeviceId>> = Vec::new();
    for dev in 0..n {
        let g = group_of[dev] as usize;
        if g >= group_index.len() {
            group_index.resize(g + 1, None);
        }
        let node = *group_index[g].get_or_insert_with(|| {
            weight.push(0);
            members.push(Vec::new());
            weight.len() - 1
        });
        node_of_dev[dev] = node;
        weight[node] += 1;
        members[node].push(DeviceId(dev as u32));
    }
    let nodes = weight.len();

    // Super-node adjacency: (neighbor, multiplicity), index-sorted.
    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); nodes];
    {
        let mut pair_edges: Vec<(usize, usize)> = topo
            .links()
            .map(|(_, l)| {
                let (a, b) = (
                    node_of_dev[l.a.device.index()],
                    node_of_dev[l.b.device.index()],
                );
                (a.min(b), a.max(b))
            })
            .filter(|(a, b)| a != b)
            .collect();
        pair_edges.sort_unstable();
        let mut i = 0;
        while i < pair_edges.len() {
            let (a, b) = pair_edges[i];
            let mut mult = 0;
            while i < pair_edges.len() && pair_edges[i] == (a, b) {
                mult += 1;
                i += 1;
            }
            adj[a].push((b, mult));
            adj[b].push((a, mult));
        }
        for list in &mut adj {
            list.sort_unstable();
        }
    }

    let total: u64 = weight.iter().sum();
    let k = shards.min(nodes.max(1));
    let target = total.div_ceil(k as u64);
    // Headroom above the ideal shard weight during growth/refinement.
    let cap = target + target.div_ceil(8);

    // ------------------------------------------------------------------
    // Growth: BFS-fill shards from deterministic seeds.
    // ------------------------------------------------------------------
    let mut shard_of_node: Vec<usize> = vec![usize::MAX; nodes];
    let mut shard_weight: Vec<u64> = vec![0; k];
    let mut frontier: Vec<usize> = Vec::new();
    let mut next_seed = 0usize;
    for (s, shard_w) in shard_weight.iter_mut().enumerate() {
        // Seed: the lowest-index unassigned super-node.
        while next_seed < nodes && shard_of_node[next_seed] != usize::MAX {
            next_seed += 1;
        }
        if next_seed >= nodes {
            break;
        }
        frontier.clear();
        frontier.push(next_seed);
        let mut head = 0;
        while head < frontier.len() && *shard_w < target {
            let node = frontier[head];
            head += 1;
            if shard_of_node[node] != usize::MAX {
                continue;
            }
            shard_of_node[node] = s;
            *shard_w += weight[node];
            for &(nb, _) in &adj[node] {
                if shard_of_node[nb] == usize::MAX {
                    frontier.push(nb);
                }
            }
        }
    }
    // Leftovers (disconnected components, rounding): lightest shard first.
    for node in 0..nodes {
        if shard_of_node[node] == usize::MAX {
            let s = (0..k).min_by_key(|&s| (shard_weight[s], s)).unwrap_or(0);
            shard_of_node[node] = s;
            shard_weight[s] += weight[node];
        }
    }

    // ------------------------------------------------------------------
    // Refinement: greedy boundary moves with positive edge gain.
    // ------------------------------------------------------------------
    let mut edges_to = vec![0u64; k];
    for _pass in 0..4 {
        let mut moved = false;
        for node in 0..nodes {
            let cur = shard_of_node[node];
            if shard_weight[cur] == weight[node] {
                continue; // never empty a shard
            }
            edges_to.iter_mut().for_each(|e| *e = 0);
            for &(nb, mult) in &adj[node] {
                edges_to[shard_of_node[nb]] += mult;
            }
            // Best destination: highest gain, lowest index breaks ties.
            let mut best = cur;
            let mut best_gain = 0i64;
            for s in 0..k {
                if s == cur || shard_weight[s] + weight[node] > cap {
                    continue;
                }
                let gain = edges_to[s] as i64 - edges_to[cur] as i64;
                if gain > best_gain {
                    best = s;
                    best_gain = gain;
                }
            }
            if best != cur {
                shard_weight[cur] -= weight[node];
                shard_weight[best] += weight[node];
                shard_of_node[node] = best;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    // ------------------------------------------------------------------
    // Project back to devices.
    // ------------------------------------------------------------------
    let mut shard_of = vec![0usize; n];
    let mut out_shards: Vec<Vec<DeviceId>> = vec![Vec::new(); k];
    for node in 0..nodes {
        let s = shard_of_node[node];
        for &dev in &members[node] {
            shard_of[dev.index()] = s;
            out_shards[s].push(dev);
        }
    }
    for list in &mut out_shards {
        list.sort_unstable();
    }
    let cut_links: Vec<LinkId> = topo
        .links()
        .filter(|(_, l)| shard_of[l.a.device.index()] != shard_of[l.b.device.index()])
        .map(|(lid, _)| lid)
        .collect();

    Partition {
        shard_of,
        shards: out_shards,
        cut_links,
    }
}

/// Number of topology links joining `displaced` devices to `resident`
/// devices — the affinity score the health monitor uses when it must
/// re-place a quarantined VM's sandboxes on a spare.
///
/// Every displaced↔resident link becomes an *intra-VM* veth instead of an
/// inter-VM VXLAN tunnel if the displaced devices land next to those
/// residents, so higher affinity means cheaper re-placement and less
/// cross-VM traffic after recovery. Links internal to `displaced` count
/// for free (they stay intra-VM wherever the set lands together).
#[must_use]
pub fn placement_affinity(topo: &Topology, displaced: &[DeviceId], resident: &[DeviceId]) -> u64 {
    let mut is_displaced = vec![false; topo.device_count()];
    let mut is_resident = vec![false; topo.device_count()];
    for d in displaced {
        is_displaced[d.index()] = true;
    }
    for d in resident {
        is_resident[d.index()] = true;
    }
    topo.links()
        .filter(|(_, l)| {
            let (a, b) = (l.a.device.index(), l.b.device.index());
            (is_displaced[a] && is_resident[b]) || (is_displaced[b] && is_resident[a])
        })
        .count() as u64
}

/// Picks the best spare home for `displaced` among `candidates` (each a
/// candidate VM's resident device set): highest [`placement_affinity`]
/// wins, lowest candidate index breaks ties. Deterministic, like
/// everything else in this module. Returns `None` when there are no
/// candidates.
#[must_use]
pub fn best_spare(
    topo: &Topology,
    displaced: &[DeviceId],
    candidates: &[&[DeviceId]],
) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .map(|(i, resident)| (i, placement_affinity(topo, displaced, resident)))
        .max_by(|(ia, sa), (ib, sb)| sa.cmp(sb).then(ib.cmp(ia)))
        .map(|(i, _)| i)
}

/// How far a change's routing-update ripple can travel before the
/// fabric's path redundancy absorbs it.
///
/// A Clos fabric reaches every pod prefix over an ECMP set of core
/// paths, so many perturbations are invisible outside the perturbed
/// pod: a remote device's best-path *set* survives even though path
/// attributes inside the pod churned. The scope encodes that structural
/// argument per seed; topologies without pod labels (every
/// `Device::pod` is `None`) degrade to the unpruned flood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RippleScope {
    /// The seed and its immediate neighbors: the change replays or
    /// re-filters existing announcements but cannot alter what anyone
    /// selects (e.g. a policy-only soft refresh — sessions survive,
    /// peers replay unchanged inputs).
    Neighbors,
    /// The seed's pod plus the pod-less core tier (spines, borders,
    /// attached speakers): remote pods keep their ECMP next-hop sets
    /// because redundant core paths to the affected prefixes remain
    /// (e.g. a single intra-pod link drain).
    PodAndCore,
    /// Unbounded: reachability information itself changed — an
    /// origination appeared or vanished, a device was lost, a speaker
    /// script swapped — so every FIB may gain or lose an entry.
    Fabric,
}

/// Grows the *dirty region* of an incremental change: every device in
/// `scope` reachable from `seeds` without traversing *through* a barrier
/// device.
///
/// The walk models routing-update ripple: a perturbed device re-announces
/// toward its neighbors, which re-announce onward, so reachability over
/// the adjacency graph is a conservative superset of the devices whose
/// RIB/FIB can change. `barriers` are devices that terminate the ripple —
/// static speakers, which record what they hear but never react or
/// reflect (§5.1) — they are *included* in the region when adjacent to
/// it (their received-log changes) but never expanded through. Devices
/// outside `scope` (not emulated, already removed) are skipped entirely.
///
/// Every seed floods ([`RippleScope::Fabric`]); use
/// [`dirty_region_scoped`] when the change's blast radius is
/// structurally bounded.
#[must_use]
pub fn dirty_region(
    topo: &Topology,
    scope: &std::collections::BTreeSet<DeviceId>,
    seeds: &[DeviceId],
    barriers: &std::collections::BTreeSet<DeviceId>,
) -> std::collections::BTreeSet<DeviceId> {
    let seeds: Vec<(DeviceId, RippleScope)> =
        seeds.iter().map(|&d| (d, RippleScope::Fabric)).collect();
    dirty_region_scoped(topo, scope, &seeds, barriers)
}

/// [`dirty_region`] with a per-seed [`RippleScope`] bound.
///
/// [`RippleScope::Neighbors`] seeds contribute themselves and their
/// in-scope neighbors. [`RippleScope::PodAndCore`] seeds BFS-expand, but
/// the frontier never enters a device labeled with a pod that contains
/// no `PodAndCore`/`Fabric` seed — the walk covers the seeds' own pods
/// and the pod-less core tier. [`RippleScope::Fabric`] seeds flood.
/// Barrier devices absorb in every mode (included when reached, never
/// expanded through, unless they are themselves seeds).
///
/// Deterministic: the frontier is processed in id order and the result
/// is an ordered set.
#[must_use]
pub fn dirty_region_scoped(
    topo: &Topology,
    scope: &std::collections::BTreeSet<DeviceId>,
    seeds: &[(DeviceId, RippleScope)],
    barriers: &std::collections::BTreeSet<DeviceId>,
) -> std::collections::BTreeSet<DeviceId> {
    use std::collections::{BTreeMap, BTreeSet, VecDeque};
    // Widest scope per seed device wins when a device seeds twice.
    let mut seed_scope: BTreeMap<DeviceId, RippleScope> = BTreeMap::new();
    for &(d, s) in seeds {
        if !scope.contains(&d) {
            continue;
        }
        let e = seed_scope.entry(d).or_insert(s);
        *e = (*e).max(s);
    }
    // Pods that expanding walks may enter.
    let seed_pods: BTreeSet<u32> = seed_scope
        .iter()
        .filter(|(_, s)| **s >= RippleScope::PodAndCore)
        .filter_map(|(d, _)| topo.device(*d).pod)
        .collect();
    // Only multi-hop pod-bounded walks are pod-constrained; a Neighbors
    // seed reaches its one-hop neighbors regardless of pod labels.
    let admissible = |dev: DeviceId, s: RippleScope| -> bool {
        s != RippleScope::PodAndCore || topo.device(dev).pod.is_none_or(|p| seed_pods.contains(&p))
    };

    let mut region: BTreeSet<DeviceId> = seed_scope.keys().copied().collect();
    let mut frontier: VecDeque<(DeviceId, RippleScope)> =
        seed_scope.iter().map(|(&d, &s)| (d, s)).collect();
    // Widest scope a device has been visited at; re-expansion only on
    // upgrade (e.g. a Fabric walk reaching a device first seen by a
    // pod-bounded walk).
    let mut visited: BTreeMap<DeviceId, RippleScope> = seed_scope.clone();
    while let Some((dev, s)) = frontier.pop_front() {
        if barriers.contains(&dev) && !seed_scope.contains_key(&dev) {
            continue; // speakers absorb the ripple
        }
        for next in topo.neighbor_devices(dev) {
            if !scope.contains(&next) {
                continue;
            }
            // Barriers are absorbed regardless of pod (their received
            // log changes); anything else must pass the scope rule.
            if !barriers.contains(&next) && !admissible(next, s) {
                continue;
            }
            let widened = match visited.get(&next) {
                Some(&prev) if prev >= s => false,
                _ => {
                    visited.insert(next, s);
                    true
                }
            };
            region.insert(next);
            if widened && s > RippleScope::Neighbors {
                frontier.push_back((next, s));
            }
        }
    }
    region
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use crate::topology::{Device, P2pAllocator};
    use crate::types::{Asn, Role, Vendor};

    fn line_topo(n: usize) -> Topology {
        let mut topo = Topology::new();
        let mut p2p = P2pAllocator::new("100.64.0.0/10".parse().unwrap());
        let ids: Vec<DeviceId> = (0..n)
            .map(|i| {
                topo.add_device(Device {
                    name: format!("d{i}"),
                    role: Role::Tor,
                    vendor: Vendor::CtnrA,
                    asn: Asn(65000 + i as u32),
                    loopback: Ipv4Addr::new(172, 16, (i / 256) as u8, (i % 256) as u8),
                    mgmt_addr: Ipv4Addr::new(192, 168, (i / 256) as u8, (i % 256) as u8),
                    originated: vec![],
                    ifaces: vec![],
                    pod: None,
                })
                .unwrap()
            })
            .collect();
        for w in ids.windows(2) {
            topo.connect_p2p(w[0], w[1], &mut p2p).unwrap();
        }
        topo
    }

    #[test]
    fn covers_every_device_exactly_once() {
        let topo = line_topo(10);
        let p = partition(&topo, 3);
        let mut seen = [false; 10];
        for (s, devs) in p.shards.iter().enumerate() {
            for d in devs {
                assert!(!seen[d.index()]);
                seen[d.index()] = true;
                assert_eq!(p.shard(*d), s);
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn line_graph_halves_with_one_cut() {
        let topo = line_topo(8);
        let p = partition(&topo, 2);
        assert_eq!(p.cut_links.len(), 1);
        assert_eq!(p.shards[0].len(), 4);
        assert_eq!(p.shards[1].len(), 4);
    }

    #[test]
    fn is_deterministic() {
        let topo = line_topo(17);
        let a = partition(&topo, 4);
        let b = partition(&topo, 4);
        assert_eq!(a.shard_of, b.shard_of);
        assert_eq!(a.cut_links, b.cut_links);
    }

    #[test]
    fn groups_stay_together() {
        let topo = line_topo(12);
        // Pair up adjacent devices: groups 0,0,1,1,2,2,...
        let groups: Vec<u32> = (0..12u32).map(|i| i / 2).collect();
        let p = partition_grouped(&topo, 3, &groups);
        for pair in 0..6 {
            assert_eq!(
                p.shard(DeviceId(pair * 2)),
                p.shard(DeviceId(pair * 2 + 1)),
                "group {pair} split across shards"
            );
        }
    }

    #[test]
    fn more_shards_than_devices_is_fine() {
        let topo = line_topo(3);
        let p = partition(&topo, 8);
        assert!(p.shard_count() <= 3);
        let mut all: Vec<DeviceId> = p.shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn spare_placement_prefers_topological_neighbors() {
        // Line 0-1-2-3-4-5: displace {2,3}. Candidate A holds {0,1}
        // (link 1-2 touches the displaced set), candidate B holds {4,5}
        // (link 3-4), candidate C is empty.
        let topo = line_topo(6);
        let displaced = [DeviceId(2), DeviceId(3)];
        let a = [DeviceId(0), DeviceId(1)];
        let b = [DeviceId(4), DeviceId(5)];
        let c: [DeviceId; 0] = [];
        assert_eq!(placement_affinity(&topo, &displaced, &a), 1);
        assert_eq!(placement_affinity(&topo, &displaced, &b), 1);
        assert_eq!(placement_affinity(&topo, &displaced, &c), 0);
        // Equal affinity: the lower candidate index wins — determinism.
        assert_eq!(best_spare(&topo, &displaced, &[&a, &b, &c]), Some(0));
        assert_eq!(best_spare(&topo, &displaced, &[&c, &b]), Some(1));
        assert_eq!(best_spare(&topo, &displaced, &[]), None);
    }

    #[test]
    fn dirty_region_stops_at_barriers() {
        // Line 0-1-2-3-4: scope everything, barrier at 2.
        let topo = line_topo(5);
        let scope: std::collections::BTreeSet<DeviceId> =
            (0..5).map(|i| DeviceId(i as u32)).collect();
        let barriers: std::collections::BTreeSet<DeviceId> = [DeviceId(2)].into();
        // Seed at 0: ripple reaches the barrier but not past it.
        let r = dirty_region(&topo, &scope, &[DeviceId(0)], &barriers);
        let got: Vec<u32> = r.iter().map(|d| d.0).collect();
        assert_eq!(got, vec![0, 1, 2]);
        // Seed *at* the barrier (a speaker swap): it expands outward.
        let r = dirty_region(&topo, &scope, &[DeviceId(2)], &barriers);
        let got: Vec<u32> = r.iter().map(|d| d.0).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        // Seeds outside the scope are dropped; empty seeds, empty region.
        let small: std::collections::BTreeSet<DeviceId> = [DeviceId(0), DeviceId(1)].into();
        let r = dirty_region(&topo, &small, &[DeviceId(4)], &barriers);
        assert!(r.is_empty());
        let r = dirty_region(&topo, &scope, &[], &barriers);
        assert!(r.is_empty());
    }

    #[test]
    fn single_shard_has_no_cut() {
        let topo = line_topo(5);
        let p = partition(&topo, 1);
        assert!(p.cut_links.is_empty());
        assert_eq!(p.shards[0].len(), 5);
        assert!(!p.is_cut(LinkId(0)));
    }

    #[test]
    fn lookahead_matrix_reflects_cut_structure() {
        // Line 0-1-2-3-4-5-6-7 in two shards: exactly one cut link.
        let topo = line_topo(8);
        let p = partition(&topo, 2);
        assert_eq!(p.cut_links.len(), 1);
        let m = p.lookahead_matrix_nanos(&topo, |l| 1_000 + u64::from(l.0));
        let cut = p.cut_links[0];
        assert_eq!(m.len(), 4);
        assert_eq!(m[0], 0);
        assert_eq!(m[3], 0);
        assert_eq!(m[1], 1_000 + u64::from(cut.0));
        assert_eq!(m[1], m[2], "undirected links give a symmetric matrix");

        // Three shards on a line: the end shards share no edge, so their
        // pair entry is the no-path sentinel — they must not bound each
        // other's windows directly.
        let topo = line_topo(9);
        let p = partition(&topo, 3);
        let k = p.shard_count();
        assert_eq!(k, 3);
        let m = p.lookahead_matrix_nanos(&topo, |_| 5_000);
        let (s0, s2) = (p.shard(DeviceId(0)), p.shard(DeviceId(8)));
        assert_eq!(m[s0 * k + s2], u64::MAX);
        assert_eq!(m[s2 * k + s0], u64::MAX);
        let s1 = p.shard(DeviceId(4));
        assert_eq!(m[s0 * k + s1], 5_000);
        assert_eq!(m[s1 * k + s2], 5_000);
    }

    /// Two pods (tor+leaf each, pod-labeled) over two pod-less spines,
    /// plus a pod-less speaker hanging off spine 4.
    ///
    /// ```text
    ///   0=tor(p0) — 1=leaf(p0) — 4=spine — 6=speaker
    ///                        \  /    |
    ///                         \/     |
    ///                         /\     |
    ///   2=tor(p1) — 3=leaf(p1) — 5=spine
    /// ```
    fn pod_topo() -> Topology {
        let mut topo = Topology::new();
        let mut p2p = P2pAllocator::new("100.64.0.0/10".parse().unwrap());
        let pods = [Some(0), Some(0), Some(1), Some(1), None, None, None];
        let ids: Vec<DeviceId> = pods
            .iter()
            .enumerate()
            .map(|(i, &pod)| {
                topo.add_device(Device {
                    name: format!("d{i}"),
                    role: if pod.is_some() {
                        Role::Tor
                    } else {
                        Role::Spine
                    },
                    vendor: Vendor::CtnrA,
                    asn: Asn(65100 + i as u32),
                    loopback: Ipv4Addr::new(172, 17, 0, i as u8),
                    mgmt_addr: Ipv4Addr::new(192, 168, 1, i as u8),
                    originated: vec![],
                    ifaces: vec![],
                    pod,
                })
                .unwrap()
            })
            .collect();
        for (a, b) in [(0, 1), (2, 3), (1, 4), (1, 5), (3, 4), (3, 5), (4, 6)] {
            topo.connect_p2p(ids[a], ids[b], &mut p2p).unwrap();
        }
        topo
    }

    #[test]
    fn scoped_dirty_region_prunes_remote_pods() {
        let topo = pod_topo();
        let scope: std::collections::BTreeSet<DeviceId> =
            (0..7).map(|i| DeviceId(i as u32)).collect();
        let barriers: std::collections::BTreeSet<DeviceId> = [DeviceId(6)].into();

        // Neighbors: a policy-only refresh on tor 0 touches the tor and
        // its leaf, nothing else.
        let r = dirty_region_scoped(
            &topo,
            &scope,
            &[(DeviceId(0), RippleScope::Neighbors)],
            &barriers,
        );
        let got: Vec<u32> = r.iter().map(|d| d.0).collect();
        assert_eq!(got, vec![0, 1]);

        // PodAndCore: a pod-0 perturbation covers pod 0 and the core
        // tier (spines + adjacent speaker) but never enters pod 1.
        let r = dirty_region_scoped(
            &topo,
            &scope,
            &[(DeviceId(0), RippleScope::PodAndCore)],
            &barriers,
        );
        let got: Vec<u32> = r.iter().map(|d| d.0).collect();
        assert_eq!(got, vec![0, 1, 4, 5, 6]);

        // Fabric floods — identical to the unscoped walk.
        let r = dirty_region_scoped(
            &topo,
            &scope,
            &[(DeviceId(0), RippleScope::Fabric)],
            &barriers,
        );
        assert_eq!(r, dirty_region(&topo, &scope, &[DeviceId(0)], &barriers));
        assert_eq!(r.len(), 7);

        // The widest scope wins when a device seeds twice.
        let r = dirty_region_scoped(
            &topo,
            &scope,
            &[
                (DeviceId(0), RippleScope::Neighbors),
                (DeviceId(0), RippleScope::Fabric),
            ],
            &barriers,
        );
        assert_eq!(r.len(), 7);

        // Unlabeled topologies cannot be pruned: PodAndCore degrades to
        // the flood because every device is core-tier.
        let line = line_topo(5);
        let line_scope: std::collections::BTreeSet<DeviceId> =
            (0..5).map(|i| DeviceId(i as u32)).collect();
        let none = std::collections::BTreeSet::new();
        let r = dirty_region_scoped(
            &line,
            &line_scope,
            &[(DeviceId(2), RippleScope::PodAndCore)],
            &none,
        );
        assert_eq!(r.len(), 5);
    }
}
