//! IPv4 and Ethernet addressing primitives.
//!
//! CrystalNet emulates production networks whose configurations, routing
//! state and packets are all IPv4-centric (the paper's networks are
//! BGP-over-IPv4 Clos fabrics), so this module implements compact `u32`
//! based address and prefix types with the operations the rest of the
//! system needs: containment, overlap, subnetting and aggregation.

use core::fmt;
use core::str::FromStr;
use serde::{Deserialize, Serialize};

/// Errors produced when parsing addresses and prefixes from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrParseError {
    /// The text is not a dotted quad.
    BadAddress(String),
    /// The prefix length is missing or not a number.
    BadLength(String),
    /// The prefix length exceeds 32.
    LengthOutOfRange(u8),
}

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrParseError::BadAddress(s) => write!(f, "invalid IPv4 address `{s}`"),
            AddrParseError::BadLength(s) => write!(f, "invalid prefix length `{s}`"),
            AddrParseError::LengthOutOfRange(l) => write!(f, "prefix length {l} > 32"),
        }
    }
}

impl std::error::Error for AddrParseError {}

/// An IPv4 address stored as a host-order `u32`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// The all-zero address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);

    /// Builds an address from dotted-quad octets.
    #[must_use]
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | (d as u32))
    }

    /// The four octets, most significant first.
    #[must_use]
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Address plus `n`, saturating at the top of the space.
    #[must_use]
    pub fn offset(self, n: u32) -> Ipv4Addr {
        Ipv4Addr(self.0.saturating_add(n))
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl FromStr for Ipv4Addr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for slot in &mut octets {
            let part = parts
                .next()
                .ok_or_else(|| AddrParseError::BadAddress(s.to_string()))?;
            *slot = part
                .parse()
                .map_err(|_| AddrParseError::BadAddress(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError::BadAddress(s.to_string()));
        }
        Ok(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// An IPv4 prefix in CIDR form, always stored canonically (host bits zero).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ipv4Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Ipv4Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix {
        addr: Ipv4Addr::UNSPECIFIED,
        len: 0,
    };

    /// Builds a prefix, masking off host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    #[must_use]
    pub fn new(addr: Ipv4Addr, len: u8) -> Ipv4Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        Ipv4Prefix {
            addr: Ipv4Addr(addr.0 & Self::mask(len)),
            len,
        }
    }

    /// A /32 host route for `addr`.
    #[must_use]
    pub fn host(addr: Ipv4Addr) -> Ipv4Prefix {
        Ipv4Prefix::new(addr, 32)
    }

    /// The network mask for a prefix length.
    #[must_use]
    pub const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address.
    #[must_use]
    pub fn network(self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length.
    #[must_use]
    #[allow(clippy::len_without_is_empty)] // a prefix length, not a container
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the default route.
    #[must_use]
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    #[must_use]
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        (addr.0 & Self::mask(self.len)) == self.addr.0
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    #[must_use]
    pub fn covers(self, other: Ipv4Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Whether the two prefixes share any address.
    #[must_use]
    pub fn overlaps(self, other: Ipv4Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The `i`-th host address inside the prefix (0 = network address).
    #[must_use]
    pub fn nth(self, i: u32) -> Ipv4Addr {
        self.addr.offset(i)
    }

    /// Splits into the two child prefixes of length `len + 1`.
    ///
    /// Returns `None` for a /32.
    #[must_use]
    pub fn split(self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let child_len = self.len + 1;
        let low = Ipv4Prefix::new(self.addr, child_len);
        let high = Ipv4Prefix::new(Ipv4Addr(self.addr.0 | (1 << (32 - child_len))), child_len);
        Some((low, high))
    }

    /// Enumerates the `2^(new_len - len)` subnets of length `new_len`.
    ///
    /// Returns an empty vector if `new_len < len` or `new_len > 32`.
    #[must_use]
    pub fn subnets(self, new_len: u8) -> Vec<Ipv4Prefix> {
        if new_len < self.len || new_len > 32 {
            return Vec::new();
        }
        let count = 1u64 << (new_len - self.len);
        let step = 1u64 << (32 - new_len);
        (0..count)
            .map(|i| Ipv4Prefix::new(Ipv4Addr(self.addr.0 + (i * step) as u32), new_len))
            .collect()
    }

    /// The immediate parent prefix (one bit shorter), or `None` for /0.
    #[must_use]
    pub fn parent(self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Ipv4Prefix::new(self.addr, self.len - 1))
        }
    }

    /// The smallest single prefix covering all `prefixes`
    /// (the BGP `aggregate-address` computation of Figure 1).
    ///
    /// Returns `None` for an empty input.
    #[must_use]
    pub fn aggregate(prefixes: &[Ipv4Prefix]) -> Option<Ipv4Prefix> {
        let mut iter = prefixes.iter();
        let mut acc = *iter.next()?;
        for p in iter {
            while !acc.covers(*p) {
                acc = acc.parent()?;
                if acc.is_default() {
                    break;
                }
            }
        }
        Some(acc)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| AddrParseError::BadLength(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse()?;
        let len: u8 = len
            .parse()
            .map_err(|_| AddrParseError::BadLength(s.to_string()))?;
        if len > 32 {
            return Err(AddrParseError::LengthOutOfRange(len));
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

/// An interface address: a host address *plus* its subnet length, without
/// canonicalization (unlike [`Ipv4Prefix`], the host bits are preserved).
///
/// This is what appears in `ip address 100.64.0.1/31` interface
/// configuration lines.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ipv4Cidr {
    /// The host address.
    pub addr: Ipv4Addr,
    /// The subnet length.
    pub len: u8,
}

impl Ipv4Cidr {
    /// Builds an interface address.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    #[must_use]
    pub fn new(addr: Ipv4Addr, len: u8) -> Ipv4Cidr {
        assert!(len <= 32, "prefix length {len} > 32");
        Ipv4Cidr { addr, len }
    }

    /// The subnet this address lives in.
    #[must_use]
    pub fn network(self) -> Ipv4Prefix {
        Ipv4Prefix::new(self.addr, self.len)
    }

    /// Whether `other` is in the same subnet.
    #[must_use]
    pub fn same_subnet(self, other: Ipv4Cidr) -> bool {
        self.len == other.len && self.network() == other.network()
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Ipv4Cidr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| AddrParseError::BadLength(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse()?;
        let len: u8 = len
            .parse()
            .map_err(|_| AddrParseError::BadLength(s.to_string()))?;
        if len > 32 {
            return Err(AddrParseError::LengthOutOfRange(len));
        }
        Ok(Ipv4Cidr { addr, len })
    }
}

/// A 48-bit Ethernet MAC address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally-administered unicast MAC derived from a 32-bit id.
    #[must_use]
    pub fn from_id(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x1c, b[0], b[1], b[2], b[3]])
    }

    /// Whether this is the broadcast address.
    #[must_use]
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn address_round_trip() {
        let a: Ipv4Addr = "10.1.2.3".parse().unwrap();
        assert_eq!(a, Ipv4Addr::new(10, 1, 2, 3));
        assert_eq!(a.to_string(), "10.1.2.3");
        assert_eq!(a.octets(), [10, 1, 2, 3]);
    }

    #[test]
    fn address_parse_errors() {
        assert!("10.1.2".parse::<Ipv4Addr>().is_err());
        assert!("10.1.2.3.4".parse::<Ipv4Addr>().is_err());
        assert!("10.1.2.256".parse::<Ipv4Addr>().is_err());
        assert!("ten.one.two.three".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let pfx = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 24);
        assert_eq!(pfx.to_string(), "10.1.2.0/24");
        assert_eq!(p("10.1.2.3/24"), p("10.1.2.0/24"));
    }

    #[test]
    fn prefix_parse_errors() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn containment_and_overlap() {
        let pfx = p("10.1.0.0/16");
        assert!(pfx.contains("10.1.255.255".parse().unwrap()));
        assert!(!pfx.contains("10.2.0.0".parse().unwrap()));
        assert!(pfx.covers(p("10.1.2.0/24")));
        assert!(!p("10.1.2.0/24").covers(pfx));
        assert!(pfx.overlaps(p("10.1.2.0/24")));
        assert!(pfx.overlaps(p("10.0.0.0/8")));
        assert!(!pfx.overlaps(p("10.2.0.0/16")));
        assert!(Ipv4Prefix::DEFAULT.covers(pfx));
    }

    #[test]
    fn split_and_subnets() {
        let (lo, hi) = p("10.0.0.0/8").split().unwrap();
        assert_eq!(lo, p("10.0.0.0/9"));
        assert_eq!(hi, p("10.128.0.0/9"));
        assert!(p("1.2.3.4/32").split().is_none());

        // The paper's software-load-balancer incident: a /16 broken into
        // 256 x /24 blocks.
        let blocks = p("10.1.0.0/16").subnets(24);
        assert_eq!(blocks.len(), 256);
        assert_eq!(blocks[0], p("10.1.0.0/24"));
        assert_eq!(blocks[255], p("10.1.255.0/24"));
        assert!(p("10.0.0.0/16").subnets(8).is_empty());
    }

    #[test]
    fn aggregation_fig1() {
        // Figure 1: P1 and P2 aggregate to P3.
        let p1 = p("10.1.0.0/17");
        let p2 = p("10.1.128.0/17");
        assert_eq!(Ipv4Prefix::aggregate(&[p1, p2]), Some(p("10.1.0.0/16")));
        assert_eq!(Ipv4Prefix::aggregate(&[p1]), Some(p1));
        assert_eq!(Ipv4Prefix::aggregate(&[]), None);
        assert_eq!(
            Ipv4Prefix::aggregate(&[p("10.0.0.0/16"), p("10.255.0.0/16")]),
            Some(p("10.0.0.0/8"))
        );
    }

    #[test]
    fn parent_chain_terminates() {
        let mut pfx = p("10.1.2.3/32");
        let mut steps = 0;
        while let Some(parent) = pfx.parent() {
            pfx = parent;
            steps += 1;
        }
        assert_eq!(steps, 32);
        assert!(pfx.is_default());
    }

    #[test]
    fn mac_formatting() {
        let m = MacAddr::from_id(0xdead_beef);
        assert_eq!(m.to_string(), "02:1c:de:ad:be:ef");
        assert!(!m.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }
}
