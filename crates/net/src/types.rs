//! Core identity types: AS numbers, device roles, vendors, sandbox kinds.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A BGP autonomous-system number (4-byte capable, RFC 6793).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Where a device sits in the network (the paper's Clos layers, Table 3,
/// plus the WAN/regional layers of the §7 Case-1 migration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Top-of-rack switch (connects servers).
    Tor,
    /// Pod leaf switch.
    Leaf,
    /// Spine switch.
    Spine,
    /// Datacenter border router (uplinks to WAN / regional backbone).
    Border,
    /// Regional backbone router (Case 1).
    Regional,
    /// Legacy inter-DC WAN core router (Case 1).
    WanCore,
    /// Software load balancer or other middlebox appliance.
    Middlebox,
    /// A device outside the administrative domain (ISP, peer).
    External,
}

impl Role {
    /// The Clos layer index used by Algorithm 1's upward BFS
    /// (larger is higher; border and above count as "highest").
    #[must_use]
    pub fn layer(self) -> u8 {
        match self {
            Role::Tor => 0,
            Role::Leaf => 1,
            Role::Spine => 2,
            Role::Border => 3,
            Role::Regional => 4,
            Role::WanCore => 5,
            Role::Middlebox => 0,
            Role::External => 6,
        }
    }

    /// Short lowercase label used in generated device hostnames.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Role::Tor => "tor",
            Role::Leaf => "leaf",
            Role::Spine => "spine",
            Role::Border => "border",
            Role::Regional => "rbb",
            Role::WanCore => "wan",
            Role::Middlebox => "mbx",
            Role::External => "ext",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The firmware vendor of a device (§4.1 anonymizes them the same way:
/// two container-based vendors and two VM-based vendors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// Large commercial vendor shipping a containerized image.
    CtnrA,
    /// The open-source switch OS (SONiC-like); containerized, needs an
    /// external ASIC emulator for forwarding.
    CtnrB,
    /// Commercial vendor shipping only a VM image.
    VmA,
    /// Commercial vendor shipping only a VM image.
    VmB,
}

impl Vendor {
    /// Whether the vendor ships a container image (vs a VM image that must
    /// run nested inside a container, §4.1).
    #[must_use]
    pub fn is_containerized(self) -> bool {
        matches!(self, Vendor::CtnrA | Vendor::CtnrB)
    }

    /// All vendors, for exhaustive iteration in tests and planners.
    pub const ALL: [Vendor; 4] = [Vendor::CtnrA, Vendor::CtnrB, Vendor::VmA, Vendor::VmB];
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Vendor::CtnrA => "CTNR-A",
            Vendor::CtnrB => "CTNR-B",
            Vendor::VmA => "VM-A",
            Vendor::VmB => "VM-B",
        };
        f.write_str(s)
    }
}

/// How a device participates in an emulation (§5.1's classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmulationClass {
    /// Emulated, with all neighbors emulated too.
    Internal,
    /// Emulated, but has at least one non-emulated neighbor.
    Boundary,
    /// Not emulated; replaced by a static speaker agent because it
    /// neighbors a boundary device.
    Speaker,
    /// Not emulated and not adjacent to the emulation.
    External,
}

/// A compact handle to a device inside a [`crate::Topology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The array index behind the handle.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev#{}", self.0)
    }
}

/// A compact handle to a link inside a [`crate::Topology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The array index behind the handle.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link#{}", self.0)
    }
}

/// One end of a link: a device plus its interface index on that device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// The device.
    pub device: DeviceId,
    /// Index into the device's interface table.
    pub iface: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_are_ordered_bottom_up() {
        assert!(Role::Tor.layer() < Role::Leaf.layer());
        assert!(Role::Leaf.layer() < Role::Spine.layer());
        assert!(Role::Spine.layer() < Role::Border.layer());
        assert!(Role::Border.layer() < Role::Regional.layer());
        assert!(Role::Regional.layer() < Role::WanCore.layer());
    }

    #[test]
    fn vendor_packaging() {
        assert!(Vendor::CtnrA.is_containerized());
        assert!(Vendor::CtnrB.is_containerized());
        assert!(!Vendor::VmA.is_containerized());
        assert!(!Vendor::VmB.is_containerized());
        assert_eq!(Vendor::ALL.len(), 4);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Asn(65000).to_string(), "AS65000");
        assert_eq!(Role::Tor.to_string(), "tor");
        assert_eq!(Vendor::CtnrB.to_string(), "CTNR-B");
        assert_eq!(DeviceId(3).to_string(), "dev#3");
        assert_eq!(LinkId(9).to_string(), "link#9");
    }
}
