//! Clos datacenter topology generators.
//!
//! CrystalNet's evaluation (§8.1, Table 3) runs on three production Clos
//! datacenters: L-DC, M-DC and S-DC. This module generates synthetic
//! networks matching those scale bands, with the structural properties the
//! safe-boundary theory relies on:
//!
//! * layered topology (ToR → Leaf → Spine → Border), no valley links,
//! * RFC 7938-style ASN plan: all borders share one AS, all spines share
//!   one AS, leaves share a per-pod AS, ToRs get unique 4-byte ASes —
//!   so BGP loop prevention supplies the valley-freedom that makes
//!   Algorithm 1's output safe (Proposition 5.2),
//! * spine *groups*, each homed to a subset of the borders, with every pod
//!   uplinked to a contiguous window of groups — reproducing the paper's
//!   Table 4 situation where one pod's safe boundary contains only a
//!   fraction of the spine and border layers.
//!
//! ToRs run the open-source CTNR-B image; Leaf/Spine/Border run CTNR-A,
//! exactly as in §8.1.

use crate::addr::{Ipv4Addr, Ipv4Prefix};
use crate::topology::{Device, P2pAllocator, Topology};
use crate::types::{Asn, DeviceId, Role, Vendor};
use serde::{Deserialize, Serialize};

/// ASN plan constants (RFC 7938 private ranges).
pub mod asn {
    use crate::types::Asn;

    /// All datacenter border routers share this AS (§5.2: "the border
    /// switches ... usually share a single AS number").
    pub const BORDER: Asn = Asn(65000);
    /// All spines share this AS.
    pub const SPINE: Asn = Asn(65100);
    /// Leaves of pod `p` share `LEAF_BASE + p`.
    pub const LEAF_BASE: u32 = 65200;
    /// ToR `t` (global index) gets the 4-byte AS `TOR_BASE + t`.
    pub const TOR_BASE: u32 = 4_200_000_000;
    /// External WAN peers (speaker candidates) get `EXternal_BASE + i`,
    /// all distinct per Proposition 5.2's requirement.
    pub const EXTERNAL_BASE: u32 = 64600;

    /// The leaf AS for pod `p`.
    #[must_use]
    pub fn leaf(pod: u32) -> Asn {
        Asn(LEAF_BASE + pod)
    }

    /// The ToR AS for global ToR index `t`.
    #[must_use]
    pub fn tor(index: u32) -> Asn {
        Asn(TOR_BASE + index)
    }

    /// The AS of the `i`-th external WAN peer.
    #[must_use]
    pub fn external(index: u32) -> Asn {
        Asn(EXTERNAL_BASE + index)
    }
}

/// Parameters of a generated Clos datacenter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosParams {
    /// Network name, used as hostname prefix (`l-dc`, ...).
    pub name: String,
    /// Number of border routers.
    pub borders: u32,
    /// Number of spine groups.
    pub spine_groups: u32,
    /// Spines per group.
    pub spines_per_group: u32,
    /// Number of pods.
    pub pods: u32,
    /// Leaves per pod (= uplink planes per pod).
    pub leaves_per_pod: u32,
    /// ToRs per pod.
    pub tors_per_pod: u32,
    /// Spine groups each pod connects to (window size).
    pub groups_per_pod: u32,
    /// External WAN peers attached per border router.
    pub ext_peers_per_border: u32,
    /// Synthetic "internet" prefixes announced by each external peer.
    pub ext_prefixes_per_peer: u32,
}

impl ClosParams {
    /// L-DC: the paper's largest datacenter — O(10) borders, O(100)
    /// spines (112), O(1000) leaves, O(3000) ToRs, O(20M) routes.
    #[must_use]
    pub fn l_dc() -> Self {
        ClosParams {
            name: "l-dc".into(),
            borders: 8,
            spine_groups: 8,
            spines_per_group: 14,
            pods: 224,
            leaves_per_pod: 4,
            tors_per_pod: 16,
            groups_per_pod: 4,
            ext_peers_per_border: 1,
            ext_prefixes_per_peer: 8,
        }
    }

    /// M-DC: a median datacenter — O(1M) routes band.
    #[must_use]
    pub fn m_dc() -> Self {
        ClosParams {
            name: "m-dc".into(),
            borders: 4,
            spine_groups: 2,
            spines_per_group: 8,
            pods: 24,
            leaves_per_pod: 4,
            tors_per_pod: 16,
            groups_per_pod: 2,
            ext_peers_per_border: 1,
            ext_prefixes_per_peer: 8,
        }
    }

    /// S-DC: a small datacenter — O(50K) routes band.
    #[must_use]
    pub fn s_dc() -> Self {
        ClosParams {
            name: "s-dc".into(),
            borders: 2,
            spine_groups: 1,
            spines_per_group: 4,
            pods: 6,
            leaves_per_pod: 4,
            tors_per_pod: 16,
            groups_per_pod: 1,
            ext_peers_per_border: 1,
            ext_prefixes_per_peer: 8,
        }
    }

    /// Scales the pod count by `factor` (at least one pod), keeping the
    /// aggregation layers intact. Used to run L-DC-shaped experiments at
    /// reduced cost; documented in EXPERIMENTS.md.
    #[must_use]
    pub fn scaled_pods(mut self, factor: f64) -> Self {
        self.pods = ((self.pods as f64 * factor).round() as u32).max(1);
        self
    }

    /// Total devices this parameterization will generate (excluding
    /// external peers).
    #[must_use]
    pub fn internal_device_count(&self) -> u32 {
        self.borders
            + self.spine_groups * self.spines_per_group
            + self.pods * (self.leaves_per_pod + self.tors_per_pod)
    }

    /// Builds the topology.
    ///
    /// # Panics
    ///
    /// Panics if `groups_per_pod > spine_groups` or any count is zero.
    #[must_use]
    pub fn build(&self) -> ClosTopology {
        assert!(self.groups_per_pod <= self.spine_groups);
        assert!(
            self.borders > 0
                && self.spine_groups > 0
                && self.spines_per_group > 0
                && self.pods > 0
                && self.leaves_per_pod > 0
                && self.tors_per_pod > 0
                && self.groups_per_pod > 0
        );
        let mut topo = Topology::new();
        let mut p2p = P2pAllocator::new("100.64.0.0/10".parse().unwrap());
        let mut dev_seq = 0u32;

        let mut mk = |topo: &mut Topology,
                      name: String,
                      role: Role,
                      vendor: Vendor,
                      asn: Asn,
                      pod: Option<u32>| {
            let idx = dev_seq;
            dev_seq += 1;
            let loopback = Ipv4Addr::new(172, 16, (idx >> 8) as u8, (idx & 0xff) as u8);
            let mgmt = Ipv4Addr::new(192, 168, (idx >> 8) as u8, (idx & 0xff) as u8);
            let dev = Device {
                name,
                role,
                vendor,
                asn,
                loopback,
                mgmt_addr: mgmt,
                originated: vec![Ipv4Prefix::host(loopback)],
                ifaces: vec![],
                pod,
            };
            topo.add_device(dev).expect("generated names are unique")
        };

        // Borders.
        let borders: Vec<DeviceId> = (0..self.borders)
            .map(|b| {
                mk(
                    &mut topo,
                    format!("{}-border{b}", self.name),
                    Role::Border,
                    Vendor::CtnrA,
                    asn::BORDER,
                    None,
                )
            })
            .collect();

        // Spine groups; each group homes to a border subset.
        let mut spine_groups: Vec<Vec<DeviceId>> = Vec::new();
        for g in 0..self.spine_groups {
            let group: Vec<DeviceId> = (0..self.spines_per_group)
                .map(|s| {
                    mk(
                        &mut topo,
                        format!("{}-sg{g}-spine{s}", self.name),
                        Role::Spine,
                        Vendor::CtnrA,
                        asn::SPINE,
                        None,
                    )
                })
                .collect();
            for &spine in &group {
                for &border in self.group_borders(g, &borders) {
                    topo.connect_p2p(spine, border, &mut p2p)
                        .expect("fresh interfaces");
                }
            }
            spine_groups.push(group);
        }

        // Pods.
        let mut pods: Vec<Pod> = Vec::new();
        let mut tor_seq = 0u32;
        for p in 0..self.pods {
            let groups: Vec<u32> = (0..self.groups_per_pod)
                .map(|i| (p + i) % self.spine_groups)
                .collect();
            let leaves: Vec<DeviceId> = (0..self.leaves_per_pod)
                .map(|l| {
                    mk(
                        &mut topo,
                        format!("{}-pod{p:03}-leaf{l}", self.name),
                        Role::Leaf,
                        Vendor::CtnrA,
                        asn::leaf(p),
                        Some(p),
                    )
                })
                .collect();
            // Leaf `l` uplinks to all spines in its plane's group.
            for (l, &leaf) in leaves.iter().enumerate() {
                let g = groups[l % groups.len()] as usize;
                for &spine in &spine_groups[g] {
                    topo.connect_p2p(leaf, spine, &mut p2p)
                        .expect("fresh interfaces");
                }
            }
            let tors: Vec<DeviceId> = (0..self.tors_per_pod)
                .map(|t| {
                    let idx = tor_seq;
                    tor_seq += 1;
                    let id = mk(
                        &mut topo,
                        format!("{}-pod{p:03}-tor{t:02}", self.name),
                        Role::Tor,
                        Vendor::CtnrB,
                        asn::tor(idx),
                        Some(p),
                    );
                    // Server subnet: one /24 per ToR out of 10.0.0.0/8.
                    let subnet = Ipv4Prefix::new(
                        Ipv4Addr::new(10, (idx >> 8) as u8, (idx & 0xff) as u8, 0),
                        24,
                    );
                    topo.device_mut(id).originated.push(subnet);
                    id
                })
                .collect();
            for &tor in &tors {
                for &leaf in &leaves {
                    topo.connect_p2p(tor, leaf, &mut p2p)
                        .expect("fresh interfaces");
                }
            }
            pods.push(Pod {
                index: p,
                leaves,
                tors,
                groups,
            });
        }

        // External WAN peers per border (outside the admin domain; these
        // are the devices speakers stand in for when emulating the whole
        // DC).
        let mut externals = Vec::new();
        let mut ext_seq = 0u32;
        for &border in &borders {
            for _ in 0..self.ext_peers_per_border {
                let i = ext_seq;
                ext_seq += 1;
                let id = mk(
                    &mut topo,
                    format!("{}-extpeer{i}", self.name),
                    Role::External,
                    Vendor::VmB,
                    asn::external(i),
                    None,
                );
                let dev = topo.device_mut(id);
                dev.originated.push(Ipv4Prefix::DEFAULT);
                for k in 0..self.ext_prefixes_per_peer {
                    // Synthetic internet space: 40.i.k.0/24.
                    dev.originated
                        .push(Ipv4Prefix::new(Ipv4Addr::new(40, i as u8, k as u8, 0), 24));
                }
                topo.connect_p2p(id, border, &mut p2p)
                    .expect("fresh interfaces");
                externals.push(id);
            }
        }

        ClosTopology {
            params: self.clone(),
            topo,
            borders,
            spine_groups,
            pods,
            externals,
        }
    }

    /// The borders spine group `g` homes to.
    fn group_borders<'a>(&self, g: u32, borders: &'a [DeviceId]) -> &'a [DeviceId] {
        if self.borders >= self.spine_groups {
            // Partition borders among groups.
            let per = (self.borders / self.spine_groups) as usize;
            let start = g as usize * per;
            &borders[start..start + per]
        } else {
            // Fewer borders than groups: each group takes one, round-robin.
            let idx = (g % self.borders) as usize;
            &borders[idx..=idx]
        }
    }
}

/// A generated pod.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pod {
    /// Pod number.
    pub index: u32,
    /// Leaf switches.
    pub leaves: Vec<DeviceId>,
    /// ToR switches.
    pub tors: Vec<DeviceId>,
    /// Spine groups this pod uplinks to.
    pub groups: Vec<u32>,
}

/// A generated Clos datacenter with structural indexes kept around for
/// experiments (Table 4 boundary cases pick pods and spine layers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosTopology {
    /// The parameters it was generated from.
    pub params: ClosParams,
    /// The flat topology (what `Prepare` would snapshot).
    pub topo: Topology,
    /// Border routers.
    pub borders: Vec<DeviceId>,
    /// Spine groups.
    pub spine_groups: Vec<Vec<DeviceId>>,
    /// Pods.
    pub pods: Vec<Pod>,
    /// External (non-emulatable) WAN peers.
    pub externals: Vec<DeviceId>,
}

impl ClosTopology {
    /// All spines, flattened.
    #[must_use]
    pub fn spines(&self) -> Vec<DeviceId> {
        self.spine_groups.iter().flatten().copied().collect()
    }

    /// Counts per layer: (borders, spines, leaves, tors) — a Table 3 /
    /// Table 4 row.
    #[must_use]
    pub fn layer_counts(&self) -> LayerCounts {
        let mut c = LayerCounts::default();
        for (_, d) in self.topo.devices() {
            match d.role {
                Role::Border => c.borders += 1,
                Role::Spine => c.spines += 1,
                Role::Leaf => c.leaves += 1,
                Role::Tor => c.tors += 1,
                _ => {}
            }
        }
        c
    }

    /// Device count excluding external peers.
    #[must_use]
    pub fn internal_device_count(&self) -> usize {
        self.topo
            .devices()
            .filter(|(_, d)| d.role != Role::External)
            .count()
    }
}

/// Per-layer device counts (a row of Table 3/4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerCounts {
    /// Border routers.
    pub borders: usize,
    /// Spine switches.
    pub spines: usize,
    /// Leaf switches.
    pub leaves: usize,
    /// ToR switches.
    pub tors: usize,
}

impl LayerCounts {
    /// Total devices across the four layers.
    #[must_use]
    pub fn total(&self) -> usize {
        self.borders + self.spines + self.leaves + self.tors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_dc_shape() {
        let dc = ClosParams::s_dc().build();
        let c = dc.layer_counts();
        assert_eq!(c.borders, 2);
        assert_eq!(c.spines, 4);
        assert_eq!(c.leaves, 24);
        assert_eq!(c.tors, 96);
        assert_eq!(c.total(), 126);
        assert_eq!(dc.internal_device_count(), 126);
        assert_eq!(dc.externals.len(), 2);
    }

    #[test]
    fn m_dc_shape() {
        let dc = ClosParams::m_dc().build();
        let c = dc.layer_counts();
        assert_eq!((c.borders, c.spines, c.leaves, c.tors), (4, 16, 96, 384));
    }

    #[test]
    fn l_dc_shape_matches_table3_bands() {
        // Generating full L-DC is cheap (no routing yet): ~4.6K devices.
        let dc = ClosParams::l_dc().build();
        let c = dc.layer_counts();
        assert_eq!(c.borders, 8); // O(10)
        assert_eq!(c.spines, 112); // O(100), the paper's exact spine count
        assert_eq!(c.leaves, 896); // O(1000)
        assert_eq!(c.tors, 3584); // O(3000)
    }

    #[test]
    fn asn_plan_follows_rfc7938_structure() {
        let dc = ClosParams::s_dc().build();
        for &b in &dc.borders {
            assert_eq!(dc.topo.device(b).asn, asn::BORDER);
        }
        for &s in &dc.spines() {
            assert_eq!(dc.topo.device(s).asn, asn::SPINE);
        }
        // Leaves share per-pod ASNs; ToRs are unique.
        let pod0 = &dc.pods[0];
        let leaf_asn = dc.topo.device(pod0.leaves[0]).asn;
        assert!(pod0
            .leaves
            .iter()
            .all(|&l| dc.topo.device(l).asn == leaf_asn));
        let pod1_leaf_asn = dc.topo.device(dc.pods[1].leaves[0]).asn;
        assert_ne!(leaf_asn, pod1_leaf_asn);
        let mut tor_asns: Vec<u32> = dc
            .pods
            .iter()
            .flat_map(|p| p.tors.iter().map(|&t| dc.topo.device(t).asn.0))
            .collect();
        let before = tor_asns.len();
        tor_asns.sort_unstable();
        tor_asns.dedup();
        assert_eq!(tor_asns.len(), before, "ToR ASNs must be unique");
        // External peers all differ (Prop 5.2's speaker requirement).
        let mut ext: Vec<u32> = dc
            .externals
            .iter()
            .map(|&e| dc.topo.device(e).asn.0)
            .collect();
        let n = ext.len();
        ext.sort_unstable();
        ext.dedup();
        assert_eq!(ext.len(), n);
    }

    #[test]
    fn every_tor_reaches_all_pod_leaves() {
        let dc = ClosParams::s_dc().build();
        for pod in &dc.pods {
            for &tor in &pod.tors {
                let neigh: Vec<DeviceId> = dc.topo.neighbor_devices(tor).collect();
                assert_eq!(neigh.len(), pod.leaves.len());
                for &l in &pod.leaves {
                    assert!(neigh.contains(&l));
                }
            }
        }
    }

    #[test]
    fn leaves_uplink_to_their_plane_group() {
        let dc = ClosParams::l_dc().scaled_pods(0.05).build();
        for pod in &dc.pods {
            for (l, &leaf) in pod.leaves.iter().enumerate() {
                let g = pod.groups[l % pod.groups.len()] as usize;
                let ups: Vec<DeviceId> = dc
                    .topo
                    .neighbor_devices(leaf)
                    .filter(|&n| dc.topo.device(n).role == Role::Spine)
                    .collect();
                assert_eq!(ups.len(), dc.spine_groups[g].len());
                for &s in &ups {
                    assert!(dc.spine_groups[g].contains(&s));
                }
            }
        }
    }

    #[test]
    fn spine_groups_home_to_disjoint_borders_in_l_dc() {
        let dc = ClosParams::l_dc().scaled_pods(0.02).build();
        for (g, group) in dc.spine_groups.iter().enumerate() {
            let mut homes: Vec<DeviceId> = group
                .iter()
                .flat_map(|&s| {
                    dc.topo
                        .neighbor_devices(s)
                        .filter(|&n| dc.topo.device(n).role == Role::Border)
                })
                .collect();
            homes.sort_unstable();
            homes.dedup();
            assert_eq!(homes.len(), 1, "group {g} should home to one border");
        }
    }

    #[test]
    fn originated_prefixes_present() {
        let dc = ClosParams::s_dc().build();
        // Each ToR: loopback + /24; each infra device: loopback;
        // each external peer: loopback + default + 8 internet prefixes.
        let expected = 96 * 2 + (2 + 4 + 24) + 2 * 10;
        assert_eq!(dc.topo.originated_prefix_count(), expected);
    }

    #[test]
    fn scaled_pods_clamps_to_one() {
        let p = ClosParams::s_dc().scaled_pods(0.0001);
        assert_eq!(p.pods, 1);
        let dc = p.build();
        assert_eq!(dc.pods.len(), 1);
    }

    #[test]
    fn internal_device_count_estimate_matches() {
        for params in [ClosParams::s_dc(), ClosParams::m_dc()] {
            let est = params.internal_device_count();
            let dc = params.build();
            assert_eq!(est as usize, dc.internal_device_count());
        }
    }
}
