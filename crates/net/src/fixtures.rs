//! Small hand-built topologies reproducing the paper's figures.
//!
//! * [`fig1`] — the eight-router network of Figure 1, where two vendors'
//!   divergent IP-aggregation behaviour causes traffic imbalance at R8.
//! * [`fig7`] — the three-layer BGP datacenter of Figure 7, used to
//!   demonstrate unsafe and safe static boundaries.

use crate::addr::{Ipv4Addr, Ipv4Prefix};
use crate::topology::{Device, P2pAllocator, Topology};
use crate::types::{Asn, DeviceId, Role, Vendor};

fn device(seq: u32, name: &str, role: Role, vendor: Vendor, asn: u32) -> Device {
    let loopback = Ipv4Addr::new(172, 20, (seq >> 8) as u8, (seq & 0xff) as u8);
    Device {
        name: name.to_string(),
        role,
        vendor,
        asn: Asn(asn),
        loopback,
        mgmt_addr: Ipv4Addr::new(192, 168, 100, seq as u8),
        originated: vec![Ipv4Prefix::host(loopback)],
        ifaces: vec![],
        pod: None,
    }
}

/// The Figure 1 network.
///
/// `R1` (AS 1) originates `P1 = 10.1.0.0/17` and `P2 = 10.1.128.0/17`.
/// `R6` (vendor A) and `R7` (vendor C) both aggregate them to
/// `P3 = 10.1.0.0/16` before announcing to `R8` — but vendor A picks one
/// contributing path and prepends itself, while vendor C announces the
/// aggregate with only its own AS in the path, so `R8` always prefers `R7`.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// The topology.
    pub topo: Topology,
    /// Routers `R1..=R8` (index 0 is `R1`).
    pub routers: [DeviceId; 8],
    /// The two component prefixes.
    pub p1: Ipv4Prefix,
    pub p2: Ipv4Prefix,
    /// The aggregate.
    pub p3: Ipv4Prefix,
}

/// Builds the Figure 1 network. `R6` runs vendor `CtnrA` (select-one
/// aggregation) and `R7` runs vendor `VmB` ("Vendor-C": empty-path
/// aggregation).
#[must_use]
pub fn fig1() -> Fig1 {
    let p1: Ipv4Prefix = "10.1.0.0/17".parse().unwrap();
    let p2: Ipv4Prefix = "10.1.128.0/17".parse().unwrap();
    let p3: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();

    let mut topo = Topology::new();
    let mut p2pa = P2pAllocator::new("100.127.0.0/16".parse().unwrap());
    let vendors = [
        Vendor::CtnrA, // R1
        Vendor::CtnrA, // R2
        Vendor::CtnrA, // R3
        Vendor::CtnrA, // R4
        Vendor::CtnrA, // R5
        Vendor::CtnrA, // R6: "Vendor-A": selects a path, appends own ASN
        Vendor::VmB,   // R7: "Vendor-C": empty AS path on aggregates
        Vendor::CtnrA, // R8
    ];
    let roles = [
        Role::Tor,    // R1
        Role::Leaf,   // R2
        Role::Leaf,   // R3
        Role::Leaf,   // R4
        Role::Leaf,   // R5
        Role::Spine,  // R6
        Role::Spine,  // R7
        Role::Border, // R8
    ];
    let mut routers = [DeviceId(0); 8];
    for i in 0..8u32 {
        let name = format!("r{}", i + 1);
        let id = topo
            .add_device(device(
                i,
                &name,
                roles[i as usize],
                vendors[i as usize],
                i + 1,
            ))
            .expect("unique fixture names");
        routers[i as usize] = id;
    }
    topo.device_mut(routers[0]).originated.push(p1);
    topo.device_mut(routers[0]).originated.push(p2);

    // R1 at the bottom fans out to R2..R5; R2,R3 feed R6; R4,R5 feed R7;
    // R6,R7 feed R8.
    let edges = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (1, 5),
        (2, 5),
        (3, 6),
        (4, 6),
        (5, 7),
        (6, 7),
    ];
    for (a, b) in edges {
        topo.connect_p2p(routers[a], routers[b], &mut p2pa)
            .expect("fresh interfaces");
    }
    Fig1 {
        topo,
        routers,
        p1,
        p2,
        p3,
    }
}

/// The Figure 7 three-layer datacenter.
///
/// Spines `S1,S2` (AS 100); leaf pairs `L1,L2` (AS 200), `L3,L4` (AS 300),
/// `L5,L6` (AS 400); ToR pairs `T1..T6` (AS 501..506). ToR pair *i*
/// connects to leaf pair *i*; every leaf connects to both spines.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// The topology.
    pub topo: Topology,
    /// `S1, S2`.
    pub spines: [DeviceId; 2],
    /// `L1..=L6`.
    pub leaves: [DeviceId; 6],
    /// `T1..=T6`.
    pub tors: [DeviceId; 6],
}

/// Builds the Figure 7 network.
#[must_use]
pub fn fig7() -> Fig7 {
    let mut topo = Topology::new();
    let mut p2pa = P2pAllocator::new("100.126.0.0/16".parse().unwrap());
    let mut seq = 0u32;
    let mut mk = |topo: &mut Topology, name: String, role: Role, asn: u32| {
        let id = topo
            .add_device(device(seq, &name, role, Vendor::CtnrA, asn))
            .expect("unique fixture names");
        seq += 1;
        id
    };

    let spines = [
        mk(&mut topo, "s1".into(), Role::Spine, 100),
        mk(&mut topo, "s2".into(), Role::Spine, 100),
    ];
    let mut leaves = [DeviceId(0); 6];
    for (i, leaf) in leaves.iter_mut().enumerate() {
        let asn = 200 + (i as u32 / 2) * 100; // 200,200,300,300,400,400
        *leaf = mk(&mut topo, format!("l{}", i + 1), Role::Leaf, asn);
    }
    let mut tors = [DeviceId(0); 6];
    for (i, tor) in tors.iter_mut().enumerate() {
        *tor = mk(&mut topo, format!("t{}", i + 1), Role::Tor, 501 + i as u32);
        // Each ToR originates a /24 so route propagation is observable.
        let subnet = Ipv4Prefix::new(Ipv4Addr::new(10, 7, i as u8, 0), 24);
        topo.device_mut(*tor).originated.push(subnet);
    }

    for (i, &tor) in tors.iter().enumerate() {
        let pair = i / 2;
        for &leaf in &leaves[pair * 2..pair * 2 + 2] {
            topo.connect_p2p(tor, leaf, &mut p2pa)
                .expect("fresh interfaces");
        }
    }
    for &leaf in &leaves {
        for &spine in &spines {
            topo.connect_p2p(leaf, spine, &mut p2pa)
                .expect("fresh interfaces");
        }
    }
    Fig7 {
        topo,
        spines,
        leaves,
        tors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_structure() {
        let f = fig1();
        assert_eq!(f.topo.device_count(), 8);
        assert_eq!(f.topo.link_count(), 10);
        // R1 originates P1 and P2 (plus loopback).
        let r1 = f.topo.device(f.routers[0]);
        assert!(r1.originated.contains(&f.p1));
        assert!(r1.originated.contains(&f.p2));
        assert_eq!(Ipv4Prefix::aggregate(&[f.p1, f.p2]), Some(f.p3));
        // R8 is adjacent to exactly R6 and R7.
        let neigh: Vec<DeviceId> = f.topo.neighbor_devices(f.routers[7]).collect();
        assert_eq!(neigh.len(), 2);
        assert!(neigh.contains(&f.routers[5]) && neigh.contains(&f.routers[6]));
        // R6 and R7 are from different vendors — the root cause.
        assert_ne!(
            f.topo.device(f.routers[5]).vendor,
            f.topo.device(f.routers[6]).vendor
        );
    }

    #[test]
    fn fig7_structure() {
        let f = fig7();
        assert_eq!(f.topo.device_count(), 14);
        // 6 tors * 2 + 6 leaves * 2 = 24 links.
        assert_eq!(f.topo.link_count(), 24);
        // Both spines share AS 100.
        assert_eq!(f.topo.device(f.spines[0]).asn, Asn(100));
        assert_eq!(f.topo.device(f.spines[1]).asn, Asn(100));
        // Leaf pairs share ASes, pairs differ.
        assert_eq!(
            f.topo.device(f.leaves[0]).asn,
            f.topo.device(f.leaves[1]).asn
        );
        assert_ne!(
            f.topo.device(f.leaves[0]).asn,
            f.topo.device(f.leaves[2]).asn
        );
        // T1 connects to L1,L2 only.
        let neigh: Vec<DeviceId> = f.topo.neighbor_devices(f.tors[0]).collect();
        assert_eq!(neigh, vec![f.leaves[0], f.leaves[1]]);
        // Every leaf sees both spines.
        for &l in &f.leaves {
            for &s in &f.spines {
                assert!(f.topo.adjacent(l, s));
            }
        }
    }
}
