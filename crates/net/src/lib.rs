//! Network model for the CrystalNet reproduction: addressing, devices,
//! links, topology graphs, and generators for the paper's evaluation
//! networks.
//!
//! This crate is the "production snapshot" side of CrystalNet: everything
//! the orchestrator's `Prepare` phase reads — topologies (Table 3's
//! L-DC/M-DC/S-DC Clos fabrics, the §7 Case-1 region), device identities
//! (role, vendor, ASN), originated prefixes, and the figure fixtures the
//! experiments replay.

pub mod addr;
pub mod clos;
pub mod fixtures;
pub mod partition;
pub mod region;
pub mod topology;
pub mod types;

pub use addr::{AddrParseError, Ipv4Addr, Ipv4Cidr, Ipv4Prefix, MacAddr};
pub use clos::{ClosParams, ClosTopology, LayerCounts, Pod};
pub use partition::{
    best_spare, dirty_region, dirty_region_scoped, partition, partition_grouped,
    placement_affinity, Partition, RippleScope,
};
pub use region::{RegionParams, RegionTopology};
pub use topology::{Device, Interface, Link, P2pAllocator, Topology, TopologyError};
pub use types::{Asn, DeviceId, EmulationClass, Endpoint, LinkId, Role, Vendor};
