//! Regional topology for the §7 Case-1 migration experience.
//!
//! Case 1 migrates inter-DC/intra-region traffic from a legacy WAN onto new
//! *regional backbone* routers. The emulated network there consisted of all
//! spine routers of two large datacenters (Vendor-A containers), all
//! regional backbone routers, and several legacy WAN cores (Vendor-B VM
//! images). This module generates that shape: two Clos DCs, a regional
//! backbone mesh, and legacy WAN cores, with the DCs' borders dual-homed to
//! both the legacy WAN and (after migration) the backbone.

use crate::addr::{Ipv4Addr, Ipv4Prefix};
use crate::clos::{ClosParams, ClosTopology};
use crate::topology::{Device, P2pAllocator, Topology};
use crate::types::{Asn, DeviceId, Role, Vendor};
use serde::{Deserialize, Serialize};

/// ASNs of the regional layers.
pub mod asn {
    use crate::types::Asn;

    /// All regional backbone routers share one AS.
    pub const REGIONAL: Asn = Asn(64950);
    /// Legacy WAN core AS.
    pub const WAN: Asn = Asn(64900);
    /// Border AS of datacenter `i` within the region (borders inside one
    /// DC share an AS; the two DCs differ so routes transit the region).
    #[must_use]
    pub fn dc_border(dc: u32) -> Asn {
        Asn(65000 + dc)
    }
}

/// Parameters for a two-DC region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionParams {
    /// Per-DC Clos parameters (the DC name is suffixed `-dc0`/`-dc1`).
    pub dc: ClosParams,
    /// Number of regional backbone routers.
    pub backbones: u32,
    /// Number of legacy WAN core routers.
    pub wan_cores: u32,
    /// Whether borders are already connected to the regional backbone
    /// (post-migration state) or only to the WAN (pre-migration).
    pub backbone_connected: bool,
}

impl RegionParams {
    /// The Case-1 evaluation shape: two mid-size DCs, four regional
    /// backbone routers, four legacy WAN cores, pre-migration.
    #[must_use]
    pub fn case1() -> Self {
        RegionParams {
            dc: ClosParams::m_dc(),
            backbones: 4,
            wan_cores: 4,
            backbone_connected: false,
        }
    }

    /// Builds the region.
    #[must_use]
    pub fn build(&self) -> RegionTopology {
        let mut topo = Topology::new();
        let mut p2p = P2pAllocator::new("100.96.0.0/12".parse().unwrap());
        let mut seq = 0u32;
        let mut mk = |topo: &mut Topology, name: String, role: Role, vendor: Vendor, asn: Asn| {
            let loopback = Ipv4Addr::new(172, 24, (seq >> 8) as u8, (seq & 0xff) as u8);
            let dev = Device {
                name,
                role,
                vendor,
                asn,
                loopback,
                mgmt_addr: Ipv4Addr::new(192, 169, (seq >> 8) as u8, (seq & 0xff) as u8),
                originated: vec![Ipv4Prefix::host(loopback)],
                ifaces: vec![],
                pod: None,
            };
            seq += 1;
            topo.add_device(dev).expect("unique names")
        };

        // Regional backbones (new design, Vendor-A: containerized) and
        // legacy WAN cores (Vendor-B: VM images), matching §7.
        let backbones: Vec<DeviceId> = (0..self.backbones)
            .map(|i| {
                mk(
                    &mut topo,
                    format!("region-rbb{i}"),
                    Role::Regional,
                    Vendor::CtnrA,
                    asn::REGIONAL,
                )
            })
            .collect();
        let wan_cores: Vec<DeviceId> = (0..self.wan_cores)
            .map(|i| {
                mk(
                    &mut topo,
                    format!("region-wan{i}"),
                    Role::WanCore,
                    Vendor::VmB,
                    asn::WAN,
                )
            })
            .collect();
        // Backbones peer with the WAN cores (the region stays reachable
        // from the rest of the world during migration).
        for &bb in &backbones {
            for &wc in &wan_cores {
                topo.connect_p2p(bb, wc, &mut p2p).expect("fresh ifaces");
            }
        }

        // Two datacenters. We rebuild each DC inside the shared topology so
        // device ids are region-global.
        let mut dcs = Vec::new();
        for dc_idx in 0..2u32 {
            let mut params = self.dc.clone();
            params.name = format!("{}-dc{dc_idx}", params.name);
            // External peers are replaced by the regional layers here.
            params.ext_peers_per_border = 0;
            let built = params.build();
            let dc = graft(&mut topo, &built, dc_idx, &mut p2p);
            // Border uplinks: always to the legacy WAN; to the backbone
            // only once `backbone_connected`.
            for &border in &dc.borders {
                for &wc in &wan_cores {
                    topo.connect_p2p(border, wc, &mut p2p)
                        .expect("fresh ifaces");
                }
                if self.backbone_connected {
                    for &bb in &backbones {
                        topo.connect_p2p(border, bb, &mut p2p)
                            .expect("fresh ifaces");
                    }
                }
            }
            dcs.push(dc);
        }

        RegionTopology {
            topo,
            backbones,
            wan_cores,
            dcs,
        }
    }
}

/// A datacenter grafted into the regional topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionDc {
    /// Region-global border ids.
    pub borders: Vec<DeviceId>,
    /// Region-global spine ids.
    pub spines: Vec<DeviceId>,
    /// Region-global leaf ids.
    pub leaves: Vec<DeviceId>,
    /// Region-global ToR ids.
    pub tors: Vec<DeviceId>,
}

/// Copies a built Clos DC into `topo`, remapping ids, re-ASN'ing borders to
/// the per-DC border AS, and re-wiring internal links.
fn graft(topo: &mut Topology, dc: &ClosTopology, dc_idx: u32, p2p: &mut P2pAllocator) -> RegionDc {
    let mut map = std::collections::HashMap::new();
    let mut out = RegionDc {
        borders: vec![],
        spines: vec![],
        leaves: vec![],
        tors: vec![],
    };
    for (old_id, dev) in dc.topo.devices() {
        if dev.role == Role::External {
            continue;
        }
        let mut cloned = dev.clone();
        cloned.ifaces.clear();
        if cloned.role == Role::Border {
            cloned.asn = asn::dc_border(dc_idx);
        } else if dc_idx > 0 {
            // Private ASNs repeat across independently generated DCs;
            // within one region they must be disjoint or BGP loop
            // prevention blocks inter-DC routes. (Production networks
            // solve this with remove-private-as at the borders; a
            // region-unique plan is the equivalent for generated configs.)
            cloned.asn = Asn(cloned.asn.0 + dc_idx * 2_000);
        }
        // Region-unique loopbacks and management addresses: the per-DC
        // generators both start from the same pools.
        {
            let seq = topo.device_count() as u32;
            let had_loopback_route =
                cloned.originated.first().copied() == Some(Ipv4Prefix::host(cloned.loopback));
            cloned.loopback =
                Ipv4Addr::new(172, 26 + dc_idx as u8, (seq >> 8) as u8, (seq & 0xff) as u8);
            cloned.mgmt_addr = Ipv4Addr::new(
                192,
                170 + dc_idx as u8,
                (seq >> 8) as u8,
                (seq & 0xff) as u8,
            );
            if had_loopback_route {
                cloned.originated[0] = Ipv4Prefix::host(cloned.loopback);
            }
        }
        // Keep server subnets distinct across the two DCs by shifting the
        // second DC's 10.x space to 11.x.
        if dc_idx == 1 {
            for p in &mut cloned.originated {
                let o = p.network().octets();
                if o[0] == 10 {
                    *p = Ipv4Prefix::new(Ipv4Addr::new(11, o[1], o[2], o[3]), p.len());
                }
            }
        }
        let new_id = topo.add_device(cloned).expect("grafted names unique");
        map.insert(old_id, new_id);
        match dev.role {
            Role::Border => out.borders.push(new_id),
            Role::Spine => out.spines.push(new_id),
            Role::Leaf => out.leaves.push(new_id),
            Role::Tor => out.tors.push(new_id),
            _ => {}
        }
    }
    for (_, link) in dc.topo.links() {
        let (Some(&a), Some(&b)) = (map.get(&link.a.device), map.get(&link.b.device)) else {
            continue; // external-peer link, dropped
        };
        topo.connect_p2p(a, b, p2p).expect("fresh ifaces");
    }
    out
}

/// The generated region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionTopology {
    /// The flat topology.
    pub topo: Topology,
    /// Regional backbone routers.
    pub backbones: Vec<DeviceId>,
    /// Legacy WAN cores.
    pub wan_cores: Vec<DeviceId>,
    /// The two datacenters.
    pub dcs: Vec<RegionDc>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_region(connected: bool) -> RegionTopology {
        let mut p = RegionParams::case1();
        p.dc = ClosParams::s_dc();
        p.backbone_connected = connected;
        p.build()
    }

    #[test]
    fn pre_migration_has_no_backbone_uplinks() {
        let r = small_region(false);
        for dc in &r.dcs {
            for &b in &dc.borders {
                let up: Vec<Role> = r
                    .topo
                    .neighbor_devices(b)
                    .map(|n| r.topo.device(n).role)
                    .filter(|role| matches!(role, Role::Regional | Role::WanCore))
                    .collect();
                assert!(up.iter().all(|r| *r == Role::WanCore));
                assert_eq!(up.len(), r.wan_cores.len());
            }
        }
    }

    #[test]
    fn post_migration_borders_are_dual_homed() {
        let r = small_region(true);
        let border = r.dcs[0].borders[0];
        let mut regional = 0;
        let mut wan = 0;
        for n in r.topo.neighbor_devices(border) {
            match r.topo.device(n).role {
                Role::Regional => regional += 1,
                Role::WanCore => wan += 1,
                _ => {}
            }
        }
        assert_eq!(regional, r.backbones.len());
        assert_eq!(wan, r.wan_cores.len());
    }

    #[test]
    fn dc_borders_use_distinct_ases() {
        let r = small_region(false);
        let a0 = r.topo.device(r.dcs[0].borders[0]).asn;
        let a1 = r.topo.device(r.dcs[1].borders[0]).asn;
        assert_ne!(a0, a1);
        assert_eq!(a0, asn::dc_border(0));
        assert_eq!(a1, asn::dc_border(1));
    }

    #[test]
    fn second_dc_prefixes_are_shifted() {
        let r = small_region(false);
        let tor1 = r.dcs[1].tors[0];
        let subnets: Vec<Ipv4Prefix> = r
            .topo
            .device(tor1)
            .originated
            .iter()
            .filter(|p| p.len() == 24)
            .copied()
            .collect();
        assert!(!subnets.is_empty());
        assert!(subnets.iter().all(|p| p.network().octets()[0] == 11));
    }

    #[test]
    fn no_external_devices_survive_grafting() {
        let r = small_region(false);
        assert!(r.topo.devices().all(|(_, d)| d.role != Role::External));
    }
}
