//! The production-network topology model.
//!
//! A [`Topology`] is the artifact CrystalNet's `Prepare` phase snapshots
//! from production: devices (with role, vendor, ASN, interfaces and
//! originated prefixes) and point-to-point links. It is a plain data
//! structure — the emulation layers (vnet, routing, orchestrator) interpret
//! it; boundary analysis walks it.

use crate::addr::{Ipv4Addr, Ipv4Cidr, Ipv4Prefix, MacAddr};
use crate::types::{Asn, DeviceId, Endpoint, LinkId, Role, Vendor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A network interface on a device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Interface {
    /// Interface name as the firmware shows it (`et0`, `et1`, ...).
    pub name: String,
    /// The interface's /31 point-to-point address, if numbered.
    pub addr: Option<Ipv4Cidr>,
    /// MAC address assigned by the PhyNet layer.
    pub mac: MacAddr,
    /// The link this interface is plugged into, if any.
    pub link: Option<LinkId>,
}

/// A device in the production topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    /// Production hostname (`dc1-pod003-leaf2`, ...).
    pub name: String,
    /// Clos/WAN role.
    pub role: Role,
    /// Firmware vendor.
    pub vendor: Vendor,
    /// BGP autonomous system.
    pub asn: Asn,
    /// Loopback /32 used as router-id and telemetry address.
    pub loopback: Ipv4Addr,
    /// Management-plane address (out-of-band overlay, §4.2).
    pub mgmt_addr: Ipv4Addr,
    /// Prefixes this device originates into BGP (server subnets, VIPs).
    pub originated: Vec<Ipv4Prefix>,
    /// Interfaces, indexed by `Endpoint::iface`.
    pub ifaces: Vec<Interface>,
    /// Pod number for pod-scoped devices (ToR/Leaf), else `None`.
    pub pod: Option<u32>,
}

/// A point-to-point link between two device interfaces.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Link {
    /// One end.
    pub a: Endpoint,
    /// The other end.
    pub b: Endpoint,
}

impl Link {
    /// The end of this link that is *not* on `device`.
    ///
    /// Returns `None` if `device` is on neither end.
    #[must_use]
    pub fn other(&self, device: DeviceId) -> Option<Endpoint> {
        if self.a.device == device {
            Some(self.b)
        } else if self.b.device == device {
            Some(self.a)
        } else {
            None
        }
    }

    /// The end of this link on `device`.
    #[must_use]
    pub fn end_on(&self, device: DeviceId) -> Option<Endpoint> {
        if self.a.device == device {
            Some(self.a)
        } else if self.b.device == device {
            Some(self.b)
        } else {
            None
        }
    }
}

/// Errors raised while constructing a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A device name was used twice.
    DuplicateName(String),
    /// A link referenced an interface that is already connected.
    InterfaceInUse(String, u32),
    /// A link referenced a nonexistent device or interface.
    NoSuchEndpoint(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateName(n) => write!(f, "duplicate device name `{n}`"),
            TopologyError::InterfaceInUse(n, i) => {
                write!(f, "interface {i} on `{n}` is already linked")
            }
            TopologyError::NoSuchEndpoint(n) => write!(f, "no such endpoint `{n}`"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A production network: devices and the links between them.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    devices: Vec<Device>,
    links: Vec<Link>,
    #[serde(skip)]
    name_index: HashMap<String, DeviceId>,
}

impl Topology {
    /// An empty topology.
    #[must_use]
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a device with no interfaces yet; returns its handle.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicateName`] if the hostname is taken.
    pub fn add_device(&mut self, device: Device) -> Result<DeviceId, TopologyError> {
        if self.name_index.contains_key(&device.name) {
            return Err(TopologyError::DuplicateName(device.name));
        }
        let id = DeviceId(self.devices.len() as u32);
        self.name_index.insert(device.name.clone(), id);
        self.devices.push(device);
        Ok(id)
    }

    /// Appends an unconnected interface to `device`; returns its index.
    pub fn add_interface(&mut self, device: DeviceId, addr: Option<Ipv4Cidr>) -> u32 {
        let dev = &mut self.devices[device.index()];
        let idx = dev.ifaces.len() as u32;
        let mac = MacAddr::from_id((device.0 << 12) | idx);
        dev.ifaces.push(Interface {
            name: format!("et{idx}"),
            addr,
            mac,
            link: None,
        });
        idx
    }

    /// Connects two existing interfaces with a new link.
    ///
    /// # Errors
    ///
    /// Fails if an endpoint does not exist or is already connected.
    pub fn connect(&mut self, a: Endpoint, b: Endpoint) -> Result<LinkId, TopologyError> {
        for ep in [a, b] {
            let dev = self
                .devices
                .get(ep.device.index())
                .ok_or_else(|| TopologyError::NoSuchEndpoint(format!("{}", ep.device)))?;
            let iface = dev.ifaces.get(ep.iface as usize).ok_or_else(|| {
                TopologyError::NoSuchEndpoint(format!("{}:{}", dev.name, ep.iface))
            })?;
            if iface.link.is_some() {
                return Err(TopologyError::InterfaceInUse(dev.name.clone(), ep.iface));
            }
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { a, b });
        self.devices[a.device.index()].ifaces[a.iface as usize].link = Some(id);
        self.devices[b.device.index()].ifaces[b.iface as usize].link = Some(id);
        Ok(id)
    }

    /// Convenience: adds a /31-numbered interface pair on both devices and
    /// links them, allocating addresses from `p2p`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::connect`] failures.
    pub fn connect_p2p(
        &mut self,
        a: DeviceId,
        b: DeviceId,
        p2p: &mut P2pAllocator,
    ) -> Result<LinkId, TopologyError> {
        let (addr_a, addr_b) = p2p.next_pair();
        let ia = self.add_interface(a, Some(addr_a));
        let ib = self.add_interface(b, Some(addr_b));
        self.connect(
            Endpoint {
                device: a,
                iface: ia,
            },
            Endpoint {
                device: b,
                iface: ib,
            },
        )
    }

    /// Number of devices.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All devices with their handles.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i as u32), d))
    }

    /// All links with their handles.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// The device behind a handle.
    #[must_use]
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Mutable access to a device.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.index()]
    }

    /// The link behind a handle.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Looks up a device by production hostname.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<DeviceId> {
        self.name_index.get(name).copied()
    }

    /// Neighbors of `device`: (link, local endpoint, remote endpoint).
    pub fn neighbors(
        &self,
        device: DeviceId,
    ) -> impl Iterator<Item = (LinkId, Endpoint, Endpoint)> + '_ {
        self.devices[device.index()]
            .ifaces
            .iter()
            .enumerate()
            .filter_map(move |(i, iface)| {
                let link_id = iface.link?;
                let link = &self.links[link_id.index()];
                let local = Endpoint {
                    device,
                    iface: i as u32,
                };
                let remote = link.other(device)?;
                Some((link_id, local, remote))
            })
    }

    /// Neighbor device ids of `device` (deduplicated is unnecessary for
    /// p2p-only fabrics; parallel links yield repeats).
    pub fn neighbor_devices(&self, device: DeviceId) -> impl Iterator<Item = DeviceId> + '_ {
        self.neighbors(device).map(|(_, _, remote)| remote.device)
    }

    /// Rebuilds the name index after deserialization.
    pub fn reindex(&mut self) {
        self.name_index = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), DeviceId(i as u32)))
            .collect();
    }

    /// Total prefixes originated across all devices.
    #[must_use]
    pub fn originated_prefix_count(&self) -> usize {
        self.devices.iter().map(|d| d.originated.len()).sum()
    }

    /// Devices matching a role.
    pub fn by_role(&self, role: Role) -> impl Iterator<Item = DeviceId> + '_ {
        self.devices()
            .filter(move |(_, d)| d.role == role)
            .map(|(id, _)| id)
    }

    /// Whether `a` and `b` are directly linked.
    #[must_use]
    pub fn adjacent(&self, a: DeviceId, b: DeviceId) -> bool {
        self.neighbor_devices(a).any(|n| n == b)
    }
}

/// Allocates /31 point-to-point subnets from a pool prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2pAllocator {
    pool: Ipv4Prefix,
    next: u32,
}

impl P2pAllocator {
    /// An allocator carving /31s out of `pool`.
    #[must_use]
    pub fn new(pool: Ipv4Prefix) -> Self {
        P2pAllocator { pool, next: 0 }
    }

    /// The next /31 pair: two interface addresses sharing a /31 subnet.
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted.
    pub fn next_pair(&mut self) -> (Ipv4Cidr, Ipv4Cidr) {
        let base = self.pool.network().offset(self.next * 2);
        assert!(
            self.pool.contains(base) && self.pool.contains(base.offset(1)),
            "p2p pool {} exhausted",
            self.pool
        );
        self.next += 1;
        (Ipv4Cidr::new(base, 31), Ipv4Cidr::new(base.offset(1), 31))
    }

    /// The subnet count handed out so far.
    #[must_use]
    pub fn allocated(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn device(name: &str, role: Role, asn: u32) -> Device {
        Device {
            name: name.to_string(),
            role,
            vendor: Vendor::CtnrA,
            asn: Asn(asn),
            loopback: Ipv4Addr::new(172, 16, 0, 1),
            mgmt_addr: Ipv4Addr::new(192, 168, 0, 1),
            originated: vec![],
            ifaces: vec![],
            pod: None,
        }
    }

    #[test]
    fn build_two_node_topology() {
        let mut topo = Topology::new();
        let a = topo.add_device(device("a", Role::Tor, 1)).unwrap();
        let b = topo.add_device(device("b", Role::Leaf, 2)).unwrap();
        let mut p2p = P2pAllocator::new("100.64.0.0/10".parse().unwrap());
        let link = topo.connect_p2p(a, b, &mut p2p).unwrap();

        assert_eq!(topo.device_count(), 2);
        assert_eq!(topo.link_count(), 1);
        assert!(topo.adjacent(a, b));
        assert_eq!(topo.by_name("a"), Some(a));
        assert_eq!(topo.by_name("zzz"), None);
        let (lid, local, remote) = topo.neighbors(a).next().unwrap();
        assert_eq!(lid, link);
        assert_eq!(local.device, a);
        assert_eq!(remote.device, b);
        // /31 pair shares a subnet but the host addresses differ.
        let ia = topo.device(a).ifaces[0].addr.unwrap();
        let ib = topo.device(b).ifaces[0].addr.unwrap();
        assert!(ia.same_subnet(ib));
        assert_ne!(ia.addr, ib.addr);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut topo = Topology::new();
        topo.add_device(device("a", Role::Tor, 1)).unwrap();
        assert_eq!(
            topo.add_device(device("a", Role::Tor, 1)),
            Err(TopologyError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn interface_reuse_rejected() {
        let mut topo = Topology::new();
        let a = topo.add_device(device("a", Role::Tor, 1)).unwrap();
        let b = topo.add_device(device("b", Role::Leaf, 2)).unwrap();
        let c = topo.add_device(device("c", Role::Leaf, 3)).unwrap();
        let ia = topo.add_interface(a, None);
        let ib = topo.add_interface(b, None);
        let ic = topo.add_interface(c, None);
        let ea = Endpoint {
            device: a,
            iface: ia,
        };
        topo.connect(
            ea,
            Endpoint {
                device: b,
                iface: ib,
            },
        )
        .unwrap();
        let err = topo
            .connect(
                ea,
                Endpoint {
                    device: c,
                    iface: ic,
                },
            )
            .unwrap_err();
        assert_eq!(err, TopologyError::InterfaceInUse("a".into(), 0));
    }

    #[test]
    fn bogus_endpoints_rejected() {
        let mut topo = Topology::new();
        let a = topo.add_device(device("a", Role::Tor, 1)).unwrap();
        let ia = topo.add_interface(a, None);
        let err = topo.connect(
            Endpoint {
                device: a,
                iface: ia,
            },
            Endpoint {
                device: DeviceId(99),
                iface: 0,
            },
        );
        assert!(matches!(err, Err(TopologyError::NoSuchEndpoint(_))));
        let err = topo.connect(
            Endpoint {
                device: a,
                iface: 7,
            },
            Endpoint {
                device: a,
                iface: ia,
            },
        );
        assert!(matches!(err, Err(TopologyError::NoSuchEndpoint(_))));
    }

    #[test]
    fn link_other_end() {
        let l = Link {
            a: Endpoint {
                device: DeviceId(0),
                iface: 1,
            },
            b: Endpoint {
                device: DeviceId(1),
                iface: 2,
            },
        };
        assert_eq!(l.other(DeviceId(0)).unwrap().device, DeviceId(1));
        assert_eq!(l.other(DeviceId(1)).unwrap().device, DeviceId(0));
        assert_eq!(l.other(DeviceId(9)), None);
        assert_eq!(l.end_on(DeviceId(1)).unwrap().iface, 2);
    }

    #[test]
    fn reindex_after_deserialization() {
        let mut topo = Topology::new();
        topo.add_device(device("a", Role::Tor, 1)).unwrap();
        topo.add_device(device("b", Role::Tor, 2)).unwrap();
        let json = serde_json::to_string(&topo).unwrap();
        let mut back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back.by_name("b"), None); // index skipped in serde
        back.reindex();
        assert_eq!(back.by_name("b"), Some(DeviceId(1)));
    }

    #[test]
    fn p2p_allocator_hands_out_distinct_pairs() {
        let mut p2p = P2pAllocator::new("100.64.0.0/28".parse().unwrap());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let (a, b) = p2p.next_pair();
            assert!(seen.insert(a.addr));
            assert!(seen.insert(b.addr));
            assert!(a.same_subnet(b));
        }
        assert_eq!(p2p.allocated(), 8);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn p2p_allocator_panics_when_exhausted() {
        let mut p2p = P2pAllocator::new("100.64.0.0/30".parse().unwrap());
        p2p.next_pair();
        p2p.next_pair();
        p2p.next_pair();
    }
}
