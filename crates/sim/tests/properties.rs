//! Property-based tests for the simulation engine's core invariants.

use crystalnet_sim::{CpuServer, Engine, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// The engine executes any schedule in non-decreasing time order and
    /// runs every event exactly once.
    #[test]
    fn engine_executes_all_events_in_order(delays in prop::collection::vec(0u64..10_000, 1..200)) {
        let n = delays.len();
        let mut engine = Engine::new(Vec::<SimTime>::new());
        for d in delays {
            engine.schedule_after(SimDuration::from_micros(d), |e| {
                let now = e.now();
                e.world.push(now);
            });
        }
        engine.run();
        prop_assert_eq!(engine.world.len(), n);
        prop_assert!(engine.world.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(engine.events_executed(), n as u64);
        prop_assert_eq!(engine.events_pending(), 0);
    }

    /// Identical seeds produce identical executions (full determinism).
    #[test]
    fn engine_is_deterministic(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut engine = Engine::new((SimRng::from_seed(seed), Vec::new()));
            fn tick(e: &mut Engine<(SimRng, Vec<u64>)>) {
                let jitter = e.world.0.below(1_000_000);
                let now = e.now();
                e.world.1.push(now.as_nanos() ^ jitter);
                if e.world.1.len() < 50 {
                    e.schedule_after(SimDuration::from_nanos(jitter + 1), tick);
                }
            }
            engine.schedule_after(SimDuration::from_nanos(1), tick);
            engine.run();
            engine.world.1
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// A CPU server never runs more jobs concurrently than it has cores,
    /// and conserves total busy time.
    #[test]
    fn cpu_server_respects_core_count(
        cores in 1u32..8,
        jobs in prop::collection::vec((0u64..1_000, 1u64..1_000), 1..100),
    ) {
        let mut cpu = CpuServer::new(cores, SimDuration::from_micros(100));
        let mut intervals = Vec::new();
        let mut total = SimDuration::ZERO;
        let mut now = SimTime::ZERO;
        for (gap, work) in jobs {
            now += SimDuration::from_nanos(gap);
            let work = SimDuration::from_nanos(work);
            let end = cpu.submit(now, work);
            prop_assert!(end >= now + work);
            intervals.push((end - work, end));
            total += work;
        }
        prop_assert_eq!(cpu.total_busy(), total);
        // Check concurrency at every interval start.
        for &(s, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(a, b)| a <= s && s < b)
                .count() as u32;
            prop_assert!(overlapping <= cores);
        }
        // Utilization never exceeds 1.0 in any bucket.
        let series = cpu.utilization_series(cpu.drained_at());
        prop_assert!(series.iter().all(|u| (0.0..=1.0).contains(u)));
    }

    /// Percentiles are monotone in `p` and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(samples in prop::collection::vec(0.0f64..1e9, 1..200)) {
        use crystalnet_sim::metrics::percentile_f64;
        let lo = percentile_f64(&samples, 10.0).unwrap();
        let mid = percentile_f64(&samples, 50.0).unwrap();
        let hi = percentile_f64(&samples, 90.0).unwrap();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(min <= lo && lo <= mid && mid <= hi && hi <= max);
    }
}
