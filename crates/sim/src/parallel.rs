//! Conservative windowed parallel execution over sharded engines.
//!
//! The serial [`Engine`] steps one event at a time in `(time, key, seq)`
//! order. This module runs *several* engines — shards of one logical
//! simulation — on worker threads, synchronizing only at virtual-time
//! window barriers. The scheme is classic conservative (Chandy–Misra-style)
//! lookahead: if every cross-shard interaction scheduled at time `t`
//! arrives at its destination no earlier than `t + lookahead`, then every
//! shard may safely execute all events in `[w, w + lookahead)` without
//! hearing from its peers, where `w` is the *global* minimum pending-event
//! time. Cross-shard events produced inside the window are exchanged at
//! the barrier and enqueued before the next window is computed.
//!
//! # Determinism contract
//!
//! The executor is *bit-identical* to serial execution provided the world
//! meets two obligations:
//!
//! 1. **Total event order.** Same-time events must be totally ordered by
//!    [`EventFire::key`] — keys must be globally unique per (time, event)
//!    (events deliberately replicated onto several shards share a key and
//!    count as one logical event). Cross-shard envelopes are sorted by
//!    `(time, key)` before enqueueing, so the receiver replays them at
//!    exactly the serial position regardless of which barrier round
//!    delivered them.
//! 2. **Honest lookahead.** No event handler may cause an effect on
//!    another shard earlier than `now + lookahead`. The caller computes
//!    `lookahead` from the model (e.g. the minimum cut-link latency).
//!
//! The serial quiescence loop re-evaluates its stop predicate *between
//! every two events*, so windows are additionally clipped at the quiet
//! horizon (`last + quiet`) and at `deadline`: no event the serial loop
//! would have left unfired is ever fired here. Past the quiet horizon
//! (e.g. a scripted link flap long after convergence) the coordinator
//! degrades to lock-step single-stepping of the globally minimal event
//! until activity resumes — rare, transient, and exact.
//!
//! Worker threads communicate over `crossbeam` channels: the coordinator
//! broadcasts `Run { end }` commands carrying each shard's inbox, workers
//! reply with a status (queue head, quiescence counters) plus their
//! outbox of cross-shard envelopes.

use crate::engine::{Engine, EventFire};
use crate::time::{SimDuration, SimTime};
use crossbeam::channel::{self, Sender};

/// World-side hooks the parallel executor needs from a shard.
///
/// A shard world is a replica of the full simulation state that *owns* a
/// subset of the actors; events for non-owned actors are routed to the
/// owning shard through the outbox instead of the local queue.
pub trait ParallelWorld: Send + Sized {
    /// The event type shards exchange.
    type Ev: EventFire<Self> + Send;

    /// Drains the cross-shard envelopes emitted since the last barrier:
    /// `(destination shard, due time, event)`.
    fn take_outbox(&mut self) -> Vec<(usize, SimTime, Self::Ev)>;

    /// Accounting hook invoked for each incoming envelope just before it
    /// is enqueued locally (e.g. bump a causal-pending counter).
    fn accept_remote(&mut self, ev: &Self::Ev);

    /// Whether `ev` can still trigger activity (counts against global
    /// quiescence). Pure self-rearming timers return `false`.
    fn is_causal(ev: &Self::Ev) -> bool;

    /// Number of locally queued events that can still trigger activity.
    fn causal_pending(&self) -> u64;

    /// Completion time of the last activity on this shard.
    fn last_activity(&self) -> SimTime;
}

/// Result of a parallel run: the verdict plus the shard engines for the
/// caller to merge back into its serial representation.
pub struct ParallelOutcome<W: ParallelWorld> {
    /// The quiescence instant (max [`ParallelWorld::last_activity`]), or
    /// `None` on deadline overrun — mirroring the serial convergence loop.
    pub converged_at: Option<SimTime>,
    /// The furthest virtual time any shard reached.
    pub clock: SimTime,
    /// The shard engines, in input order, with undelivered envelopes
    /// already re-enqueued on their destination shard.
    pub shards: Vec<Engine<W, W::Ev>>,
    /// Conservative windows broadcast by the coordinator. Execution-shape
    /// diagnostic: varies with the shard count.
    pub windows: u64,
    /// Lock-step single-event rounds past the quiet/deadline horizons.
    /// Execution-shape diagnostic.
    pub lockstep_rounds: u64,
}

/// Coordinator → worker commands.
enum Cmd<E> {
    /// Enqueue `inbox`, run all local events with `time < end`, report.
    Run {
        end: SimTime,
        inbox: Vec<(SimTime, E)>,
    },
    /// Fire exactly one event (lock-step mode past the quiet horizon).
    StepOne,
    /// Enqueue `inbox` and return the engine to the coordinator.
    Finish { inbox: Vec<(SimTime, E)> },
}

/// Worker → coordinator status, sent once at startup and after every
/// window.
struct Status<E> {
    shard: usize,
    next: Option<(SimTime, u64)>,
    causal: u64,
    last: SimTime,
    clock: SimTime,
    outbox: Vec<(usize, SimTime, E)>,
}

fn status_of<W: ParallelWorld>(
    shard: usize,
    eng: &Engine<W, W::Ev>,
    outbox: Vec<(usize, SimTime, W::Ev)>,
) -> Status<W::Ev> {
    Status {
        shard,
        next: eng.next_event_rank(),
        causal: eng.world.causal_pending(),
        last: eng.world.last_activity(),
        clock: eng.now(),
        outbox,
    }
}

/// Enqueues cross-shard envelopes in deterministic `(time, key)` order.
fn enqueue<W: ParallelWorld>(eng: &mut Engine<W, W::Ev>, mut inbox: Vec<(SimTime, W::Ev)>) {
    inbox.sort_by_key(|(t, ev)| (*t, ev.key()));
    for (t, ev) in inbox {
        eng.world.accept_remote(&ev);
        eng.schedule_event_at(t, ev);
    }
}

/// Runs sharded engines until global quiescence: no causal events remain
/// and the next pending event (anywhere) lies more than `quiet` past the
/// last activity. Returns `converged_at = None` if quiescence is not
/// reached by `deadline`.
///
/// `lookahead` is the conservative bound on cross-shard effect latency;
/// it is clamped to at least 1 ns (a degenerate but correct serial-ish
/// schedule).
///
/// # Panics
///
/// Panics if `shards` is empty or a worker thread panics (e.g. an event
/// handler panicked).
pub fn run_shards_until_quiet<W: ParallelWorld>(
    shards: Vec<Engine<W, W::Ev>>,
    lookahead: SimDuration,
    quiet: SimDuration,
    deadline: SimTime,
) -> ParallelOutcome<W> {
    let k = shards.len();
    assert!(k > 0, "at least one shard required");
    let lookahead = SimDuration::from_nanos(lookahead.as_nanos().max(1));

    std::thread::scope(|scope| {
        let (stx, srx) = channel::unbounded::<Status<W::Ev>>();
        let mut txs: Vec<Sender<Cmd<W::Ev>>> = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        for (i, mut eng) in shards.into_iter().enumerate() {
            let (tx, rx) = channel::unbounded::<Cmd<W::Ev>>();
            txs.push(tx);
            let stx = stx.clone();
            handles.push(scope.spawn(move || {
                // Initial status so the coordinator sees the starting
                // queue before the first window.
                stx.send(status_of(i, &eng, Vec::new())).ok();
                loop {
                    match rx.recv().expect("coordinator hung up") {
                        Cmd::Run { end, inbox } => {
                            enqueue(&mut eng, inbox);
                            while let Some(t) = eng.next_event_time() {
                                if t >= end {
                                    break;
                                }
                                eng.step();
                            }
                            let outbox = eng.world.take_outbox();
                            stx.send(status_of(i, &eng, outbox)).ok();
                        }
                        Cmd::StepOne => {
                            eng.step();
                            let outbox = eng.world.take_outbox();
                            stx.send(status_of(i, &eng, outbox)).ok();
                        }
                        Cmd::Finish { inbox } => {
                            enqueue(&mut eng, inbox);
                            return eng;
                        }
                    }
                }
            }));
        }
        drop(stx);

        let mut stats: Vec<Option<Status<W::Ev>>> = (0..k).map(|_| None).collect();
        // Cross-shard envelopes awaiting delivery, per destination.
        let mut inflight: Vec<Vec<(SimTime, W::Ev)>> = (0..k).map(|_| Vec::new()).collect();
        let collect = |stats: &mut Vec<Option<Status<W::Ev>>>,
                       inflight: &mut Vec<Vec<(SimTime, W::Ev)>>,
                       expected: usize| {
            for _ in 0..expected {
                let mut st = srx.recv().expect("worker died");
                for (dest, t, ev) in st.outbox.drain(..) {
                    inflight[dest].push((t, ev));
                }
                let shard = st.shard;
                stats[shard] = Some(st);
            }
        };
        collect(&mut stats, &mut inflight, k);

        let epsilon = SimDuration::from_nanos(1);
        let converged_at;
        let mut windows: u64 = 0;
        let mut lockstep_rounds: u64 = 0;
        loop {
            // Global view: shard queues plus in-flight envelopes.
            let mut next: Option<(SimTime, u64)> = None;
            let mut causal: u64 = 0;
            let mut last = SimTime::ZERO;
            for st in stats.iter().flatten() {
                if let Some(rank) = st.next {
                    next = Some(next.map_or(rank, |n| n.min(rank)));
                }
                causal += st.causal;
                last = last.max(st.last);
            }
            for (t, ev) in inflight.iter().flatten() {
                let rank = (*t, ev.key());
                next = Some(next.map_or(rank, |n| n.min(rank)));
                causal += u64::from(W::is_causal(ev));
            }
            match next {
                // Nothing left anywhere: quiesced (mirrors the serial
                // loop's empty-queue arm).
                None => {
                    converged_at = Some(last);
                    break;
                }
                // Only acausal work remains and it lies beyond the quiet
                // horizon.
                Some((t, _)) if causal == 0 && t > last + quiet => {
                    converged_at = Some(last);
                    break;
                }
                // Past the quiet horizon (scripted far-future events) or
                // past the deadline, the serial loop re-arms its predicate
                // between every two events, so no window is safe: fire
                // exactly the globally minimal event, lock-step. A key
                // replicated across shards is one logical event — step
                // every holder.
                Some((t, key)) if t > deadline || t > last + quiet => {
                    if inflight.iter().any(|v| !v.is_empty()) {
                        // Deliver envelopes first: the minimal event may
                        // still be in flight. `end = t` fires nothing.
                        for (i, tx) in txs.iter().enumerate() {
                            tx.send(Cmd::Run {
                                end: t,
                                inbox: std::mem::take(&mut inflight[i]),
                            })
                            .expect("worker died");
                        }
                        collect(&mut stats, &mut inflight, k);
                        continue;
                    }
                    let holders: Vec<usize> = stats
                        .iter()
                        .flatten()
                        .filter(|st| st.next == Some((t, key)))
                        .map(|st| st.shard)
                        .collect();
                    lockstep_rounds += 1;
                    for &i in &holders {
                        txs[i].send(Cmd::StepOne).expect("worker died");
                    }
                    collect(&mut stats, &mut inflight, holders.len());
                    if t > deadline {
                        // The serial loop fires the first over-deadline
                        // event, then gives up; so do we.
                        converged_at = None;
                        break;
                    }
                }
                Some((t, _)) => {
                    // Conservative window, clipped so no event the serial
                    // loop would re-check its predicate *before* can fire:
                    // the quiet horizon and the deadline are both
                    // predicate edges.
                    let end = (t + lookahead)
                        .min(last + quiet + epsilon)
                        .min(deadline + epsilon);
                    windows += 1;
                    for (i, tx) in txs.iter().enumerate() {
                        tx.send(Cmd::Run {
                            end,
                            inbox: std::mem::take(&mut inflight[i]),
                        })
                        .expect("worker died");
                    }
                    collect(&mut stats, &mut inflight, k);
                }
            }
        }

        let clock = stats
            .iter()
            .flatten()
            .map(|st| st.clock)
            .max()
            .unwrap_or(SimTime::ZERO);
        for (i, tx) in txs.iter().enumerate() {
            tx.send(Cmd::Finish {
                inbox: std::mem::take(&mut inflight[i]),
            })
            .expect("worker died");
        }
        let shards = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        ParallelOutcome {
            converged_at,
            clock,
            shards,
            windows,
            lockstep_rounds,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy world: shards relay a ping back and forth; each hop is causal
    /// work 10 µs after the previous one.
    struct Relay {
        id: usize,
        hops_seen: Vec<u64>,
        outbox: Vec<(usize, SimTime, Ping)>,
        causal: u64,
        last: SimTime,
    }

    struct Ping {
        key: u64,
        hops_left: u64,
    }

    const HOP: SimDuration = SimDuration::from_micros(10);

    impl EventFire<Relay> for Ping {
        fn key(&self) -> u64 {
            self.key
        }
        fn fire(self, e: &mut Engine<Relay, Ping>) {
            e.world.causal -= 1;
            e.world.last = e.now();
            e.world.hops_seen.push(self.hops_left);
            if self.hops_left > 0 {
                let dest = 1 - e.world.id;
                let next = Ping {
                    key: self.key + 1,
                    hops_left: self.hops_left - 1,
                };
                e.world.outbox.push((dest, e.now() + HOP, next));
            }
        }
    }

    impl ParallelWorld for Relay {
        type Ev = Ping;
        fn take_outbox(&mut self) -> Vec<(usize, SimTime, Ping)> {
            std::mem::take(&mut self.outbox)
        }
        fn accept_remote(&mut self, _ev: &Ping) {
            self.causal += 1;
        }
        fn is_causal(_ev: &Ping) -> bool {
            true
        }
        fn causal_pending(&self) -> u64 {
            self.causal
        }
        fn last_activity(&self) -> SimTime {
            self.last
        }
    }

    fn relay(id: usize) -> Engine<Relay, Ping> {
        Engine::new(Relay {
            id,
            hops_seen: Vec::new(),
            outbox: Vec::new(),
            causal: 0,
            last: SimTime::ZERO,
        })
    }

    #[test]
    fn ping_pong_converges_at_last_hop() {
        let mut a = relay(0);
        let b = relay(1);
        a.world.causal += 1;
        a.schedule_event_at(
            SimTime::ZERO + HOP,
            Ping {
                key: 1,
                hops_left: 100,
            },
        );
        let out = run_shards_until_quiet(
            vec![a, b],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + SimDuration::from_secs(10),
        );
        // Hop i fires at (i + 1) × 10 µs; the last at 101 × 10 µs.
        assert_eq!(out.converged_at, Some(SimTime::ZERO + HOP * 101));
        assert_eq!(out.clock, SimTime::ZERO + HOP * 101);
        let total: usize = out.shards.iter().map(|s| s.world.hops_seen.len()).sum();
        assert_eq!(total, 101);
        // Even hops land on shard 0, odd on shard 1, in descending order.
        assert!(out.shards[0].world.hops_seen.iter().all(|h| h % 2 == 0));
        assert!(out.shards[1].world.hops_seen.iter().all(|h| h % 2 == 1));
        for s in &out.shards {
            assert!(s.world.hops_seen.windows(2).all(|w| w[0] > w[1]));
            assert_eq!(s.world.causal_pending(), 0);
        }
    }

    #[test]
    fn deadline_overrun_reports_none() {
        let mut a = relay(0);
        let b = relay(1);
        a.world.causal += 1;
        a.schedule_event_at(
            SimTime::ZERO + HOP,
            Ping {
                key: 1,
                hops_left: 1_000,
            },
        );
        let out = run_shards_until_quiet(
            vec![a, b],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + HOP * 10,
        );
        assert_eq!(out.converged_at, None);
        // Like the serial loop, exactly one over-deadline event fired
        // (hops at 10..=100 µs within the deadline, plus the one at
        // 110 µs), and its follow-up envelope was requeued, not lost.
        let fired: usize = out.shards.iter().map(|s| s.world.hops_seen.len()).sum();
        assert_eq!(fired, 11);
        let queued: usize = out.shards.iter().map(Engine::events_pending).sum();
        assert_eq!(queued, 1);
    }

    #[test]
    fn far_future_causal_event_single_steps_exactly() {
        // A scripted event long past the quiet horizon: the coordinator
        // must drop to lock-step so the quiescence predicate is evaluated
        // between every two events, exactly like the serial loop.
        let mut a = relay(0);
        let b = relay(1);
        a.world.causal += 2;
        a.schedule_event_at(
            SimTime::ZERO + HOP,
            Ping {
                key: 1,
                hops_left: 2,
            },
        );
        let resume = SimTime::ZERO + SimDuration::from_secs(5);
        a.schedule_event_at(
            resume,
            Ping {
                key: 1000,
                hops_left: 2,
            },
        );
        let out = run_shards_until_quiet(
            vec![a, b],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + SimDuration::from_secs(10),
        );
        // First chain ends at 30 µs; the scripted ping resumes at 5 s and
        // its chain ends two hops later.
        assert_eq!(out.converged_at, Some(resume + HOP * 2));
        let total: usize = out.shards.iter().map(|s| s.world.hops_seen.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn single_shard_runs_serially() {
        let mut a = relay(0);
        a.world.id = 1; // route "cross-shard" pings back to itself
        a.world.causal += 1;
        a.schedule_event_at(
            SimTime::ZERO + HOP,
            Ping {
                key: 1,
                hops_left: 5,
            },
        );
        let out = run_shards_until_quiet(
            vec![a],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + SimDuration::from_secs(1),
        );
        assert_eq!(out.converged_at, Some(SimTime::ZERO + HOP * 6));
        assert_eq!(out.shards[0].world.hops_seen, vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn empty_shards_quiesce_at_zero() {
        let out = run_shards_until_quiet::<Relay>(
            vec![relay(0), relay(1)],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + SimDuration::from_secs(1),
        );
        assert_eq!(out.converged_at, Some(SimTime::ZERO));
    }
}
