//! Conservative parallel execution over sharded engines, with per-pair
//! lookahead and asynchronous window advancement.
//!
//! The serial [`Engine`] steps one event at a time in `(time, key, seq)`
//! order. This module runs *several* engines — shards of one logical
//! simulation — on worker threads. The scheme is conservative
//! (Chandy–Misra-style) lookahead, but unlike the classic global-barrier
//! variant there is **no global window**: each shard advances to its own
//! *safe horizon* derived from a k×k [`LookaheadMatrix`], and the
//! coordinator grants a shard its next window as soon as *that shard's*
//! dependencies allow — not after a barrier collect of all k shards.
//!
//! # Lookahead matrix
//!
//! `L[i][j]` is a lower bound (in virtual nanoseconds) on how long any
//! effect takes to travel from shard `i` to shard `j` — for a network
//! partition, the minimum latency over links crossing from `i` to `j`,
//! and ∞ when no edge crosses. The matrix is closed under composition
//! (Floyd–Warshall): if the cheapest influence path from `j` to `i` runs
//! through `m`, the closure entry `dist[j][i]` reflects it. Every finite
//! entry is clamped to ≥ 1 ns so progress is guaranteed.
//!
//! # Per-shard horizon rule
//!
//! Let `lb_j` be a lower bound on the next virtual time shard `j` can
//! execute an event at — its reported queue head when idle, the head it
//! was granted at when busy, always folded with the earliest in-flight
//! envelope addressed to it. Shard `i` may run every event strictly
//! before
//!
//! ```text
//! horizon_i = min( lb_i + echo_i ,  min over j≠i ( lb_j + dist[j][i] ) )
//! ```
//!
//! The second term is the classic bound: nothing any peer does can reach
//! `i` earlier. The first term guards against *echo*: shard `i`'s own
//! cross-shard effects reflecting back through an otherwise-idle peer.
//! `echo_i = min over j≠i (dist[i][j] + dist[j][i])` is the fastest
//! round trip, so no consequence of `i`'s own work (which starts no
//! earlier than `lb_i`) can return before `lb_i + echo_i`. Without this
//! term a shard facing only empty peers would race past its own replies.
//!
//! Because shards bounded only by their actual neighbors run far ahead,
//! unrelated pods of a Clos fabric no longer serialize each other, and an
//! idle shard with no work below its peers' horizons receives *no*
//! messages at all — window traffic is proportional to useful work, not
//! to `k × rounds`.
//!
//! # Determinism contract
//!
//! The executor is *bit-identical* to serial execution provided the world
//! meets two obligations:
//!
//! 1. **Total event order.** Same-time events must be totally ordered by
//!    [`EventFire::key`] — keys must be globally unique per (time, event)
//!    (events deliberately replicated onto several shards share a key and
//!    count as one logical event). Cross-shard envelopes are merged
//!    pre-sorted by `(time, key)`, so the receiver replays them at
//!    exactly the serial position regardless of which grant delivered
//!    them.
//! 2. **Honest lookahead.** No event handler may cause an effect on
//!    shard `j` earlier than `now + L[i][j]` when running on shard `i`.
//!
//! Under those obligations the horizon rule guarantees every envelope is
//! delivered before its destination's clock reaches it: a grant to `i`
//! ends at `end_i ≤ horizon_i ≤ lb_j + dist[j][i]`, and any envelope a
//! peer later emits toward `i` is due no earlier than that. Induction
//! over grants then gives bit-identical replay: each shard executes
//! exactly the serial event sequence restricted to the actors it owns.
//!
//! The serial quiescence loop re-evaluates its stop predicate *between
//! every two events*, so grants are additionally clipped at the quiet
//! horizon (`last + quiet`) and at `deadline`; the clip uses the
//! coordinator's possibly-stale view of `last`, which is conservative
//! (stale `last` is only ever smaller, so no event the serial loop would
//! have left unfired can fire here). Stop predicates and the lock-step
//! fallback are evaluated only when every shard is idle and every
//! envelope delivered — i.e. against an *exact* global state. Past the
//! quiet horizon (e.g. a scripted link flap long after convergence) the
//! coordinator degrades to lock-step single-stepping of the globally
//! minimal event until activity resumes — rare, transient, and exact.
//!
//! Worker threads communicate over `crossbeam` channels: the coordinator
//! sends per-shard `Run` grants carrying pre-sorted inboxes, workers
//! reply with a status (queue head, quiescence counters, events executed,
//! idle wall-time) plus their outbox of cross-shard envelopes.

use crate::engine::{Engine, EventFire};
use crate::time::{SimDuration, SimTime};
use crossbeam::channel::{self, Sender};
use std::time::Instant;

/// Sentinel for "no influence path" lookahead entries.
pub const NO_PATH: u64 = u64::MAX;

/// Per-shard-pair lookahead bounds, closed under path composition.
///
/// Entry `(i, j)` bounds from below the virtual latency of any effect
/// shard `i` can cause on shard `j`. Construct with [`Self::from_nanos`]
/// (a raw direct-edge matrix, [`NO_PATH`] where no edge crosses) or
/// [`Self::uniform`] (the legacy single-scalar scheme).
#[derive(Debug, Clone)]
pub struct LookaheadMatrix {
    k: usize,
    /// All-pairs closure, row-major `dist[i * k + j]`, diagonal 0.
    dist: Vec<u64>,
    /// `echo[i]` = cheapest round trip `i → j → i` over distinct `j`.
    echo: Vec<u64>,
}

impl LookaheadMatrix {
    /// Builds the matrix from direct per-pair bounds in nanoseconds
    /// (`direct[i * k + j]`, [`NO_PATH`] meaning "no crossing edge").
    /// Off-diagonal finite entries are clamped to ≥ 1 ns, then closed
    /// with Floyd–Warshall so transitive influence paths are honored.
    ///
    /// # Panics
    ///
    /// Panics if `direct.len() != k * k`.
    #[must_use]
    pub fn from_nanos(k: usize, direct: Vec<u64>) -> Self {
        assert_eq!(direct.len(), k * k, "matrix must be k×k");
        let mut dist = direct;
        for i in 0..k {
            for j in 0..k {
                let e = &mut dist[i * k + j];
                if i == j {
                    *e = 0;
                } else if *e != NO_PATH {
                    *e = (*e).max(1);
                }
            }
        }
        // Floyd–Warshall with saturating composition.
        for m in 0..k {
            for i in 0..k {
                let im = dist[i * k + m];
                if im == NO_PATH {
                    continue;
                }
                for j in 0..k {
                    let mj = dist[m * k + j];
                    if mj == NO_PATH {
                        continue;
                    }
                    let via = im.saturating_add(mj);
                    let e = &mut dist[i * k + j];
                    if via < *e {
                        *e = via;
                    }
                }
            }
        }
        let echo = (0..k)
            .map(|i| {
                (0..k)
                    .filter(|&j| j != i)
                    .map(|j| dist[i * k + j].saturating_add(dist[j * k + i]))
                    .min()
                    .unwrap_or(NO_PATH)
            })
            .collect();
        Self { k, dist, echo }
    }

    /// The legacy uniform scheme: every distinct pair bounded by the one
    /// scalar `lookahead` (clamped to ≥ 1 ns).
    #[must_use]
    pub fn uniform(k: usize, lookahead: SimDuration) -> Self {
        let la = lookahead.as_nanos().max(1);
        let direct = (0..k * k)
            .map(|e| if e % (k + 1) == 0 { 0 } else { la })
            .collect();
        Self::from_nanos(k, direct)
    }

    /// Number of shards the matrix describes.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.k
    }

    /// Closed lower bound on influence latency `from → to` (ns).
    #[must_use]
    pub fn dist(&self, from: usize, to: usize) -> u64 {
        self.dist[from * self.k + to]
    }

    /// Cheapest round-trip latency leaving and re-entering `shard` (ns).
    #[must_use]
    pub fn echo(&self, shard: usize) -> u64 {
        self.echo[shard]
    }
}

/// World-side hooks the parallel executor needs from a shard.
///
/// A shard world is a replica of the full simulation state that *owns* a
/// subset of the actors; events for non-owned actors are routed to the
/// owning shard through the outbox instead of the local queue.
pub trait ParallelWorld: Send + Sized {
    /// The event type shards exchange.
    type Ev: EventFire<Self> + Send;

    /// Drains the cross-shard envelopes emitted since the last report:
    /// `(destination shard, due time, event)`.
    fn take_outbox(&mut self) -> Vec<(usize, SimTime, Self::Ev)>;

    /// Accounting hook invoked for each incoming envelope just before it
    /// is enqueued locally (e.g. bump a causal-pending counter).
    fn accept_remote(&mut self, ev: &Self::Ev);

    /// Whether `ev` can still trigger activity (counts against global
    /// quiescence). Pure self-rearming timers return `false`.
    fn is_causal(ev: &Self::Ev) -> bool;

    /// Number of locally queued events that can still trigger activity.
    fn causal_pending(&self) -> u64;

    /// Completion time of the last activity on this shard.
    fn last_activity(&self) -> SimTime;
}

/// Events-per-grant distribution in power-of-two buckets: bucket 0
/// counts empty grants, bucket `b > 0` counts grants that executed
/// `[2^(b-1), 2^b)` events, the last bucket absorbs the tail.
pub const WINDOW_HIST_BUCKETS: usize = 17;

/// Compact histogram of events executed per window grant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowHist {
    /// Grants recorded.
    pub count: u64,
    /// Total events across recorded grants.
    pub sum: u64,
    /// Largest single grant.
    pub max: u64,
    /// Power-of-two buckets; see [`WINDOW_HIST_BUCKETS`].
    pub buckets: [u64; WINDOW_HIST_BUCKETS],
}

impl WindowHist {
    /// Records one grant that executed `events` events. `sum`
    /// saturates rather than wraps on pathological totals.
    pub fn record(&mut self, events: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(events);
        self.max = self.max.max(events);
        let b = if events == 0 {
            0
        } else {
            ((64 - events.leading_zeros()) as usize).min(WINDOW_HIST_BUCKETS - 1)
        };
        self.buckets[b] += 1;
    }

    /// Folds another histogram into this one. Associative and
    /// commutative, so shard-local histograms merge in any order.
    pub fn absorb(&mut self, other: &Self) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (b, v) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += v;
        }
    }

    /// Mean events per grant (0.0 when nothing was recorded).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The binding term of the horizon rule when a command was issued —
/// *why* the grant's window ended where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// The shard's own echo bound `lb_i + echo_i` was the minimum.
    Echo,
    /// Peer `j`'s bound `lb_j + dist[j][i]` was the minimum — the
    /// shard is starved for lookahead from that peer.
    Peer(usize),
    /// The window was clipped at the quiet horizon `last + quiet`.
    QuietClip,
    /// The window was clipped at `deadline`.
    DeadlineClip,
    /// A lock-step single-event round past the quiet horizon.
    Lockstep,
    /// An envelope-delivery grant that fires nothing.
    Deliver,
}

/// One coordinator command with wall-clock bounds, captured only on
/// profiling runs. Timestamps are nanoseconds since coordinator start;
/// wall-clock, hence nondeterministic — route to diagnostics, never
/// the canonical report.
#[derive(Debug, Clone)]
pub struct GrantRecord {
    /// Destination shard.
    pub shard: usize,
    /// Why the window ended where it did.
    pub limiter: Limiter,
    /// When the coordinator sent the command.
    pub issue_ns: u64,
    /// When the coordinator folded the reply back in.
    pub done_ns: u64,
    /// Events the command executed.
    pub executed: u64,
}

/// Wall-clock profile of one parallel run (profiling runs only).
#[derive(Debug, Clone, Default)]
pub struct ParallelProfile {
    /// Every command issued, in completion order.
    pub grants: Vec<GrantRecord>,
    /// Coordinator wall-clock spent merging worker replies (outbox
    /// sort/merge plus status bookkeeping).
    pub merge_ns: u64,
    /// Cumulative wall-clock each worker spent executing commands, in
    /// shard order.
    pub busy_ns: Vec<u64>,
    /// Wall-clock from coordinator start to verdict.
    pub run_wall_ns: u64,
}

/// Result of a parallel run: the verdict plus the shard engines for the
/// caller to merge back into its serial representation.
pub struct ParallelOutcome<W: ParallelWorld> {
    /// The quiescence instant (max [`ParallelWorld::last_activity`]), or
    /// `None` on deadline overrun — mirroring the serial convergence loop.
    pub converged_at: Option<SimTime>,
    /// The furthest virtual time any shard reached.
    pub clock: SimTime,
    /// The shard engines, in input order, with undelivered envelopes
    /// already re-enqueued on their destination shard.
    pub shards: Vec<Engine<W, W::Ev>>,
    /// Window grants issued (per-shard, not barrier rounds). Execution-
    /// shape diagnostic: varies with the shard count.
    pub windows: u64,
    /// Lock-step single-event rounds past the quiet/deadline horizons.
    /// Execution-shape diagnostic.
    pub lockstep_rounds: u64,
    /// Times a shard's computed safe horizon strictly advanced.
    pub horizon_advances: u64,
    /// Wall-clock nanoseconds each worker spent blocked waiting for a
    /// grant, in shard order. Wall-clock, hence nondeterministic: route
    /// to diagnostics, never the canonical report.
    pub idle_ns: Vec<u64>,
    /// Events executed per window grant.
    pub window_hist: WindowHist,
    /// Grant timeline and coordinator timings; `Some` only when the
    /// run was started with profiling enabled.
    pub profile: Option<ParallelProfile>,
}

/// Coordinator → worker commands.
enum Cmd<E> {
    /// Enqueue `inbox` (pre-sorted by `(time, key)`), run all local
    /// events with `time < end`, report.
    Run {
        end: SimTime,
        inbox: Vec<(SimTime, E)>,
    },
    /// Fire exactly one event (lock-step mode past the quiet horizon).
    StepOne,
    /// Enqueue `inbox` and return the engine to the coordinator.
    Finish { inbox: Vec<(SimTime, E)> },
}

/// Worker → coordinator status, sent once at startup and after every
/// command.
struct Status<E> {
    shard: usize,
    next: Option<(SimTime, u64)>,
    causal: u64,
    last: SimTime,
    clock: SimTime,
    /// Events executed by the command this status answers.
    executed_delta: u64,
    /// Cumulative wall-clock nanoseconds spent blocked on the grant
    /// channel.
    idle_ns: u64,
    /// Cumulative wall-clock nanoseconds spent executing commands.
    busy_ns: u64,
    outbox: Vec<(usize, SimTime, E)>,
}

fn status_of<W: ParallelWorld>(
    shard: usize,
    eng: &Engine<W, W::Ev>,
    executed_delta: u64,
    idle_ns: u64,
    busy_ns: u64,
    outbox: Vec<(usize, SimTime, W::Ev)>,
) -> Status<W::Ev> {
    Status {
        shard,
        next: eng.next_event_rank(),
        causal: eng.world.causal_pending(),
        last: eng.world.last_activity(),
        clock: eng.now(),
        executed_delta,
        idle_ns,
        busy_ns,
        outbox,
    }
}

/// Enqueues a pre-sorted inbox of cross-shard envelopes.
///
/// The coordinator maintains in-flight envelopes sorted by `(time, key)`,
/// so the worker enqueues without re-sorting (the engine itself orders
/// same-time events by key).
fn enqueue<W: ParallelWorld>(eng: &mut Engine<W, W::Ev>, inbox: Vec<(SimTime, W::Ev)>) {
    debug_assert!(
        inbox
            .windows(2)
            .all(|w| (w[0].0, w[0].1.key()) <= (w[1].0, w[1].1.key())),
        "inbox must arrive pre-sorted by (time, key)"
    );
    for (t, ev) in inbox {
        debug_assert!(
            t >= eng.now(),
            "late envelope: lookahead matrix was dishonest"
        );
        eng.world.accept_remote(&ev);
        eng.schedule_event_at(t, ev);
    }
}

/// What a busy worker was last told to do (drives telemetry attribution
/// when its status comes back).
#[derive(Clone, Copy, PartialEq, Eq)]
enum BusyKind {
    /// A real window grant.
    Window,
    /// An envelope delivery that fires nothing (`end` = global min).
    Deliver,
    /// A lock-step single event.
    Step,
}

/// Runs sharded engines until global quiescence under the legacy uniform
/// lookahead scalar — see [`run_shards_until_quiet_matrix`] for the
/// per-pair variant this wraps.
pub fn run_shards_until_quiet<W: ParallelWorld>(
    shards: Vec<Engine<W, W::Ev>>,
    lookahead: SimDuration,
    quiet: SimDuration,
    deadline: SimTime,
) -> ParallelOutcome<W> {
    let m = LookaheadMatrix::uniform(shards.len(), lookahead);
    run_shards_until_quiet_matrix(shards, &m, quiet, deadline)
}

/// Coordinator bookkeeping, folded into a struct so the integrate step
/// (worker reply → coordinator state) updates it as one unit and the
/// profiling capture can ride along without widening every call site.
struct Coord<W: ParallelWorld> {
    k: usize,
    /// Latest report per shard.
    stats: Vec<Option<Status<W::Ev>>>,
    /// Set while a command is outstanding, with the virtual-time lower
    /// bound recorded at grant time (no event the worker fires, and no
    /// envelope it emits, can precede it).
    busy: Vec<Option<(BusyKind, SimTime)>>,
    /// Cross-shard envelopes awaiting delivery, per destination,
    /// sorted by `(time, key)`.
    inflight: Vec<Vec<(SimTime, W::Ev)>>,
    idle_ns: Vec<u64>,
    busy_ns: Vec<u64>,
    window_hist: WindowHist,
    /// Limiter + issue timestamp of the outstanding command; recorded
    /// only when profiling.
    pending: Vec<Option<(Limiter, u64)>>,
    grants: Vec<GrantRecord>,
    merge_ns: u64,
    profile: bool,
    started: Instant,
}

impl<W: ParallelWorld> Coord<W> {
    fn new(k: usize, profile: bool) -> Self {
        Self {
            k,
            stats: (0..k).map(|_| None).collect(),
            busy: vec![None; k],
            inflight: (0..k).map(|_| Vec::new()).collect(),
            idle_ns: vec![0; k],
            busy_ns: vec![0; k],
            window_hist: WindowHist::default(),
            pending: vec![None; k],
            grants: Vec::new(),
            merge_ns: 0,
            profile,
            started: Instant::now(),
        }
    }

    fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Marks `shard` busy on a just-sent command; captures the grant's
    /// limiter and issue time when profiling.
    fn issue(&mut self, shard: usize, kind: BusyKind, bound: SimTime, limiter: Limiter) {
        self.busy[shard] = Some((kind, bound));
        if self.profile {
            self.pending[shard] = Some((limiter, self.elapsed_ns()));
        }
    }

    /// Folds one worker report into coordinator state.
    fn integrate(&mut self, st: Status<W::Ev>) {
        let merge_started = if self.profile {
            Some(Instant::now())
        } else {
            None
        };
        let mut st = st;
        let shard = st.shard;
        let mut batches: Vec<Vec<(SimTime, W::Ev)>> = (0..self.k).map(|_| Vec::new()).collect();
        for (dest, t, ev) in st.outbox.drain(..) {
            batches[dest].push((t, ev));
        }
        for (dest, batch) in batches.into_iter().enumerate() {
            let mut batch: Vec<((SimTime, u64), W::Ev)> = batch
                .into_iter()
                .map(|(t, ev)| ((t, ev.key()), ev))
                .collect();
            batch.sort_by_key(|e| e.0);
            // Re-keyed merge keeps (time, key) order without Ord on Ev.
            let old = std::mem::take(&mut self.inflight[dest]);
            let mut merged = Vec::with_capacity(old.len() + batch.len());
            let mut a = old.into_iter().peekable();
            let mut b = batch.into_iter().peekable();
            while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
                let ra = (x.0, x.1.key());
                if ra <= y.0 {
                    merged.push(a.next().unwrap());
                } else {
                    let (rank, ev) = b.next().unwrap();
                    merged.push((rank.0, ev));
                }
            }
            merged.extend(a);
            merged.extend(b.map(|(rank, ev)| (rank.0, ev)));
            self.inflight[dest] = merged;
        }
        self.idle_ns[shard] = st.idle_ns;
        self.busy_ns[shard] = st.busy_ns;
        if let Some((BusyKind::Window, _)) = self.busy[shard] {
            self.window_hist.record(st.executed_delta);
        }
        if let Some((limiter, issue_ns)) = self.pending[shard].take() {
            self.grants.push(GrantRecord {
                shard,
                limiter,
                issue_ns,
                done_ns: self.elapsed_ns(),
                executed: st.executed_delta,
            });
        }
        self.busy[shard] = None;
        self.stats[shard] = Some(st);
        if let Some(t0) = merge_started {
            self.merge_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Extracts the profile section (consumes the captured grants).
    fn take_profile(&mut self) -> Option<ParallelProfile> {
        if !self.profile {
            return None;
        }
        Some(ParallelProfile {
            grants: std::mem::take(&mut self.grants),
            merge_ns: self.merge_ns,
            busy_ns: self.busy_ns.clone(),
            run_wall_ns: self.elapsed_ns(),
        })
    }
}

/// Runs sharded engines until global quiescence: no causal events remain
/// and the next pending event (anywhere) lies more than `quiet` past the
/// last activity. Returns `converged_at = None` if quiescence is not
/// reached by `deadline`.
///
/// `matrix` carries the per-shard-pair lookahead bounds; see the module
/// docs for the horizon rule. Workers are granted windows independently
/// and asynchronously — there is no global barrier.
///
/// # Panics
///
/// Panics if `shards` is empty, `matrix.shard_count() != shards.len()`,
/// or a worker thread panics (e.g. an event handler panicked).
pub fn run_shards_until_quiet_matrix<W: ParallelWorld>(
    shards: Vec<Engine<W, W::Ev>>,
    matrix: &LookaheadMatrix,
    quiet: SimDuration,
    deadline: SimTime,
) -> ParallelOutcome<W> {
    run_shards_until_quiet_matrix_profiled(shards, matrix, quiet, deadline, false)
}

/// [`run_shards_until_quiet_matrix`] with an explicit profiling switch.
///
/// When `profile` is true the coordinator additionally captures the
/// full grant timeline ([`GrantRecord`] per command, with the horizon
/// term that bounded each window), per-worker busy time, and its own
/// merge time, returned as [`ParallelOutcome::profile`]. Profiling
/// touches only wall-clock bookkeeping — the virtual event execution
/// is bit-identical either way.
///
/// # Panics
///
/// Panics if `shards` is empty, `matrix.shard_count() != shards.len()`,
/// or a worker thread panics (e.g. an event handler panicked).
pub fn run_shards_until_quiet_matrix_profiled<W: ParallelWorld>(
    shards: Vec<Engine<W, W::Ev>>,
    matrix: &LookaheadMatrix,
    quiet: SimDuration,
    deadline: SimTime,
    profile: bool,
) -> ParallelOutcome<W> {
    let k = shards.len();
    assert!(k > 0, "at least one shard required");
    assert_eq!(matrix.shard_count(), k, "matrix must match shard count");

    std::thread::scope(|scope| {
        let (stx, srx) = channel::unbounded::<Status<W::Ev>>();
        let mut txs: Vec<Sender<Cmd<W::Ev>>> = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        for (i, mut eng) in shards.into_iter().enumerate() {
            let (tx, rx) = channel::unbounded::<Cmd<W::Ev>>();
            txs.push(tx);
            let stx = stx.clone();
            handles.push(scope.spawn(move || {
                // Initial status so the coordinator sees the starting
                // queue before the first grant.
                stx.send(status_of(i, &eng, 0, 0, 0, Vec::new())).ok();
                let mut idle_ns: u64 = 0;
                let mut busy_ns: u64 = 0;
                loop {
                    let blocked = Instant::now();
                    let cmd = rx.recv().expect("coordinator hung up");
                    idle_ns += blocked.elapsed().as_nanos() as u64;
                    match cmd {
                        Cmd::Run { end, inbox } => {
                            let started = Instant::now();
                            enqueue(&mut eng, inbox);
                            let before = eng.events_executed();
                            while let Some(t) = eng.next_event_time() {
                                if t >= end {
                                    break;
                                }
                                eng.step();
                            }
                            let delta = eng.events_executed() - before;
                            let outbox = eng.world.take_outbox();
                            busy_ns += started.elapsed().as_nanos() as u64;
                            stx.send(status_of(i, &eng, delta, idle_ns, busy_ns, outbox))
                                .ok();
                        }
                        Cmd::StepOne => {
                            let started = Instant::now();
                            eng.step();
                            let outbox = eng.world.take_outbox();
                            busy_ns += started.elapsed().as_nanos() as u64;
                            stx.send(status_of(i, &eng, 1, idle_ns, busy_ns, outbox))
                                .ok();
                        }
                        Cmd::Finish { inbox } => {
                            enqueue(&mut eng, inbox);
                            return eng;
                        }
                    }
                }
            }));
        }
        drop(stx);

        let mut co = Coord::<W>::new(k, profile);
        let mut windows: u64 = 0;
        let mut lockstep_rounds: u64 = 0;
        let mut horizon_advances: u64 = 0;
        let mut horizon_seen: Vec<u64> = vec![0; k];

        // The first status from every worker (its starting queue).
        for _ in 0..k {
            let st = srx.recv().expect("worker died");
            co.integrate(st);
        }

        let epsilon = SimDuration::from_nanos(1);
        let at = |ns: u64| SimTime::ZERO + SimDuration::from_nanos(ns);
        let converged_at;
        loop {
            // Drain any further reports that arrived meanwhile.
            while let Ok(st) = srx.try_recv() {
                co.integrate(st);
            }

            // Per-shard lower bounds on the next executable event time:
            // reported queue head when idle, the grant-time bound while
            // busy, folded with the earliest in-flight envelope.
            let mut lb_ns: Vec<u64> = vec![u64::MAX; k];
            let mut next: Option<(SimTime, u64)> = None;
            let mut causal: u64 = 0;
            let mut last = SimTime::ZERO;
            for (i, lb_slot) in lb_ns.iter_mut().enumerate().take(k) {
                let st = co.stats[i].as_ref().expect("status seen for every shard");
                let mut lb = match co.busy[i] {
                    Some((_, bound)) => bound.as_nanos(),
                    None => st.next.map_or(u64::MAX, |(t, _)| t.as_nanos()),
                };
                if co.busy[i].is_none() {
                    if let Some(rank) = st.next {
                        next = Some(next.map_or(rank, |n| n.min(rank)));
                    }
                }
                if let Some((t, ev)) = co.inflight[i].first() {
                    lb = lb.min(t.as_nanos());
                    let rank = (*t, ev.key());
                    next = Some(next.map_or(rank, |n| n.min(rank)));
                }
                for (_, ev) in &co.inflight[i] {
                    causal += u64::from(W::is_causal(ev));
                }
                *lb_slot = lb;
                causal += st.causal;
                last = last.max(st.last);
            }
            let all_idle = co.busy.iter().all(Option::is_none);

            // Stop predicates and the lock-step fallback need the exact
            // serial view: every shard idle, every envelope visible.
            if all_idle {
                match next {
                    // Nothing left anywhere: quiesced (mirrors the serial
                    // loop's empty-queue arm).
                    None => {
                        converged_at = Some(last);
                        break;
                    }
                    // Only acausal work remains and it lies beyond the
                    // quiet horizon.
                    Some((t, _)) if causal == 0 && t > last + quiet => {
                        converged_at = Some(last);
                        break;
                    }
                    // Past the quiet horizon (scripted far-future events)
                    // or past the deadline, the serial loop re-arms its
                    // predicate between every two events, so no window is
                    // safe: fire exactly the globally minimal event,
                    // lock-step. A key replicated across shards is one
                    // logical event — step every holder.
                    Some((t, key)) if t > deadline || t > last + quiet => {
                        if co.inflight.iter().any(|v| !v.is_empty()) {
                            // Deliver envelopes first: the minimal event
                            // may still be in flight. `end = t` fires
                            // nothing (t is the global minimum).
                            let mut sent = 0usize;
                            for (i, tx) in txs.iter().enumerate().take(k) {
                                if co.inflight[i].is_empty() {
                                    continue;
                                }
                                co.issue(i, BusyKind::Deliver, t, Limiter::Deliver);
                                let inbox = std::mem::take(&mut co.inflight[i]);
                                tx.send(Cmd::Run { end: t, inbox }).expect("worker died");
                                sent += 1;
                            }
                            for _ in 0..sent {
                                let st = srx.recv().expect("worker died");
                                co.integrate(st);
                            }
                            continue;
                        }
                        let holders: Vec<usize> = co
                            .stats
                            .iter()
                            .flatten()
                            .filter(|st| st.next == Some((t, key)))
                            .map(|st| st.shard)
                            .collect();
                        lockstep_rounds += 1;
                        for &i in &holders {
                            co.issue(i, BusyKind::Step, t, Limiter::Lockstep);
                            txs[i].send(Cmd::StepOne).expect("worker died");
                        }
                        for _ in 0..holders.len() {
                            let st = srx.recv().expect("worker died");
                            co.integrate(st);
                        }
                        if t > deadline {
                            // The serial loop fires the first over-deadline
                            // event, then gives up; so do we.
                            converged_at = None;
                            break;
                        }
                        continue;
                    }
                    Some(_) => {}
                }
            }

            // Window grants: every idle shard whose earliest work lies
            // below its own safe horizon gets its next window now —
            // independently of its peers. Shards with nothing actionable
            // get no message at all.
            let quiet_ns = (last + quiet + epsilon).as_nanos();
            let deadline_ns = (deadline + epsilon).as_nanos();
            let clip_ns = quiet_ns.min(deadline_ns);
            let mut granted = 0usize;
            for i in 0..k {
                if co.busy[i].is_some() {
                    continue;
                }
                let eff_next = lb_ns[i];
                if eff_next == u64::MAX {
                    continue;
                }
                let mut horizon = lb_ns[i].saturating_add(matrix.echo(i));
                let mut limiter = Limiter::Echo;
                for (j, &lb) in lb_ns.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let d = matrix.dist(j, i);
                    if d == NO_PATH {
                        continue;
                    }
                    let bound = lb.saturating_add(d);
                    if bound < horizon {
                        horizon = bound;
                        limiter = Limiter::Peer(j);
                    }
                }
                if horizon > horizon_seen[i] {
                    horizon_seen[i] = horizon;
                    horizon_advances += 1;
                }
                let end_ns = horizon.min(clip_ns);
                if clip_ns < horizon {
                    limiter = if deadline_ns < quiet_ns {
                        Limiter::DeadlineClip
                    } else {
                        Limiter::QuietClip
                    };
                }
                if eff_next >= end_ns {
                    continue;
                }
                co.issue(i, BusyKind::Window, at(eff_next), limiter);
                windows += 1;
                granted += 1;
                let inbox = std::mem::take(&mut co.inflight[i]);
                txs[i]
                    .send(Cmd::Run {
                        end: at(end_ns),
                        inbox,
                    })
                    .expect("worker died");
            }
            if granted == 0 {
                // Nothing actionable until a busy worker reports. The
                // horizon rule guarantees the holder of the global
                // minimum is always grantable when everyone is idle, so
                // a stall here implies a busy peer exists.
                assert!(
                    !all_idle,
                    "coordinator stalled with all shards idle — horizon rule violated"
                );
                let st = srx.recv().expect("worker died");
                co.integrate(st);
            }
        }

        let clock = co
            .stats
            .iter()
            .flatten()
            .map(|st| st.clock)
            .max()
            .unwrap_or(SimTime::ZERO);
        for (i, tx) in txs.iter().enumerate() {
            tx.send(Cmd::Finish {
                inbox: std::mem::take(&mut co.inflight[i]),
            })
            .expect("worker died");
        }
        let shards = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        let profile = co.take_profile();
        ParallelOutcome {
            converged_at,
            clock,
            shards,
            windows,
            lockstep_rounds,
            horizon_advances,
            idle_ns: co.idle_ns,
            window_hist: co.window_hist,
            profile,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy world: shards relay a ping back and forth; each hop is causal
    /// work 10 µs after the previous one.
    struct Relay {
        id: usize,
        hops_seen: Vec<u64>,
        fire_times: Vec<SimTime>,
        outbox: Vec<(usize, SimTime, Ping)>,
        causal: u64,
        last: SimTime,
    }

    struct Ping {
        key: u64,
        hops_left: u64,
    }

    const HOP: SimDuration = SimDuration::from_micros(10);

    impl EventFire<Relay> for Ping {
        fn key(&self) -> u64 {
            self.key
        }
        fn fire(self, e: &mut Engine<Relay, Ping>) {
            e.world.causal -= 1;
            e.world.last = e.now();
            e.world.hops_seen.push(self.hops_left);
            e.world.fire_times.push(e.now());
            if self.hops_left > 0 {
                let dest = 1 - e.world.id;
                let next = Ping {
                    key: self.key + 1,
                    hops_left: self.hops_left - 1,
                };
                e.world.outbox.push((dest, e.now() + HOP, next));
            }
        }
    }

    impl ParallelWorld for Relay {
        type Ev = Ping;
        fn take_outbox(&mut self) -> Vec<(usize, SimTime, Ping)> {
            std::mem::take(&mut self.outbox)
        }
        fn accept_remote(&mut self, _ev: &Ping) {
            self.causal += 1;
        }
        fn is_causal(_ev: &Ping) -> bool {
            true
        }
        fn causal_pending(&self) -> u64 {
            self.causal
        }
        fn last_activity(&self) -> SimTime {
            self.last
        }
    }

    fn relay(id: usize) -> Engine<Relay, Ping> {
        Engine::new(Relay {
            id,
            hops_seen: Vec::new(),
            fire_times: Vec::new(),
            outbox: Vec::new(),
            causal: 0,
            last: SimTime::ZERO,
        })
    }

    #[test]
    fn ping_pong_converges_at_last_hop() {
        let mut a = relay(0);
        let b = relay(1);
        a.world.causal += 1;
        a.schedule_event_at(
            SimTime::ZERO + HOP,
            Ping {
                key: 1,
                hops_left: 100,
            },
        );
        let out = run_shards_until_quiet(
            vec![a, b],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + SimDuration::from_secs(10),
        );
        // Hop i fires at (i + 1) × 10 µs; the last at 101 × 10 µs.
        assert_eq!(out.converged_at, Some(SimTime::ZERO + HOP * 101));
        assert_eq!(out.clock, SimTime::ZERO + HOP * 101);
        let total: usize = out.shards.iter().map(|s| s.world.hops_seen.len()).sum();
        assert_eq!(total, 101);
        // Even hops land on shard 0, odd on shard 1, in descending order.
        assert!(out.shards[0].world.hops_seen.iter().all(|h| h % 2 == 0));
        assert!(out.shards[1].world.hops_seen.iter().all(|h| h % 2 == 1));
        for s in &out.shards {
            assert!(s.world.hops_seen.windows(2).all(|w| w[0] > w[1]));
            assert_eq!(s.world.causal_pending(), 0);
        }
        // Telemetry is populated and consistent.
        assert!(out.windows > 0);
        assert_eq!(out.window_hist.count, out.windows);
        assert_eq!(out.window_hist.sum, 101);
        assert_eq!(out.idle_ns.len(), 2);
    }

    #[test]
    fn deadline_overrun_reports_none() {
        let mut a = relay(0);
        let b = relay(1);
        a.world.causal += 1;
        a.schedule_event_at(
            SimTime::ZERO + HOP,
            Ping {
                key: 1,
                hops_left: 1_000,
            },
        );
        let out = run_shards_until_quiet(
            vec![a, b],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + HOP * 10,
        );
        assert_eq!(out.converged_at, None);
        // Like the serial loop, exactly one over-deadline event fired
        // (hops at 10..=100 µs within the deadline, plus the one at
        // 110 µs), and its follow-up envelope was requeued, not lost.
        let fired: usize = out.shards.iter().map(|s| s.world.hops_seen.len()).sum();
        assert_eq!(fired, 11);
        let queued: usize = out.shards.iter().map(Engine::events_pending).sum();
        assert_eq!(queued, 1);
    }

    #[test]
    fn far_future_causal_event_single_steps_exactly() {
        // A scripted event long past the quiet horizon: the coordinator
        // must drop to lock-step so the quiescence predicate is evaluated
        // between every two events, exactly like the serial loop.
        let mut a = relay(0);
        let b = relay(1);
        a.world.causal += 2;
        a.schedule_event_at(
            SimTime::ZERO + HOP,
            Ping {
                key: 1,
                hops_left: 2,
            },
        );
        let resume = SimTime::ZERO + SimDuration::from_secs(5);
        a.schedule_event_at(
            resume,
            Ping {
                key: 1000,
                hops_left: 2,
            },
        );
        let out = run_shards_until_quiet(
            vec![a, b],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + SimDuration::from_secs(10),
        );
        // First chain ends at 30 µs; the scripted ping resumes at 5 s and
        // its chain ends two hops later.
        assert_eq!(out.converged_at, Some(resume + HOP * 2));
        let total: usize = out.shards.iter().map(|s| s.world.hops_seen.len()).sum();
        assert_eq!(total, 6);
        assert!(out.lockstep_rounds > 0);
    }

    #[test]
    fn single_shard_runs_serially() {
        let mut a = relay(0);
        a.world.id = 1; // route "cross-shard" pings back to itself
        a.world.causal += 1;
        a.schedule_event_at(
            SimTime::ZERO + HOP,
            Ping {
                key: 1,
                hops_left: 5,
            },
        );
        let out = run_shards_until_quiet(
            vec![a],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + SimDuration::from_secs(1),
        );
        assert_eq!(out.converged_at, Some(SimTime::ZERO + HOP * 6));
        assert_eq!(out.shards[0].world.hops_seen, vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn empty_shards_quiesce_at_zero() {
        let out = run_shards_until_quiet::<Relay>(
            vec![relay(0), relay(1)],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + SimDuration::from_secs(1),
        );
        assert_eq!(out.converged_at, Some(SimTime::ZERO));
    }

    #[test]
    fn echo_bound_keeps_replies_exact() {
        // Shard 0 pings shard 1 (reply lands back at 30 µs) and also has
        // an unrelated local event at 35 µs. Without the echo term in the
        // horizon, shard 0 — facing an *empty* peer — would run to its
        // quiet clip, fire the 35 µs event, and receive its own reply
        // late (clamped to 35 µs). The echo bound must hold it back so
        // the reply fires at exactly 30 µs, before the 35 µs event.
        let mut a = relay(0);
        let b = relay(1);
        a.world.causal += 2;
        a.schedule_event_at(
            SimTime::ZERO + HOP,
            Ping {
                key: 1,
                hops_left: 2,
            },
        );
        a.schedule_event_at(
            SimTime::ZERO + HOP * 7 / 2, // 35 µs
            Ping {
                key: 900,
                hops_left: 0,
            },
        );
        let out = run_shards_until_quiet(
            vec![a, b],
            HOP,
            SimDuration::from_millis(1),
            SimTime::ZERO + SimDuration::from_secs(1),
        );
        assert_eq!(out.converged_at, Some(SimTime::ZERO + HOP * 7 / 2));
        assert_eq!(
            out.shards[0].world.fire_times,
            vec![
                SimTime::ZERO + HOP,
                SimTime::ZERO + HOP * 3,
                SimTime::ZERO + HOP * 7 / 2,
            ]
        );
        assert_eq!(
            out.shards[1].world.fire_times,
            vec![SimTime::ZERO + HOP * 2]
        );
    }

    #[test]
    fn matrix_closure_and_echo() {
        // Line of three shards: 0 —10ns— 1 —100ns— 2, no direct 0↔2 edge.
        let inf = NO_PATH;
        let m = LookaheadMatrix::from_nanos(3, vec![0, 10, inf, 10, 0, 100, inf, 100, 0]);
        assert_eq!(m.dist(0, 1), 10);
        assert_eq!(m.dist(1, 2), 100);
        // The closure honors the transitive influence path 0 → 1 → 2.
        assert_eq!(m.dist(0, 2), 110);
        assert_eq!(m.dist(2, 0), 110);
        assert_eq!(m.echo(0), 20);
        assert_eq!(m.echo(1), 20);
        assert_eq!(m.echo(2), 200);
    }

    #[test]
    fn matrix_isolated_shard_has_no_path() {
        // Shard 2 shares no edge with anyone.
        let inf = NO_PATH;
        let m = LookaheadMatrix::from_nanos(3, vec![0, 5, inf, 5, 0, inf, inf, inf, 0]);
        assert_eq!(m.dist(0, 2), NO_PATH);
        assert_eq!(m.dist(2, 1), NO_PATH);
        assert_eq!(m.echo(2), NO_PATH);
        assert_eq!(m.echo(0), 10);
    }

    #[test]
    fn uniform_matrix_matches_scalar_scheme() {
        let m = LookaheadMatrix::uniform(3, SimDuration::from_micros(10));
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert_eq!(m.dist(i, j), 10_000);
                }
            }
            assert_eq!(m.echo(i), 20_000);
        }
        // Zero lookahead clamps to the 1 ns degenerate-but-correct floor.
        let m = LookaheadMatrix::uniform(2, SimDuration::ZERO);
        assert_eq!(m.dist(0, 1), 1);
    }

    #[test]
    fn zero_length_inputs_rejected() {
        let m = LookaheadMatrix::uniform(1, SimDuration::from_micros(1));
        assert_eq!(m.shard_count(), 1);
        assert_eq!(m.echo(0), NO_PATH);
    }

    #[test]
    fn window_hist_empty() {
        let h = WindowHist::default();
        assert_eq!(h.count, 0);
        assert_eq!(h.sum, 0);
        assert_eq!(h.max, 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.buckets.iter().all(|&b| b == 0));
    }

    #[test]
    fn window_hist_single_bucket() {
        // Bucket b > 0 covers [2^(b-1), 2^b): 2 and 3 both land in
        // bucket 2, empty grants in bucket 0, single events in bucket 1.
        let mut h = WindowHist::default();
        h.record(2);
        h.record(3);
        assert_eq!(h.buckets[2], 2);
        assert_eq!((h.count, h.sum, h.max), (2, 5, 3));
        h.record(0);
        h.record(1);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.mean(), 6.0 / 4.0);
    }

    #[test]
    fn window_hist_overflow_bucket() {
        // Anything ≥ 2^15 collapses into the final absorbing bucket.
        let mut h = WindowHist::default();
        h.record(1 << 15);
        h.record(1 << 40);
        h.record(u64::MAX);
        assert_eq!(h.buckets[WINDOW_HIST_BUCKETS - 1], 3);
        assert_eq!(h.max, u64::MAX);
        // The last representable non-overflow value stays out of it.
        h.record((1 << 15) - 1);
        assert_eq!(h.buckets[WINDOW_HIST_BUCKETS - 1], 3);
        assert_eq!(h.buckets[WINDOW_HIST_BUCKETS - 2], 1);
    }

    #[test]
    fn window_hist_merge_associative() {
        let hist_of = |events: &[u64]| {
            let mut h = WindowHist::default();
            for &e in events {
                h.record(e);
            }
            h
        };
        let a = hist_of(&[0, 1, 7]);
        let b = hist_of(&[2, 1 << 20]);
        let c = hist_of(&[3, 3, u64::MAX]);

        let mut ab_c = a.clone();
        ab_c.absorb(&b);
        ab_c.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut a_bc = a.clone();
        a_bc.absorb(&bc);
        assert_eq!(ab_c, a_bc);
        // Merging shard-local histograms equals recording every grant
        // into one histogram.
        assert_eq!(ab_c, hist_of(&[0, 1, 7, 2, 1 << 20, 3, 3, u64::MAX]));
        // Identity element.
        let mut with_empty = ab_c.clone();
        with_empty.absorb(&WindowHist::default());
        assert_eq!(with_empty, ab_c);
    }

    #[test]
    fn profiled_run_captures_grant_timeline() {
        let mk = || {
            let mut a = relay(0);
            let b = relay(1);
            a.world.causal += 1;
            a.schedule_event_at(
                SimTime::ZERO + HOP,
                Ping {
                    key: 1,
                    hops_left: 100,
                },
            );
            vec![a, b]
        };
        let m = LookaheadMatrix::uniform(2, HOP);
        let quiet = SimDuration::from_millis(1);
        let deadline = SimTime::ZERO + SimDuration::from_secs(10);

        let off = run_shards_until_quiet_matrix_profiled(mk(), &m, quiet, deadline, false);
        assert!(off.profile.is_none());

        let out = run_shards_until_quiet_matrix_profiled(mk(), &m, quiet, deadline, true);
        // Profiling must not change virtual execution.
        assert_eq!(out.converged_at, off.converged_at);
        assert_eq!(out.clock, off.clock);
        let p = out.profile.expect("profiling on");
        assert!(!p.grants.is_empty());
        assert_eq!(p.busy_ns.len(), 2);
        for g in &p.grants {
            assert!(g.done_ns >= g.issue_ns, "grant closed before it opened");
            assert!(g.shard < 2);
        }
        // Every executed event is attributed to exactly one grant.
        let executed: u64 = p.grants.iter().map(|g| g.executed).sum();
        assert_eq!(executed, 101);
        assert!(p.run_wall_ns >= p.grants.iter().map(|g| g.done_ns).max().unwrap());
    }
}
