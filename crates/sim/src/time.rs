//! Virtual time for the discrete-event simulation.
//!
//! All of CrystalNet's latency results (Figure 8, Figure 9, §8.3) are
//! measured in *virtual* time: the simulation advances an explicit clock
//! instead of sleeping, so a single host reproduces the timing behaviour of
//! a 1000-VM deployment deterministically.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is a monotonically non-decreasing instant. Durations are
/// represented by [`SimDuration`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Whole nanoseconds since the epoch.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional minutes since the epoch (the unit of Figure 8).
    #[must_use]
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e9
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `n` nanoseconds.
    #[must_use]
    pub const fn from_nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }

    /// A duration of `n` microseconds.
    #[must_use]
    pub const fn from_micros(n: u64) -> SimDuration {
        SimDuration(n * 1_000)
    }

    /// A duration of `n` milliseconds.
    #[must_use]
    pub const fn from_millis(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000)
    }

    /// A duration of `n` seconds.
    #[must_use]
    pub const fn from_secs(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000_000)
    }

    /// A duration of `n` minutes.
    #[must_use]
    pub const fn from_mins(n: u64) -> SimDuration {
        SimDuration(n * 60_000_000_000)
    }

    /// A duration from fractional seconds, saturating at zero for negatives.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        if secs <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((secs * 1e9) as u64)
        }
    }

    /// Whole nanoseconds in this duration.
    #[must_use]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this duration.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds in this duration.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional minutes in this duration.
    #[must_use]
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e9
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative factor (used for jitter and work sizing).
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration((self.0 as f64 * factor) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 60_000_000_000 {
            write!(f, "{:.2}min", self.as_mins_f64())
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDuration::from_secs(3);
        assert_eq!(t.as_nanos(), 3_000_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_secs(3));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 2, SimDuration::from_secs(5));
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_mins(3).to_string(), "3.00min");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.00s");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.00ms");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.00us");
        assert_eq!(SimDuration::from_nanos(3).to_string(), "3ns");
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }
}
