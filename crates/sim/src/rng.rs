//! Seeded randomness for reproducible simulations.
//!
//! All stochastic behaviour (boot-time jitter, VM failure injection, ECMP
//! tie-breaking in vendor firmware, message timing noise) flows through
//! [`SimRng`] so that an entire emulation run is a pure function of its
//! seed. Figure 8's percentile bars come from 10 runs with seeds 0..10.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A deterministic RNG handle derived from a run seed and a component label.
///
/// Deriving per-component streams keeps one component's draw count from
/// perturbing another's, which keeps perturbation experiments comparable.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// An RNG for the run-global stream of `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// An RNG for a named component within the run of `seed`.
    #[must_use]
    pub fn for_component(seed: u64, component: &str) -> Self {
        // FNV-1a over the label, mixed with the run seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in component.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::from_seed(seed ^ h.rotate_left(17))
    }

    /// A uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        self.inner.random_range(0..bound)
    }

    /// A uniformly random `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A duration jittered uniformly in `[base*(1-spread), base*(1+spread)]`.
    ///
    /// Used for boot times and protocol timers, mirroring the jitter real
    /// firmware applies (e.g. BGP MRAI / connect-retry jitter).
    pub fn jitter(&mut self, base: SimDuration, spread: f64) -> SimDuration {
        let spread = spread.clamp(0.0, 1.0);
        let factor = 1.0 - spread + 2.0 * spread * self.unit();
        base.mul_f64(factor)
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.below(items.len() as u64) as usize;
            Some(&items[idx])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn component_streams_differ() {
        let mut a = SimRng::for_component(42, "vm-0");
        let mut b = SimRng::for_component(42, "vm-1");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_seed(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn jitter_stays_in_range() {
        let mut r = SimRng::from_seed(7);
        let base = SimDuration::from_secs(10);
        for _ in 0..1000 {
            let d = r.jitter(base, 0.2);
            assert!(d >= SimDuration::from_secs(8) && d <= SimDuration::from_secs(12));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(5.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::from_seed(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "seed 9 should permute");
    }

    #[test]
    fn pick_empty_is_none() {
        let mut r = SimRng::from_seed(1);
        assert_eq!(r.pick::<u32>(&[]), None);
        assert_eq!(r.pick(&[5]), Some(&5));
    }
}
