//! Seeded randomness for reproducible simulations.
//!
//! All stochastic behaviour (boot-time jitter, VM failure injection, ECMP
//! tie-breaking in vendor firmware, message timing noise) flows through
//! [`SimRng`] so that an entire emulation run is a pure function of its
//! seed. Figure 8's percentile bars come from 10 runs with seeds 0..10.
//!
//! The generator is a self-contained xoshiro256++ seeded through
//! SplitMix64, so streams are identical on every platform and toolchain —
//! a prerequisite for the parallel executor's bit-identical-replay
//! contract (no external RNG crate whose algorithm could shift under us).

use crate::time::SimDuration;

/// A deterministic RNG handle derived from a run seed and a component label.
///
/// Deriving per-component streams keeps one component's draw count from
/// perturbing another's, which keeps perturbation experiments comparable.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// An RNG for the run-global stream of `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// An RNG for a named component within the run of `seed`.
    #[must_use]
    pub fn for_component(seed: u64, component: &str) -> Self {
        // FNV-1a over the label, mixed with the run seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in component.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::from_seed(seed ^ h.rotate_left(17))
    }

    /// A uniformly random `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Rejection sampling to avoid modulo bias (Lemire-style threshold).
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// A uniformly random `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A duration jittered uniformly in `[base*(1-spread), base*(1+spread)]`.
    ///
    /// Used for boot times and protocol timers, mirroring the jitter real
    /// firmware applies (e.g. BGP MRAI / connect-retry jitter).
    pub fn jitter(&mut self, base: SimDuration, spread: f64) -> SimDuration {
        let spread = spread.clamp(0.0, 1.0);
        let factor = 1.0 - spread + 2.0 * spread * self.unit();
        base.mul_f64(factor)
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.below(items.len() as u64) as usize;
            Some(&items[idx])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn component_streams_differ() {
        let mut a = SimRng::for_component(42, "vm-0");
        let mut b = SimRng::for_component(42, "vm-1");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_seed(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn jitter_stays_in_range() {
        let mut r = SimRng::from_seed(7);
        let base = SimDuration::from_secs(10);
        for _ in 0..1000 {
            let d = r.jitter(base, 0.2);
            assert!(d >= SimDuration::from_secs(8) && d <= SimDuration::from_secs(12));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(5.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::from_seed(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "seed 9 should permute");
    }

    #[test]
    fn pick_empty_is_none() {
        let mut r = SimRng::from_seed(1);
        assert_eq!(r.pick::<u32>(&[]), None);
        assert_eq!(r.pick(&[5]), Some(&5));
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
