//! Deterministic heartbeat schedules and bounded exponential backoff.
//!
//! The orchestrator's health monitor (core's fault subsystem) watches VMs
//! by expecting a heartbeat every fixed interval and reacts to misses with
//! retries. Both primitives live here because they are pure virtual-time
//! arithmetic: given the same construction parameters they produce the
//! same tick instants and the same retry delays on every run, which is
//! what keeps fault injection and recovery bit-reproducible.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A fixed-interval heartbeat schedule anchored at a start instant.
///
/// Ticks are derived (`start + n·interval`), never accumulated, so a
/// schedule observed out of order or resumed mid-run cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatSchedule {
    start: SimTime,
    interval: SimDuration,
}

impl HeartbeatSchedule {
    /// A schedule ticking every `interval` starting at `start + interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero — a zero-period heartbeat would make
    /// the monitor spin forever at one instant.
    #[must_use]
    pub fn new(start: SimTime, interval: SimDuration) -> Self {
        assert!(
            interval > SimDuration::ZERO,
            "heartbeat interval must be positive"
        );
        HeartbeatSchedule { start, interval }
    }

    /// The heartbeat interval.
    #[must_use]
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The `n`-th tick (1-based; tick 0 is the anchor itself).
    #[must_use]
    pub fn tick(&self, n: u64) -> SimTime {
        self.start + self.interval * n
    }

    /// The first tick strictly after `t`.
    #[must_use]
    pub fn next_after(&self, t: SimTime) -> SimTime {
        if t < self.start {
            return self.tick(1);
        }
        let elapsed = t.since(self.start).as_nanos();
        let n = elapsed / self.interval.as_nanos() + 1;
        self.tick(n)
    }

    /// How many ticks land in the half-open window `(from, to]`.
    #[must_use]
    pub fn ticks_within(&self, from: SimTime, to: SimTime) -> u64 {
        if to <= from {
            return 0;
        }
        let upto = |t: SimTime| -> u64 {
            if t < self.start {
                0
            } else {
                t.since(self.start).as_nanos() / self.interval.as_nanos()
            }
        };
        upto(to) - upto(from)
    }
}

/// Bounded exponential backoff: `base · 2^attempt`, capped, for a fixed
/// number of attempts.
///
/// The sequence is a pure function of the policy — no RNG, no wall clock —
/// so retry timing under fault injection replays identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backoff {
    base: SimDuration,
    cap: SimDuration,
    max_attempts: u32,
    attempt: u32,
}

impl Backoff {
    /// A backoff starting at `base`, doubling per attempt, never exceeding
    /// `cap`, exhausted after `max_attempts` delays.
    #[must_use]
    pub fn new(base: SimDuration, cap: SimDuration, max_attempts: u32) -> Self {
        Backoff {
            base,
            cap,
            max_attempts,
            attempt: 0,
        }
    }

    /// Attempts handed out so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Whether every attempt has been consumed.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.attempt >= self.max_attempts
    }

    /// The delay for attempt `n` (0-based) under this policy, independent
    /// of iteration state.
    #[must_use]
    pub fn delay_for(&self, n: u32) -> SimDuration {
        let factor = 1u64 << n.min(62);
        (self.base * factor).min(self.cap)
    }

    /// The next delay, or `None` once the attempt budget is spent.
    pub fn next_delay(&mut self) -> Option<SimDuration> {
        if self.exhausted() {
            return None;
        }
        let d = self.delay_for(self.attempt);
        self.attempt += 1;
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_derived_not_accumulated() {
        let hb = HeartbeatSchedule::new(SimTime::ZERO, SimDuration::from_secs(10));
        assert_eq!(hb.tick(3), SimTime::ZERO + SimDuration::from_secs(30));
        assert_eq!(
            hb.next_after(SimTime::ZERO + SimDuration::from_secs(25)),
            hb.tick(3)
        );
        // Landing exactly on a tick yields the *next* one.
        assert_eq!(hb.next_after(hb.tick(3)), hb.tick(4));
        // Before the anchor: the first tick.
        let late = HeartbeatSchedule::new(
            SimTime::ZERO + SimDuration::from_secs(100),
            SimDuration::from_secs(10),
        );
        assert_eq!(late.next_after(SimTime::ZERO), late.tick(1));
    }

    #[test]
    fn ticks_within_counts_half_open_window() {
        let hb = HeartbeatSchedule::new(SimTime::ZERO, SimDuration::from_secs(10));
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        assert_eq!(hb.ticks_within(t(0), t(30)), 3);
        assert_eq!(hb.ticks_within(t(10), t(30)), 2);
        assert_eq!(hb.ticks_within(t(5), t(5)), 0);
        assert_eq!(hb.ticks_within(t(30), t(10)), 0);
    }

    #[test]
    fn backoff_doubles_caps_and_exhausts() {
        let mut b = Backoff::new(
            SimDuration::from_secs(2),
            SimDuration::from_secs(10),
            4, //
        );
        assert_eq!(b.next_delay(), Some(SimDuration::from_secs(2)));
        assert_eq!(b.next_delay(), Some(SimDuration::from_secs(4)));
        assert_eq!(b.next_delay(), Some(SimDuration::from_secs(8)));
        assert_eq!(b.next_delay(), Some(SimDuration::from_secs(10)), "capped");
        assert!(b.exhausted());
        assert_eq!(b.next_delay(), None);
        assert_eq!(b.attempts(), 4);
    }

    #[test]
    fn backoff_shift_saturates_on_huge_attempt_index() {
        let b = Backoff::new(SimDuration::from_nanos(1), SimDuration::from_secs(1), 100);
        assert_eq!(b.delay_for(90), SimDuration::from_secs(1));
    }
}
