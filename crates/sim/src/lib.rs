//! Deterministic discrete-event simulation engine for the CrystalNet
//! reproduction.
//!
//! CrystalNet (SOSP '17) measures the *orchestration machinery itself*:
//! how long Mockup takes, where CPU goes during bring-up, how fast reloads
//! and VM recovery are. This crate provides the substrate those
//! measurements run on:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time,
//! * [`Engine`] — the event loop over a user-defined world,
//! * [`CpuServer`] — per-VM multi-core CPU accounting (Figure 9),
//! * [`SimRng`] — seeded, per-component random streams,
//! * [`HeartbeatSchedule`] / [`Backoff`] — health-monitor timing
//!   primitives (fault detection and bounded retry),
//! * [`metrics`] — percentile and time-series aggregation (Figure 8/9).
//!
//! Everything is deterministic given a seed: the engine orders events by
//! `(time, sequence)`, and all randomness is derived from [`SimRng`].

pub mod cpu;
pub mod engine;
pub mod heartbeat;
pub mod metrics;
pub mod parallel;
pub mod rng;
pub mod time;

pub use cpu::{CpuServer, UtilizationTracker};
pub use engine::{ClosureEvent, Engine, EngineCheckpoint, Event, EventFire, EventId};
pub use heartbeat::{Backoff, HeartbeatSchedule};
pub use metrics::{LatencySummary, Series};
pub use parallel::{
    run_shards_until_quiet, run_shards_until_quiet_matrix, LookaheadMatrix, ParallelOutcome,
    ParallelWorld, WindowHist,
};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
