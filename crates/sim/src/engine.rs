//! The discrete-event engine.
//!
//! The engine owns a user-defined *world* (`W`) and a priority queue of
//! events. Each event is a one-shot closure receiving `&mut Engine<W>`, so
//! handlers can both mutate the world and schedule follow-up events.
//!
//! Determinism: events are ordered by `(time, sequence-number)`, where the
//! sequence number is assigned at scheduling time. Two runs that schedule
//! the same events in the same order observe identical executions — this is
//! load-bearing for CrystalNet's reproducible Figure 8/9 measurements and is
//! covered by the determinism tests below.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A one-shot event handler.
pub type Event<W> = Box<dyn FnOnce(&mut Engine<W>)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    event: Event<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event simulation engine over a world `W`.
///
/// # Examples
///
/// ```
/// use crystalnet_sim::{Engine, SimDuration};
///
/// let mut engine = Engine::new(0u32);
/// engine.schedule_after(SimDuration::from_secs(1), |e| e.world += 1);
/// engine.schedule_after(SimDuration::from_secs(2), |e| e.world += 10);
/// engine.run();
/// assert_eq!(engine.world, 11);
/// assert_eq!(engine.now().as_secs_f64(), 2.0);
/// ```
pub struct Engine<W> {
    clock: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Reverse<Scheduled<W>>>,
    /// The simulated world mutated by events.
    pub world: W,
}

impl<W> Engine<W> {
    /// Creates an engine at `t = 0` owning `world`.
    pub fn new(world: W) -> Self {
        Engine {
            clock: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::new(),
            world,
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Events scheduled in the past run at the current time (the clock never
    /// moves backwards); ties run in scheduling order.
    pub fn schedule_at(&mut self, at: SimTime, event: impl FnOnce(&mut Engine<W>) + 'static) {
        let time = at.max(self.clock);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            time,
            seq,
            event: Box::new(event),
        }));
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut Engine<W>) + 'static,
    ) {
        self.schedule_at(self.clock + delay, event);
    }

    /// Runs a single event if one is pending. Returns whether an event ran.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(s)) => {
                debug_assert!(s.time >= self.clock, "event queue went backwards");
                self.clock = s.time;
                self.executed += 1;
                (s.event)(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with `time <= deadline`; then advances the clock to
    /// `deadline` (even if idle earlier), leaving later events queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time > deadline {
                break;
            }
            self.step();
        }
        self.clock = self.clock.max(deadline);
    }

    /// Runs until `predicate` returns true (checked after every event) or
    /// the queue drains. Returns whether the predicate was satisfied.
    pub fn run_while(&mut self, mut predicate: impl FnMut(&Engine<W>) -> bool) -> bool {
        loop {
            if predicate(self) {
                return true;
            }
            if !self.step() {
                return false;
            }
        }
    }

    /// Time of the next pending event, if any.
    #[must_use]
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(s)| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut e = Engine::new(Vec::new());
        e.schedule_after(SimDuration::from_secs(3), |e| e.world.push(3));
        e.schedule_after(SimDuration::from_secs(1), |e| e.world.push(1));
        e.schedule_after(SimDuration::from_secs(2), |e| e.world.push(2));
        e.run();
        assert_eq!(e.world, vec![1, 2, 3]);
        assert_eq!(e.events_executed(), 3);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut e = Engine::new(Vec::new());
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        for i in 0..10 {
            e.schedule_at(t, move |e| e.world.push(i));
        }
        e.run();
        assert_eq!(e.world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut e = Engine::new(0u64);
        fn tick(e: &mut Engine<u64>) {
            e.world += 1;
            if e.world < 5 {
                e.schedule_after(SimDuration::from_secs(1), tick);
            }
        }
        e.schedule_after(SimDuration::from_secs(1), tick);
        e.run();
        assert_eq!(e.world, 5);
        assert_eq!(e.now(), SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn past_events_run_now_not_backwards() {
        let mut e = Engine::new(Vec::new());
        e.schedule_after(SimDuration::from_secs(5), |e| {
            let now = e.now();
            e.schedule_at(SimTime::ZERO, move |e| {
                let t = e.now();
                e.world.push(t >= now);
            });
        });
        e.run();
        assert_eq!(e.world, vec![true]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new(0u32);
        e.schedule_after(SimDuration::from_secs(1), |e| e.world += 1);
        e.schedule_after(SimDuration::from_secs(10), |e| e.world += 100);
        e.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(e.world, 1);
        assert_eq!(e.now(), SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(e.events_pending(), 1);
        e.run();
        assert_eq!(e.world, 101);
    }

    #[test]
    fn run_while_reports_predicate_outcome() {
        let mut e = Engine::new(0u32);
        for _ in 0..10 {
            e.schedule_after(SimDuration::from_secs(1), |e| e.world += 1);
        }
        assert!(e.run_while(|e| e.world >= 4));
        assert_eq!(e.world, 4);
        assert!(!e.run_while(|e| e.world >= 100));
        assert_eq!(e.world, 10);
    }

    #[test]
    fn empty_engine_is_idle() {
        let mut e = Engine::new(());
        assert!(!e.step());
        assert_eq!(e.next_event_time(), None);
        assert_eq!(e.events_executed(), 0);
    }
}
