//! The discrete-event engine.
//!
//! The engine owns a user-defined *world* (`W`) and a pending-event queue.
//! Events are values implementing [`EventFire`]; firing an event hands it
//! `&mut Engine` so handlers can both mutate the world and schedule
//! follow-up events. The default event type, [`ClosureEvent`], wraps a
//! one-shot boxed closure, so `Engine<W>` keeps the original
//! closure-scheduling API. Performance-critical simulations (the routing
//! harness) instead use a typed event enum, avoiding the per-event heap
//! allocation and dynamic dispatch.
//!
//! # Queue
//!
//! The queue is a bucketed *calendar queue*: near-future events land in a
//! ring of fixed-width time buckets (unsorted `Vec`s, heapified only when
//! their bucket becomes current), far-future events overflow into a binary
//! heap. Scheduling into the ring is an O(1) `Vec::push` instead of an
//! O(log n) heap sift, which matters because the control-plane harness
//! schedules one delivery per BGP frame.
//!
//! # Determinism
//!
//! Events fire ordered by `(time, key, seq)`: virtual time first, then the
//! event's own [`EventFire::key`], then scheduling order. `ClosureEvent`
//! returns a constant key, so closure engines order ties purely by
//! scheduling sequence — the original engine contract. Typed events can
//! supply a *content-derived* key (e.g. source device and per-source
//! counter), making tie order independent of scheduling interleave; this is
//! what lets the parallel executor replay the serial order bit-for-bit.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A one-shot boxed event handler (the default engine event payload).
pub type Event<W> = Box<dyn FnOnce(&mut Engine<W>)>;

/// A stable, content-derived identity for one fired event.
///
/// `(time, key)` uniquely names an event as long as keys are globally
/// unique among events due at the same instant — which the routing
/// harness guarantees by deriving keys from the scheduling device and a
/// per-device counter. Crucially the id does *not* involve the engine's
/// scheduling sequence number, which differs between serial and sharded
/// execution; the same run therefore produces the same ids whatever
/// `workers` drove it, and a trace record can point at its causal parent
/// across shard boundaries.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EventId {
    /// Virtual time the event fired, in nanoseconds.
    pub time_ns: u64,
    /// The event's deterministic tie-break key ([`EventFire::key`]).
    pub key: u64,
}

impl EventId {
    /// The null id: time 0, key 0. The harness never schedules a real
    /// event with key 0, so this is safe as an "outside any event"
    /// sentinel (management sync, orchestrator actions).
    pub const ZERO: EventId = EventId { time_ns: 0, key: 0 };
}

/// A warm-start position snapshot: where the engine was when an
/// incremental step began ([`Engine::checkpoint`] /
/// [`Engine::cost_since`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// Virtual time at the checkpoint.
    pub at: SimTime,
    /// Events executed before the checkpoint.
    pub events_executed: u64,
}

/// A schedulable event: fired once at its due time.
pub trait EventFire<W>: Sized {
    /// Consumes the event, mutating the engine/world.
    fn fire(self, engine: &mut Engine<W, Self>);

    /// Deterministic tie-break key among events due at the same time.
    ///
    /// Lower keys fire first; equal keys fall back to scheduling order.
    /// Return a content-derived key to make tie order independent of the
    /// order in which events were scheduled.
    fn key(&self) -> u64 {
        0
    }

    /// The id of the event that scheduled this one, if known.
    ///
    /// Causal links must travel *inside* the event (not in engine
    /// bookkeeping): the parallel executor drains queues, ships events
    /// across shards in envelopes, and re-schedules survivors, losing any
    /// engine-side metadata along the way. Events that carry their cause
    /// as a field survive all of that unchanged.
    fn cause(&self) -> Option<EventId> {
        None
    }
}

/// The default event type: a boxed `FnOnce` closure.
pub struct ClosureEvent<W>(Event<W>);

impl<W> ClosureEvent<W> {
    /// Wraps a closure as an event.
    pub fn new(f: impl FnOnce(&mut Engine<W>) + 'static) -> Self {
        ClosureEvent(Box::new(f))
    }
}

impl<W> EventFire<W> for ClosureEvent<W> {
    fn fire(self, engine: &mut Engine<W, Self>) {
        (self.0)(engine)
    }
}

#[derive(Clone)]
struct Scheduled<E> {
    time: SimTime,
    key: u64,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    fn rank(&self) -> (SimTime, u64, u64) {
        (self.time, self.key, self.seq)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

/// Width of one calendar bucket. 64 µs spans a handful of link latencies,
/// so the bulk of in-flight control-plane frames land in the ring.
const BUCKET_WIDTH_NANOS: u64 = 64_000;
/// Ring length (buckets). Horizon = width × len ≈ 65 ms; protocol timers
/// (boot, MRAI, hold) overflow to the heap, which is fine — they are rare
/// relative to frame deliveries.
const RING_LEN: usize = 1024;

/// Calendar queue: current-bucket heap + future ring + far-future heap.
#[derive(Clone)]
struct CalendarQueue<E> {
    /// Events in buckets `<= cur_bucket`, fully ordered.
    current: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Unsorted buckets for `(cur_bucket, cur_bucket + RING_LEN]`, indexed
    /// by absolute bucket number mod `RING_LEN`.
    ring: Vec<Vec<Scheduled<E>>>,
    /// Number of events stored in the ring.
    ring_count: usize,
    /// Events in buckets beyond the ring horizon.
    overflow: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Absolute index of the bucket currently feeding `current`.
    cur_bucket: u64,
}

#[inline]
fn bucket_of(time: SimTime) -> u64 {
    time.as_nanos() / BUCKET_WIDTH_NANOS
}

impl<E> CalendarQueue<E> {
    fn new() -> Self {
        CalendarQueue {
            current: BinaryHeap::new(),
            ring: (0..RING_LEN).map(|_| Vec::new()).collect(),
            ring_count: 0,
            overflow: BinaryHeap::new(),
            cur_bucket: 0,
        }
    }

    fn len(&self) -> usize {
        self.current.len() + self.ring_count + self.overflow.len()
    }

    fn push(&mut self, s: Scheduled<E>) {
        let b = bucket_of(s.time);
        if b <= self.cur_bucket {
            self.current.push(Reverse(s));
        } else if b <= self.cur_bucket + RING_LEN as u64 {
            self.ring[(b % RING_LEN as u64) as usize].push(s);
            self.ring_count += 1;
        } else {
            self.overflow.push(Reverse(s));
        }
    }

    /// Moves the contents of bucket `b` (ring slot and due overflow
    /// entries) into `current` and makes it the current bucket.
    fn advance_to(&mut self, b: u64) {
        debug_assert!(b > self.cur_bucket);
        self.cur_bucket = b;
        let slot = &mut self.ring[(b % RING_LEN as u64) as usize];
        self.ring_count -= slot.len();
        for s in slot.drain(..) {
            debug_assert_eq!(bucket_of(s.time), b);
            self.current.push(Reverse(s));
        }
        while let Some(Reverse(head)) = self.overflow.peek() {
            if bucket_of(head.time) > b {
                break;
            }
            let Reverse(s) = self.overflow.pop().expect("peeked entry exists");
            self.current.push(Reverse(s));
        }
    }

    /// Absolute bucket of the earliest pending event outside `current`.
    fn next_bucket(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        if self.ring_count > 0 {
            for delta in 1..=RING_LEN as u64 {
                let b = self.cur_bucket + delta;
                if !self.ring[(b % RING_LEN as u64) as usize].is_empty() {
                    best = Some(b);
                    break;
                }
            }
        }
        if let Some(Reverse(head)) = self.overflow.peek() {
            let ob = bucket_of(head.time);
            best = Some(best.map_or(ob, |rb| rb.min(ob)));
        }
        best
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.current.is_empty() {
            let b = self.next_bucket()?;
            self.advance_to(b);
        }
        self.current.pop().map(|Reverse(s)| s)
    }

    /// Time of the earliest pending event without popping it.
    fn peek_time(&self) -> Option<SimTime> {
        self.peek_rank().map(|(t, _)| t)
    }

    /// `(time, key)` of the earliest pending event (lexicographic min)
    /// without popping it.
    fn peek_rank(&self) -> Option<(SimTime, u64)> {
        if let Some(Reverse(head)) = self.current.peek() {
            // Ring/overflow events live in later buckets, hence later
            // times; the heap head minimizes (time, key, seq).
            return Some((head.time, head.key));
        }
        let b = self.next_bucket()?;
        let slot = &self.ring[(b % RING_LEN as u64) as usize];
        let mut best: Option<(SimTime, u64)> = slot
            .iter()
            .filter(|s| bucket_of(s.time) == b)
            .map(|s| (s.time, s.key))
            .min();
        if let Some(Reverse(head)) = self.overflow.peek() {
            if bucket_of(head.time) <= b {
                let rank = (head.time, head.key);
                best = Some(best.map_or(rank, |r| r.min(rank)));
            }
        }
        best
    }
}

/// A deterministic discrete-event simulation engine over a world `W`.
///
/// # Examples
///
/// ```
/// use crystalnet_sim::{Engine, SimDuration};
///
/// let mut engine = Engine::new(0u32);
/// engine.schedule_after(SimDuration::from_secs(1), |e| e.world += 1);
/// engine.schedule_after(SimDuration::from_secs(2), |e| e.world += 10);
/// engine.run();
/// assert_eq!(engine.world, 11);
/// assert_eq!(engine.now().as_secs_f64(), 2.0);
/// ```
pub struct Engine<W, E = ClosureEvent<W>> {
    clock: SimTime,
    seq: u64,
    executed: u64,
    high_water: usize,
    /// `(id, cause)` of the event currently firing, if any. Set by
    /// [`Engine::step`] for the duration of the fire so handlers can stamp
    /// follow-up events with a causal parent.
    firing: Option<(EventId, Option<EventId>)>,
    queue: CalendarQueue<E>,
    /// The simulated world mutated by events.
    pub world: W,
}

impl<W, E: EventFire<W>> Engine<W, E> {
    /// Creates an engine at `t = 0` owning `world`.
    pub fn new(world: W) -> Self {
        Engine {
            clock: SimTime::ZERO,
            seq: 0,
            executed: 0,
            high_water: 0,
            firing: None,
            queue: CalendarQueue::new(),
            world,
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed so far.
    #[must_use]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the pending-event queue depth. Execution-shape
    /// diagnostic: differs between serial and sharded runs.
    #[must_use]
    pub fn queue_high_water(&self) -> usize {
        self.high_water
    }

    /// Snapshots the engine's position for warm-start accounting: an
    /// incremental step resumes the *same* engine from its converged
    /// state (clock, queue, world untouched) and later subtracts the
    /// checkpoint to report only the step's own cost.
    #[must_use]
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            at: self.clock,
            events_executed: self.executed,
        }
    }

    /// The virtual time elapsed and events executed since `mark` was
    /// taken with [`Engine::checkpoint`].
    #[must_use]
    pub fn cost_since(&self, mark: &EngineCheckpoint) -> (SimDuration, u64) {
        (
            self.clock.since(mark.at),
            self.executed - mark.events_executed,
        )
    }

    /// Schedules a typed event at absolute time `at`.
    ///
    /// Events scheduled in the past run at the current time (the clock
    /// never moves backwards); ties order by `(key, scheduling order)`.
    pub fn schedule_event_at(&mut self, at: SimTime, event: E) {
        let time = at.max(self.clock);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            time,
            key: event.key(),
            seq,
            event,
        });
        // CalendarQueue::len is O(1), so high-water tracking is free.
        self.high_water = self.high_water.max(self.queue.len());
    }

    /// Schedules a typed event after `delay` from the current time.
    pub fn schedule_event_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_event_at(self.clock + delay, event);
    }

    /// Runs a single event if one is pending. Returns whether an event ran.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(s) => {
                debug_assert!(s.time >= self.clock, "event queue went backwards");
                self.clock = s.time;
                self.executed += 1;
                let id = EventId {
                    time_ns: s.time.as_nanos(),
                    key: s.key,
                };
                self.firing = Some((id, s.event.cause()));
                s.event.fire(self);
                self.firing = None;
                true
            }
            None => false,
        }
    }

    /// The stable id of the event currently firing, if `step` is on the
    /// call stack.
    #[must_use]
    pub fn current_event(&self) -> Option<EventId> {
        self.firing.map(|(id, _)| id)
    }

    /// The causal parent of the event currently firing, if any.
    #[must_use]
    pub fn current_cause(&self) -> Option<EventId> {
        self.firing.and_then(|(_, cause)| cause)
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with `time <= deadline`; then advances the clock to
    /// `deadline` (even if idle earlier), leaving later events queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.clock = self.clock.max(deadline);
    }

    /// Runs until `predicate` returns true (checked after every event) or
    /// the queue drains. Returns whether the predicate was satisfied.
    pub fn run_while(&mut self, mut predicate: impl FnMut(&Engine<W, E>) -> bool) -> bool {
        loop {
            if predicate(self) {
                return true;
            }
            if !self.step() {
                return false;
            }
        }
    }

    /// Time of the next pending event, if any.
    #[must_use]
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// `(time, key)` of the next pending event, if any. The parallel
    /// coordinator uses the key to locate the globally minimal event when
    /// it has to single-step across shards.
    #[must_use]
    pub fn next_event_rank(&self) -> Option<(SimTime, u64)> {
        self.queue.peek_rank()
    }

    /// Removes and returns every pending event in `(time, key, seq)`
    /// order, without firing them. The clock is unchanged.
    ///
    /// The parallel executor uses this to fork a serial engine's queue
    /// across shards and to collect survivors when joining back.
    pub fn drain_pending(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(s) = self.queue.pop() {
            out.push((s.time, s.event));
        }
        out
    }

    /// Advances the clock to `t` (no-op if already later) without running
    /// anything. Callers must not skip past pending events; debug builds
    /// assert this.
    pub fn advance_clock_to(&mut self, t: SimTime) {
        debug_assert!(
            self.queue.peek_time().is_none_or(|n| n >= t),
            "advance_clock_to would skip pending events"
        );
        self.clock = self.clock.max(t);
    }
}

impl<W, E> Engine<W, E> {
    /// Replicates this engine's *position* — clock, scheduling sequence,
    /// executed count, queue high-water mark, and a deep copy of every
    /// pending event — over a freshly supplied world.
    ///
    /// This is the queue-snapshot half of an emulation fork: because the
    /// sequence counter and every queued event's `(time, key, seq)` rank
    /// are preserved exactly, the replica fires the identical event order
    /// the original would, so a fork that replays the same inputs stays
    /// bit-identical to its parent. The replica is not mid-fire
    /// (`firing` is cleared); forking from inside an event handler is not
    /// supported.
    #[must_use]
    pub fn replicate_with<W2>(&self, world: W2) -> Engine<W2, E>
    where
        E: Clone,
    {
        Engine {
            clock: self.clock,
            seq: self.seq,
            executed: self.executed,
            high_water: self.high_water,
            firing: None,
            queue: self.queue.clone(),
            world,
        }
    }
}

impl<W> Engine<W, ClosureEvent<W>> {
    /// Schedules a closure at absolute time `at`.
    ///
    /// Events scheduled in the past run at the current time (the clock never
    /// moves backwards); ties run in scheduling order.
    pub fn schedule_at(&mut self, at: SimTime, event: impl FnOnce(&mut Engine<W>) + 'static) {
        self.schedule_event_at(at, ClosureEvent::new(event));
    }

    /// Schedules a closure after `delay` from the current time.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut Engine<W>) + 'static,
    ) {
        self.schedule_event_after(delay, ClosureEvent::new(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut e = Engine::new(Vec::new());
        e.schedule_after(SimDuration::from_secs(3), |e| e.world.push(3));
        e.schedule_after(SimDuration::from_secs(1), |e| e.world.push(1));
        e.schedule_after(SimDuration::from_secs(2), |e| e.world.push(2));
        e.run();
        assert_eq!(e.world, vec![1, 2, 3]);
        assert_eq!(e.events_executed(), 3);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut e = Engine::new(Vec::new());
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        for i in 0..10 {
            e.schedule_at(t, move |e| e.world.push(i));
        }
        e.run();
        assert_eq!(e.world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut e = Engine::new(0u64);
        fn tick(e: &mut Engine<u64>) {
            e.world += 1;
            if e.world < 5 {
                e.schedule_after(SimDuration::from_secs(1), tick);
            }
        }
        e.schedule_after(SimDuration::from_secs(1), tick);
        e.run();
        assert_eq!(e.world, 5);
        assert_eq!(e.now(), SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn past_events_run_now_not_backwards() {
        let mut e = Engine::new(Vec::new());
        e.schedule_after(SimDuration::from_secs(5), |e| {
            let now = e.now();
            e.schedule_at(SimTime::ZERO, move |e| {
                let t = e.now();
                e.world.push(t >= now);
            });
        });
        e.run();
        assert_eq!(e.world, vec![true]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new(0u32);
        e.schedule_after(SimDuration::from_secs(1), |e| e.world += 1);
        e.schedule_after(SimDuration::from_secs(10), |e| e.world += 100);
        e.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(e.world, 1);
        assert_eq!(e.now(), SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(e.events_pending(), 1);
        e.run();
        assert_eq!(e.world, 101);
    }

    #[test]
    fn run_while_reports_predicate_outcome() {
        let mut e = Engine::new(0u32);
        for _ in 0..10 {
            e.schedule_after(SimDuration::from_secs(1), |e| e.world += 1);
        }
        assert!(e.run_while(|e| e.world >= 4));
        assert_eq!(e.world, 4);
        assert!(!e.run_while(|e| e.world >= 100));
        assert_eq!(e.world, 10);
    }

    #[test]
    fn empty_engine_is_idle() {
        let mut e: Engine<()> = Engine::new(());
        assert!(!e.step());
        assert_eq!(e.next_event_time(), None);
        assert_eq!(e.events_executed(), 0);
    }

    /// A typed event whose key reverses fire order relative to scheduling.
    struct Keyed(u64);
    impl EventFire<Vec<u64>> for Keyed {
        fn fire(self, e: &mut Engine<Vec<u64>, Keyed>) {
            e.world.push(self.0);
        }
        fn key(&self) -> u64 {
            self.0
        }
    }

    /// A typed event carrying an explicit cause link.
    struct Caused {
        key: u64,
        cause: Option<EventId>,
    }
    impl EventFire<Vec<(EventId, Option<EventId>)>> for Caused {
        fn fire(self, e: &mut Engine<Vec<(EventId, Option<EventId>)>, Caused>) {
            let id = e.current_event().expect("firing");
            assert_eq!(e.current_cause(), self.cause);
            e.world.push((id, e.current_cause()));
            if self.cause.is_none() {
                // Schedule a child stamped with this event's id.
                e.schedule_event_after(
                    SimDuration::from_secs(1),
                    Caused {
                        key: self.key + 100,
                        cause: Some(id),
                    },
                );
            }
        }
        fn key(&self) -> u64 {
            self.key
        }
        fn cause(&self) -> Option<EventId> {
            self.cause
        }
    }

    #[test]
    fn event_ids_are_stable_and_causes_thread_through() {
        let mut e: Engine<Vec<(EventId, Option<EventId>)>, Caused> = Engine::new(Vec::new());
        e.schedule_event_at(
            SimTime::ZERO + SimDuration::from_secs(1),
            Caused {
                key: 7,
                cause: None,
            },
        );
        e.run();
        assert_eq!(e.world.len(), 2);
        let root = EventId {
            time_ns: SimDuration::from_secs(1).as_nanos(),
            key: 7,
        };
        let child = EventId {
            time_ns: SimDuration::from_secs(2).as_nanos(),
            key: 107,
        };
        assert_eq!(e.world[0], (root, None));
        assert_eq!(e.world[1], (child, Some(root)));
        // Outside step() there is no current event.
        assert_eq!(e.current_event(), None);
        assert_eq!(e.current_cause(), None);
    }

    #[test]
    fn typed_events_tie_break_by_key_not_schedule_order() {
        let mut e: Engine<Vec<u64>, Keyed> = Engine::new(Vec::new());
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        for k in [5u64, 1, 9, 3, 7] {
            e.schedule_event_at(t, Keyed(k));
        }
        e.run();
        assert_eq!(e.world, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn calendar_queue_handles_ring_wrap_and_overflow() {
        // Spread events far past the ring horizon (64 µs × 1024 ≈ 65 ms)
        // and interleave near/far scheduling from inside handlers.
        let mut e = Engine::new(Vec::new());
        for i in (0..200u64).rev() {
            let t = SimTime::ZERO + SimDuration::from_micros(i * 997);
            e.schedule_at(t, move |e| e.world.push(t));
        }
        // Far-future overflow events (seconds out).
        for i in 0..20u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(i + 1);
            e.schedule_at(t, move |e| e.world.push(t));
        }
        e.run();
        assert_eq!(e.world.len(), 220);
        assert!(e.world.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(e.events_pending(), 0);
    }

    #[test]
    fn next_event_time_sees_ring_and_overflow() {
        let mut e: Engine<()> = Engine::new(());
        e.schedule_at(SimTime::ZERO + SimDuration::from_secs(30), |_| {});
        assert_eq!(
            e.next_event_time(),
            Some(SimTime::ZERO + SimDuration::from_secs(30))
        );
        e.schedule_at(SimTime::ZERO + SimDuration::from_micros(100), |_| {});
        assert_eq!(
            e.next_event_time(),
            Some(SimTime::ZERO + SimDuration::from_micros(100))
        );
        e.run();
        assert_eq!(e.next_event_time(), None);
    }
}
