//! Measurement helpers: percentiles, time series, and latency summaries.
//!
//! The paper reports 10th/50th/90th-percentile latencies across ten runs
//! (Figure 8) and 95th-percentile CPU curves across VMs (Figure 9); this
//! module implements those aggregations.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Returns the `p`-th percentile (0..=100) of `samples` by linear
/// interpolation between the two nearest ranks of a sorted copy (the
/// "exclusive" definition spreadsheets call `PERCENTILE.INC`): the rank is
/// `p/100 · (n−1)` and fractional ranks blend the two bracketing samples.
/// `p` outside 0..=100 is clamped.
///
/// Returns `None` for an empty slice.
#[must_use]
pub fn percentile_f64(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Percentile over durations; see [`percentile_f64`].
#[must_use]
pub fn percentile_duration(samples: &[SimDuration], p: f64) -> Option<SimDuration> {
    let vals: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
    percentile_f64(&vals, p).map(|v| SimDuration::from_nanos(v as u64))
}

/// p10/p50/p90 summary of a set of duration samples (a Figure 8 bar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// 10th percentile.
    pub p10: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 90th percentile.
    pub p90: SimDuration,
}

impl LatencySummary {
    /// Summarizes `samples`; returns `None` if empty.
    #[must_use]
    pub fn from_samples(samples: &[SimDuration]) -> Option<Self> {
        Some(LatencySummary {
            p10: percentile_duration(samples, 10.0)?,
            p50: percentile_duration(samples, 50.0)?,
            p90: percentile_duration(samples, 90.0)?,
        })
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p10={} p50={} p90={}", self.p10, self.p50, self.p90)
    }
}

/// An append-only time series of `(time, value)` points.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// An empty series.
    #[must_use]
    pub fn new() -> Self {
        Series::default()
    }

    /// Appends a point; time must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded point.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some((last, _)) = self.points.last() {
            assert!(t >= *last, "series time must be non-decreasing");
        }
        self.points.push((t, value));
    }

    /// All points in order.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The latest value, if any.
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Point-wise percentile across many equally-bucketed series
/// (Figure 9's "95th percentile among all VMs").
///
/// Series shorter than the longest are treated as zero-padded, matching a VM
/// that has gone idle.
#[must_use]
pub fn pointwise_percentile(series: &[Vec<f64>], p: f64) -> Vec<f64> {
    let len = series.iter().map(Vec::len).max().unwrap_or(0);
    (0..len)
        .map(|i| {
            let column: Vec<f64> = series
                .iter()
                .map(|s| s.get(i).copied().unwrap_or(0.0))
                .collect();
            percentile_f64(&column, p).unwrap_or(0.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_f64(&v, 0.0), Some(1.0));
        assert_eq!(percentile_f64(&v, 50.0), Some(3.0));
        assert_eq!(percentile_f64(&v, 100.0), Some(5.0));
        assert_eq!(percentile_f64(&v, 25.0), Some(2.0));
        assert_eq!(percentile_f64(&[], 50.0), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![0.0, 10.0];
        assert_eq!(percentile_f64(&v, 50.0), Some(5.0));
        assert_eq!(percentile_f64(&v, 90.0), Some(9.0));
    }

    #[test]
    fn percentile_single_sample_is_constant() {
        // With one sample the rank is always 0 regardless of p.
        let v = vec![42.0];
        assert_eq!(percentile_f64(&v, 0.0), Some(42.0));
        assert_eq!(percentile_f64(&v, 50.0), Some(42.0));
        assert_eq!(percentile_f64(&v, 100.0), Some(42.0));
    }

    #[test]
    fn percentile_extremes_hit_min_and_max() {
        let v = vec![7.0, -3.0, 12.5, 0.0];
        assert_eq!(percentile_f64(&v, 0.0), Some(-3.0));
        assert_eq!(percentile_f64(&v, 100.0), Some(12.5));
        // Out-of-range p clamps rather than panicking or extrapolating.
        assert_eq!(percentile_f64(&v, -10.0), Some(-3.0));
        assert_eq!(percentile_f64(&v, 250.0), Some(12.5));
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_f64(&v, 50.0), Some(3.0));
    }

    #[test]
    fn latency_summary() {
        let samples: Vec<SimDuration> = (1..=10).map(SimDuration::from_secs).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert!(s.p10 <= s.p50 && s.p50 <= s.p90);
        assert_eq!(s.p50, SimDuration::from_millis(5500));
        assert!(LatencySummary::from_samples(&[]).is_none());
    }

    #[test]
    fn series_enforces_order() {
        let mut s = Series::new();
        s.push(SimTime(1), 1.0);
        s.push(SimTime(1), 2.0);
        s.push(SimTime(5), 3.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn series_rejects_backwards_time() {
        let mut s = Series::new();
        s.push(SimTime(5), 1.0);
        s.push(SimTime(1), 2.0);
    }

    #[test]
    fn pointwise_percentile_pads_short_series() {
        let series = vec![vec![1.0, 1.0, 1.0], vec![0.0]];
        let p50 = pointwise_percentile(&series, 50.0);
        assert_eq!(p50, vec![0.5, 0.5, 0.5]);
        let p100 = pointwise_percentile(&series, 100.0);
        assert_eq!(p100, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn pointwise_percentile_empty() {
        assert!(pointwise_percentile(&[], 95.0).is_empty());
    }
}
