//! Multi-core CPU service model for simulated VMs.
//!
//! Each emulation VM in CrystalNet has a small number of cores (the paper
//! uses 4-core/8GB SKUs) shared by everything running on it: PhyNet
//! container setup, virtual-interface creation, device-firmware boot, BGP
//! update processing, and VXLAN encap/decap. Figure 9 plots the 95th
//! percentile of per-VM CPU utilization during Mockup; this module is the
//! source of those numbers.
//!
//! The model is an analytic M-server FIFO queue in virtual time: submitting
//! a work item picks the earliest-free core, runs the item to completion
//! there, and records the busy interval into a utilization histogram. The
//! caller schedules the completion event at the returned finish time, so no
//! extra simulation events are needed per work item.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Histogram of CPU busy-time per fixed-width time bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationTracker {
    bucket: SimDuration,
    cores: u32,
    /// Busy nanoseconds accumulated per bucket (core-ns).
    busy_ns: Vec<u64>,
}

impl UtilizationTracker {
    /// Creates a tracker with the given bucket width for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero or `cores` is zero.
    #[must_use]
    pub fn new(bucket: SimDuration, cores: u32) -> Self {
        assert!(bucket > SimDuration::ZERO, "bucket width must be non-zero");
        assert!(cores > 0, "core count must be non-zero");
        UtilizationTracker {
            bucket,
            cores,
            busy_ns: Vec::new(),
        }
    }

    /// Records one core being busy over `[start, end)`.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        let (mut t, end) = (start.as_nanos(), end.as_nanos());
        let width = self.bucket.as_nanos();
        while t < end {
            let idx = (t / width) as usize;
            if self.busy_ns.len() <= idx {
                self.busy_ns.resize(idx + 1, 0);
            }
            let bucket_end = (idx as u64 + 1) * width;
            let span = end.min(bucket_end) - t;
            self.busy_ns[idx] += span;
            t += span;
        }
    }

    /// Utilization (0.0..=1.0) of each bucket, up to `until`.
    #[must_use]
    pub fn utilization_series(&self, until: SimTime) -> Vec<f64> {
        let width = self.bucket.as_nanos();
        let n = (until.as_nanos() / width) as usize + 1;
        let capacity = (width * u64::from(self.cores)) as f64;
        (0..n)
            .map(|i| {
                let busy = self.busy_ns.get(i).copied().unwrap_or(0) as f64;
                (busy / capacity).min(1.0)
            })
            .collect()
    }

    /// The bucket width.
    #[must_use]
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }
}

/// An M-core FIFO CPU server in virtual time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuServer {
    /// Instant each core becomes free.
    free_at: Vec<SimTime>,
    tracker: UtilizationTracker,
    total_busy: SimDuration,
    jobs: u64,
}

impl CpuServer {
    /// A server with `cores` cores and the given utilization bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero (via [`UtilizationTracker::new`]).
    #[must_use]
    pub fn new(cores: u32, bucket: SimDuration) -> Self {
        CpuServer {
            free_at: vec![SimTime::ZERO; cores as usize],
            tracker: UtilizationTracker::new(bucket, cores),
            total_busy: SimDuration::ZERO,
            jobs: 0,
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> u32 {
        self.free_at.len() as u32
    }

    /// Submits a work item arriving at `now` that needs `work` of CPU time.
    ///
    /// Returns the virtual time at which the work completes. Work is served
    /// FIFO on the earliest-available core; an idle core starts immediately.
    pub fn submit(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        let core = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .map(|(i, _)| i)
            .expect("server has at least one core");
        let start = self.free_at[core].max(now);
        let end = start + work;
        self.free_at[core] = end;
        self.tracker.record(start, end);
        self.total_busy += work;
        self.jobs += 1;
        end
    }

    /// The earliest time any core is free (i.e. when new work could start).
    #[must_use]
    pub fn earliest_free(&self) -> SimTime {
        self.free_at.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// The time the server finishes everything accepted so far.
    #[must_use]
    pub fn drained_at(&self) -> SimTime {
        self.free_at.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// Total CPU time consumed so far.
    #[must_use]
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Total work items served.
    #[must_use]
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }

    /// Per-bucket utilization up to `until`.
    #[must_use]
    pub fn utilization_series(&self, until: SimTime) -> Vec<f64> {
        self.tracker.utilization_series(until)
    }

    /// The utilization bucket width.
    #[must_use]
    pub fn bucket_width(&self) -> SimDuration {
        self.tracker.bucket_width()
    }

    /// Resets all cores to idle and clears accounting (VM reboot).
    pub fn reset(&mut self, now: SimTime) {
        for t in &mut self.free_at {
            *t = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(n: u64) -> SimDuration {
        SimDuration::from_secs(n)
    }
    fn at(n: u64) -> SimTime {
        SimTime::ZERO + secs(n)
    }

    #[test]
    fn idle_core_starts_immediately() {
        let mut cpu = CpuServer::new(2, secs(1));
        assert_eq!(cpu.submit(at(0), secs(3)), at(3));
        assert_eq!(cpu.submit(at(0), secs(3)), at(3)); // second core
        assert_eq!(cpu.submit(at(0), secs(1)), at(4)); // queued behind core 0
    }

    #[test]
    fn work_queues_fifo_on_earliest_core() {
        let mut cpu = CpuServer::new(1, secs(1));
        assert_eq!(cpu.submit(at(0), secs(2)), at(2));
        assert_eq!(cpu.submit(at(0), secs(2)), at(4));
        // Arriving later than the queue drains: starts at arrival.
        assert_eq!(cpu.submit(at(10), secs(1)), at(11));
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let mut cpu = CpuServer::new(2, secs(1));
        cpu.submit(at(0), secs(1)); // core 0 busy [0,1)
        cpu.submit(at(0), secs(2)); // core 1 busy [0,2)
        let series = cpu.utilization_series(at(2));
        assert_eq!(series.len(), 3);
        assert!((series[0] - 1.0).abs() < 1e-9);
        assert!((series[1] - 0.5).abs() < 1e-9);
        assert!(series[2].abs() < 1e-9);
    }

    #[test]
    fn utilization_splits_across_buckets() {
        let mut t = UtilizationTracker::new(secs(1), 1);
        t.record(at(0) + SimDuration::from_millis(500), at(2));
        let s = t.utilization_series(at(2));
        assert!((s[0] - 0.5).abs() < 1e-9);
        assert!((s[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accounting_totals() {
        let mut cpu = CpuServer::new(4, secs(1));
        for _ in 0..10 {
            cpu.submit(at(0), secs(1));
        }
        assert_eq!(cpu.total_busy(), secs(10));
        assert_eq!(cpu.jobs_served(), 10);
        assert_eq!(cpu.drained_at(), at(3)); // ceil(10 / 4) jobs deep
        assert_eq!(cpu.earliest_free(), at(2));
    }

    #[test]
    fn reset_frees_cores() {
        let mut cpu = CpuServer::new(1, secs(1));
        cpu.submit(at(0), secs(100));
        cpu.reset(at(5));
        assert_eq!(cpu.submit(at(5), secs(1)), at(6));
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn zero_cores_rejected() {
        let _ = CpuServer::new(0, secs(1));
    }
}
