//! Wall-clock profiling: hierarchical self/child span accounting, the
//! parallel executor's scaling diagnosis, and memory accounting.
//!
//! Everything in this module describes the **execution**, not the emulated
//! world: wall-clock nanoseconds vary run to run, grant timelines depend on
//! OS scheduling, byte estimates depend on the platform. None of it may
//! reach the canonical report ([`crate::RunReport::to_json`]); it is
//! exported only by [`crate::RunReport::to_json_full`].
//!
//! What *is* guaranteed deterministic is the **shape**: the profile key set
//! is the fixed [`keys::ALL`] registry (every key present every run, zero
//! when unused) and [`ScalingDiagnosis`] serializes the same object keys
//! whether the run was serial or sharded. That makes "did the structure
//! change?" a byte-comparison even though the values never are.

use crate::Serialize;
use serde::Value;
use std::collections::BTreeMap;

/// The fixed registry of wall-clock profile keys.
///
/// Keys form a hierarchy by dot-prefix: `core.mockup.converge` is a child
/// of `core.mockup`, and a parent's *self* time is its wall minus the sum
/// of its children's walls. The registry is closed on purpose: a
/// conditional key (emitted on some worker counts but not others) would
/// break the profile's structural determinism, so instrumentation sites
/// must use these constants and the report always emits all of them.
pub mod keys {
    /// Whole `mockup()` call: prepare sandboxes, boot, converge.
    pub const MOCKUP: &str = "core.mockup";
    /// Convergence inside `mockup()` (serial engine or parallel executor).
    pub const MOCKUP_CONVERGE: &str = "core.mockup.converge";
    /// `settle()` re-convergence calls.
    pub const SETTLE: &str = "core.settle";
    /// `fork()` / `fork_emulation()` deep-copy cost.
    pub const FORK: &str = "core.fork";
    /// Warm `apply_change` (validate, inject, re-converge, diff).
    pub const APPLY: &str = "core.apply";
    /// Serial engine event loop (`run_until_quiet` on one shard).
    pub const ENGINE_RUN: &str = "sim.engine.run";
    /// Whole parallel executor call, fork to join.
    pub const PARALLEL: &str = "routing.parallel";
    /// Splitting the world into per-shard worlds.
    pub const PARALLEL_FORK: &str = "routing.parallel.fork_worlds";
    /// The coordinator grant loop (between fork and join).
    pub const PARALLEL_RUN: &str = "routing.parallel.run";
    /// Merging shard worlds, envelopes, and recorders back.
    pub const PARALLEL_JOIN: &str = "routing.parallel.join";
    /// Worker compute time, summed across shards (overlaps wall time, so
    /// this legitimately exceeds `routing.parallel.run` on real cores).
    pub const PARALLEL_COMPUTE: &str = "sim.parallel.compute";
    /// Coordinator time merging shard outboxes into inboxes.
    pub const PARALLEL_MERGE: &str = "sim.parallel.merge";
    /// Worker idle time blocked on the grant channel, summed across shards.
    pub const PARALLEL_IDLE: &str = "sim.parallel.idle";

    /// Every profile key, in report order. The profile section always
    /// contains exactly these keys.
    pub const ALL: &[&str] = &[
        MOCKUP,
        MOCKUP_CONVERGE,
        SETTLE,
        FORK,
        APPLY,
        ENGINE_RUN,
        PARALLEL,
        PARALLEL_FORK,
        PARALLEL_RUN,
        PARALLEL_JOIN,
        PARALLEL_COMPUTE,
        PARALLEL_MERGE,
        PARALLEL_IDLE,
    ];
}

/// Aggregated wall-clock time under one profile key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Total wall nanoseconds recorded under this key.
    pub wall_ns: u64,
    /// Wall nanoseconds not covered by child keys (saturating; summed
    /// concurrent children can exceed a parent's wall).
    pub self_ns: u64,
    /// Number of times the key was recorded.
    pub count: u64,
}

/// The wall-clock profile section: every [`keys::ALL`] key with its total
/// wall time, self time (wall minus children), and record count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Entries keyed by profile key, in [`keys::ALL`] order when exported.
    pub entries: BTreeMap<String, ProfileEntry>,
}

impl Profile {
    /// Builds the profile from raw `(wall_ns, count)` aggregates. Keys not
    /// in the registry are kept (sorted) but discouraged: conditional
    /// extra keys break cross-run structural comparisons.
    #[must_use]
    pub fn from_recorded(recorded: &BTreeMap<&'static str, (u64, u64)>) -> Self {
        let mut entries: BTreeMap<String, ProfileEntry> = BTreeMap::new();
        for &key in keys::ALL {
            let (wall_ns, count) = recorded.get(key).copied().unwrap_or((0, 0));
            entries.insert(
                key.to_string(),
                ProfileEntry {
                    wall_ns,
                    self_ns: wall_ns,
                    count,
                },
            );
        }
        for (key, &(wall_ns, count)) in recorded {
            entries.entry((*key).to_string()).or_insert(ProfileEntry {
                wall_ns,
                self_ns: wall_ns,
                count,
            });
        }
        // Self time: subtract each key's wall from its nearest ancestor
        // (the longest strict dot-prefix that is also a key).
        let names: Vec<String> = entries.keys().cloned().collect();
        for name in &names {
            let Some(parent) = nearest_ancestor(name, &names) else {
                continue;
            };
            let child_wall = entries[name.as_str()].wall_ns;
            let p = entries.get_mut(&parent).expect("ancestor exists");
            p.self_ns = p.self_ns.saturating_sub(child_wall);
        }
        Profile { entries }
    }

    /// Total wall nanoseconds under one key (0 if absent).
    #[must_use]
    pub fn wall_ns(&self, key: &str) -> u64 {
        self.entries.get(key).map_or(0, |e| e.wall_ns)
    }
}

/// The longest strict dot-prefix of `name` that appears in `names`.
fn nearest_ancestor(name: &str, names: &[String]) -> Option<String> {
    let mut best: Option<&str> = None;
    for cand in names {
        if cand.len() < name.len()
            && name.starts_with(cand.as_str())
            && name.as_bytes()[cand.len()] == b'.'
            && best.is_none_or(|b| cand.len() > b.len())
        {
            best = Some(cand);
        }
    }
    best.map(str::to_string)
}

impl Serialize for Profile {
    fn to_value(&self) -> Value {
        Value::Object(
            self.entries
                .iter()
                .map(|(k, e)| {
                    (
                        k.clone(),
                        Value::Object(vec![
                            ("wall_ns".to_string(), Value::Uint(e.wall_ns)),
                            ("self_ns".to_string(), Value::Uint(e.self_ns)),
                            ("count".to_string(), Value::Uint(e.count)),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// Why one straggler interval on the critical path was slow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlameKind {
    /// The shard's grant window was clipped by a peer's lower bound: the
    /// lookahead matrix would not let it run further ahead.
    LookaheadStarved,
    /// The shard had all the window it could use and spent the interval
    /// computing (or the run was in lock-step / delivery mode).
    WorkBound,
    /// The interval was coordinator-side envelope merging.
    MergeBound,
}

impl BlameKind {
    /// Stable lowercase label used in exports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BlameKind::LookaheadStarved => "lookahead-starved",
            BlameKind::WorkBound => "work-bound",
            BlameKind::MergeBound => "merge-bound",
        }
    }
}

/// Wall time attributed to each blame class across the critical path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlameBreakdown {
    /// Intervals where cross-shard lookahead bounded progress.
    pub lookahead_starved_ns: u64,
    /// Intervals where shard compute bounded progress.
    pub work_bound_ns: u64,
    /// Intervals where coordinator-side merging bounded progress.
    pub merge_bound_ns: u64,
}

impl Serialize for BlameBreakdown {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "lookahead_starved_ns".to_string(),
                Value::Uint(self.lookahead_starved_ns),
            ),
            ("work_bound_ns".to_string(), Value::Uint(self.work_bound_ns)),
            (
                "merge_bound_ns".to_string(),
                Value::Uint(self.merge_bound_ns),
            ),
        ])
    }
}

/// One link in the chain of grants that bounded run completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalLink {
    /// Shard the grant ran on.
    pub shard: u32,
    /// Grant kind label (`window`, `deliver`, `step`).
    pub kind: String,
    /// What bounded the grant's horizon (`echo`, `peer:<j>`, `quiet-clip`,
    /// `deadline-clip`, `lockstep`, `deliver`).
    pub limiter: String,
    /// Wall nanoseconds from run start when the grant was issued.
    pub start_ns: u64,
    /// Wall nanoseconds from run start when the status came back.
    pub end_ns: u64,
    /// Events the grant executed.
    pub executed: u64,
    /// Blame classification label for this interval.
    pub blame: String,
}

impl Serialize for CriticalLink {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("shard".to_string(), Value::Uint(u64::from(self.shard))),
            ("kind".to_string(), Value::Str(self.kind.clone())),
            ("limiter".to_string(), Value::Str(self.limiter.clone())),
            ("start_ns".to_string(), Value::Uint(self.start_ns)),
            ("end_ns".to_string(), Value::Uint(self.end_ns)),
            ("executed".to_string(), Value::Uint(self.executed)),
            ("blame".to_string(), Value::Str(self.blame.clone())),
        ])
    }
}

/// Per-shard load summary over the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: u32,
    /// Grants issued to this shard.
    pub grants: u64,
    /// Events the shard executed.
    pub executed: u64,
    /// Wall nanoseconds the shard's worker spent computing.
    pub busy_ns: u64,
    /// Wall nanoseconds the shard's worker spent blocked on the grant
    /// channel.
    pub idle_ns: u64,
}

impl Serialize for ShardLoad {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("shard".to_string(), Value::Uint(u64::from(self.shard))),
            ("grants".to_string(), Value::Uint(self.grants)),
            ("executed".to_string(), Value::Uint(self.executed)),
            ("busy_ns".to_string(), Value::Uint(self.busy_ns)),
            ("idle_ns".to_string(), Value::Uint(self.idle_ns)),
        ])
    }
}

/// Critical-path and blame attribution for one parallel (or serial) run.
///
/// Reconstructed from the coordinator's grant timeline: the chain of
/// grants that bounded completion, each interval classified as
/// lookahead-starved / work-bound / merge-bound. A serial run reports the
/// same object shape with `shards == 1` and empty arrays, so the key
/// structure of the export never depends on the worker count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScalingDiagnosis {
    /// Number of shards (1 for a serial run).
    pub shards: u32,
    /// Wall nanoseconds of the whole executor run.
    pub run_wall_ns: u64,
    /// Worker compute nanoseconds summed across shards.
    pub compute_ns: u64,
    /// Coordinator merge nanoseconds.
    pub merge_ns: u64,
    /// Worker idle nanoseconds summed across shards.
    pub idle_ns: u64,
    /// Total grants issued.
    pub grants: u64,
    /// Blame totals along the critical path.
    pub blame: BlameBreakdown,
    /// The chain of grants that bounded completion, newest last. Bounded
    /// to the last [`ScalingDiagnosis::CRITICAL_PATH_CAP`] links.
    pub critical_path: Vec<CriticalLink>,
    /// Per-shard load summary.
    pub per_shard: Vec<ShardLoad>,
}

impl ScalingDiagnosis {
    /// Maximum critical-path links kept in the export.
    pub const CRITICAL_PATH_CAP: usize = 64;

    /// The trivial diagnosis a serial (one-shard) run reports: same key
    /// structure, no grant timeline.
    #[must_use]
    pub fn serial() -> Self {
        ScalingDiagnosis {
            shards: 1,
            ..ScalingDiagnosis::default()
        }
    }

    /// Renders the critical path as Chrome trace-event JSON (complete
    /// `"ph": "X"` events, one per link, `tid` = shard), loadable in
    /// Perfetto / `chrome://tracing` next to the causal trace export.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        let events: Vec<Value> = self
            .critical_path
            .iter()
            .map(|l| {
                Value::Object(vec![
                    (
                        "name".to_string(),
                        Value::Str(format!("{} ({})", l.kind, l.blame)),
                    ),
                    ("ph".to_string(), Value::Str("X".to_string())),
                    ("pid".to_string(), Value::Uint(0)),
                    ("tid".to_string(), Value::Uint(u64::from(l.shard))),
                    ("ts".to_string(), Value::Uint(l.start_ns / 1_000)),
                    (
                        "dur".to_string(),
                        Value::Uint(l.end_ns.saturating_sub(l.start_ns).max(1) / 1_000),
                    ),
                    (
                        "args".to_string(),
                        Value::Object(vec![
                            ("limiter".to_string(), Value::Str(l.limiter.clone())),
                            ("executed".to_string(), Value::Uint(l.executed)),
                            ("start_ns".to_string(), Value::Uint(l.start_ns)),
                            ("end_ns".to_string(), Value::Uint(l.end_ns)),
                        ]),
                    ),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ]);
        let mut s = serde_json::to_string_pretty(&doc).expect("trace serialization");
        s.push('\n');
        s
    }
}

impl Serialize for ScalingDiagnosis {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("shards".to_string(), Value::Uint(u64::from(self.shards))),
            ("run_wall_ns".to_string(), Value::Uint(self.run_wall_ns)),
            ("compute_ns".to_string(), Value::Uint(self.compute_ns)),
            ("merge_ns".to_string(), Value::Uint(self.merge_ns)),
            ("idle_ns".to_string(), Value::Uint(self.idle_ns)),
            ("grants".to_string(), Value::Uint(self.grants)),
            ("blame".to_string(), self.blame.to_value()),
            (
                "critical_path".to_string(),
                Value::Array(self.critical_path.iter().map(Serialize::to_value).collect()),
            ),
            (
                "per_shard".to_string(),
                Value::Array(self.per_shard.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

/// Byte totals across every emulated device's routing tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceMemTotals {
    /// Devices accounted.
    pub devices: u64,
    /// Total RIB entries across devices.
    pub rib_entries: u64,
    /// Estimated RIB bytes across devices.
    pub rib_bytes: u64,
    /// Total FIB prefixes across devices.
    pub fib_prefixes: u64,
    /// Total FIB route entries (prefixes × ECMP fanout) across devices.
    pub fib_route_entries: u64,
    /// Estimated FIB bytes across devices.
    pub fib_bytes: u64,
}

impl Serialize for DeviceMemTotals {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("devices".to_string(), Value::Uint(self.devices)),
            ("rib_entries".to_string(), Value::Uint(self.rib_entries)),
            ("rib_bytes".to_string(), Value::Uint(self.rib_bytes)),
            ("fib_prefixes".to_string(), Value::Uint(self.fib_prefixes)),
            (
                "fib_route_entries".to_string(),
                Value::Uint(self.fib_route_entries),
            ),
            ("fib_bytes".to_string(), Value::Uint(self.fib_bytes)),
        ])
    }
}

/// One device's memory estimate (only the heaviest devices are exported).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceMem {
    /// Device id.
    pub device: u32,
    /// Estimated RIB bytes.
    pub rib_bytes: u64,
    /// Estimated FIB bytes.
    pub fib_bytes: u64,
}

impl Serialize for DeviceMem {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("device".to_string(), Value::Uint(u64::from(self.device))),
            ("rib_bytes".to_string(), Value::Uint(self.rib_bytes)),
            ("fib_bytes".to_string(), Value::Uint(self.fib_bytes)),
        ])
    }
}

/// The process-wide `PathAttrs` interner's footprint and payoff.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternerMem {
    /// Live interned entries.
    pub entries: u64,
    /// Estimated bytes held by the intern table.
    pub table_bytes: u64,
    /// Intern hits so far (process-wide).
    pub hits: u64,
    /// Estimated bytes the hits avoided allocating.
    pub hit_bytes_saved: u64,
}

impl Serialize for InternerMem {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("entries".to_string(), Value::Uint(self.entries)),
            ("table_bytes".to_string(), Value::Uint(self.table_bytes)),
            ("hits".to_string(), Value::Uint(self.hits)),
            (
                "hit_bytes_saved".to_string(),
                Value::Uint(self.hit_bytes_saved),
            ),
        ])
    }
}

/// Residual engine event-queue footprint at report time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueMem {
    /// Events still pending in the queue.
    pub pending_events: u64,
    /// Estimated bytes those pending events hold.
    pub residue_bytes: u64,
}

impl Serialize for QueueMem {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "pending_events".to_string(),
                Value::Uint(self.pending_events),
            ),
            ("residue_bytes".to_string(), Value::Uint(self.residue_bytes)),
        ])
    }
}

/// Copy-on-write sharing breakdown for one emulation fork: what the child
/// shares with its parent versus what was deep-copied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Estimated bytes shared with the parent (prepare output, interned
    /// path attributes).
    pub shared_bytes: u64,
    /// Estimated bytes deep-copied for the child (RIB/FIB clones, queued
    /// events, fleet state).
    pub copied_bytes: u64,
}

impl CowStats {
    /// Fraction of the fork's reachable bytes that are shared, in
    /// [0, 1]. Returns 0 when nothing is accounted.
    #[must_use]
    pub fn sharing_ratio(&self) -> f64 {
        let total = self.shared_bytes + self.copied_bytes;
        if total == 0 {
            0.0
        } else {
            self.shared_bytes as f64 / total as f64
        }
    }
}

impl Serialize for CowStats {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("shared_bytes".to_string(), Value::Uint(self.shared_bytes)),
            ("copied_bytes".to_string(), Value::Uint(self.copied_bytes)),
            (
                "sharing_ratio".to_string(),
                Value::Float(self.sharing_ratio()),
            ),
        ])
    }
}

/// The memory-accounting section: per-device table bytes, interner
/// footprint, event-queue residue, and (for forks) COW sharing.
///
/// All byte figures are *estimates* — entry counts multiplied by struct
/// sizes — not allocator measurements: they are deterministic for a seed
/// on a given platform, which is what a regression baseline needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySection {
    /// Totals across devices.
    pub devices: DeviceMemTotals,
    /// The heaviest devices by combined RIB+FIB bytes, largest first.
    pub top_devices: Vec<DeviceMem>,
    /// Interner footprint.
    pub interner: InternerMem,
    /// Event-queue residue.
    pub event_queue: QueueMem,
    /// COW sharing for forked emulations; `None` on a root emulation.
    pub fork_cow: Option<CowStats>,
}

impl Serialize for MemorySection {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("devices".to_string(), self.devices.to_value()),
            (
                "top_devices".to_string(),
                Value::Array(self.top_devices.iter().map(Serialize::to_value).collect()),
            ),
            ("interner".to_string(), self.interner.to_value()),
            ("event_queue".to_string(), self.event_queue.to_value()),
            (
                "fork_cow".to_string(),
                match &self.fork_cow {
                    Some(c) => c.to_value(),
                    None => Value::Null,
                },
            ),
        ])
    }
}

pub use crate::testutil::json_key_structure;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_always_contains_the_full_registry() {
        let p = Profile::from_recorded(&BTreeMap::new());
        for &key in keys::ALL {
            assert!(p.entries.contains_key(key), "missing {key}");
            assert_eq!(p.entries[key], ProfileEntry::default());
        }
    }

    #[test]
    fn profile_self_time_subtracts_children() {
        let mut rec = BTreeMap::new();
        rec.insert(keys::MOCKUP, (100, 1));
        rec.insert(keys::MOCKUP_CONVERGE, (70, 1));
        let p = Profile::from_recorded(&rec);
        assert_eq!(p.entries[keys::MOCKUP].wall_ns, 100);
        assert_eq!(p.entries[keys::MOCKUP].self_ns, 30);
        assert_eq!(p.entries[keys::MOCKUP_CONVERGE].self_ns, 70);
        // Overlapping concurrent children saturate instead of underflowing.
        let mut rec = BTreeMap::new();
        rec.insert(keys::PARALLEL, (10, 1));
        rec.insert(keys::PARALLEL_RUN, (8, 1));
        rec.insert(keys::PARALLEL_JOIN, (5, 1));
        let p = Profile::from_recorded(&rec);
        assert_eq!(p.entries[keys::PARALLEL].self_ns, 0);
    }

    #[test]
    fn nearest_ancestor_prefers_longest_prefix() {
        let names = vec![
            "routing.parallel".to_string(),
            "routing.parallel.run".to_string(),
            "routing.parallel.run.inner".to_string(),
        ];
        assert_eq!(
            nearest_ancestor("routing.parallel.run.inner", &names),
            Some("routing.parallel.run".to_string())
        );
        assert_eq!(nearest_ancestor("routing.parallel", &names), None);
        // "routing.parallelx" must not match "routing.parallel".
        assert_eq!(nearest_ancestor("routing.parallelx", &names), None);
    }

    #[test]
    fn serial_diagnosis_has_same_structure_as_sharded() {
        let serial = ScalingDiagnosis::serial();
        let sharded = ScalingDiagnosis {
            shards: 4,
            run_wall_ns: 1000,
            grants: 12,
            critical_path: vec![CriticalLink {
                shard: 2,
                kind: "window".to_string(),
                limiter: "peer:0".to_string(),
                start_ns: 10,
                end_ns: 40,
                executed: 3,
                blame: "lookahead-starved".to_string(),
            }],
            per_shard: vec![ShardLoad::default(); 4],
            ..ScalingDiagnosis::default()
        };
        assert_eq!(
            json_key_structure(&serial.to_value()),
            json_key_structure(&sharded.to_value())
        );
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let d = ScalingDiagnosis {
            shards: 2,
            critical_path: vec![CriticalLink {
                shard: 1,
                kind: "window".to_string(),
                limiter: "echo".to_string(),
                start_ns: 5_000,
                end_ns: 9_000,
                executed: 7,
                blame: "work-bound".to_string(),
            }],
            ..ScalingDiagnosis::default()
        };
        let json = d.chrome_trace_json();
        let parsed = serde_json::from_str(&json).expect("valid JSON");
        let Value::Object(obj) = parsed else {
            panic!("chrome trace must be an object")
        };
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("ph").and_then(Value::as_str),
            Some("X"),
            "critical-path links are complete events"
        );
    }

    #[test]
    fn cow_ratio_is_bounded() {
        assert_eq!(CowStats::default().sharing_ratio(), 0.0);
        let c = CowStats {
            shared_bytes: 75,
            copied_bytes: 25,
        };
        assert!((c.sharing_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn key_structure_collapses_arrays_and_scalars() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Uint(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Uint(1), Value::Uint(2)]),
            ),
        ]);
        let w = Value::Object(vec![
            ("a".to_string(), Value::Str("different".to_string())),
            ("b".to_string(), Value::Array(vec![])),
        ]);
        assert_eq!(json_key_structure(&v), json_key_structure(&w));
        let x = Value::Object(vec![("a".to_string(), Value::Uint(1))]);
        assert_ne!(json_key_structure(&v), json_key_structure(&x));
    }
}
