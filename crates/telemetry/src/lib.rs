//! Deterministic, virtual-time observability for CrystalNet runs.
//!
//! CrystalNet's value proposition is *visibility*: operators must be able to
//! ask "what did the engine, the shards, and each BGP speaker actually do
//! during this run?" without perturbing the run itself. This crate provides
//! the three pieces the Emulation API builds `pull_report()` on:
//!
//! 1. a [`Recorder`] trait instrumented code emits through — spans and
//!    events stamped with [`SimTime`], plus named counters, gauges, and
//!    histograms. The default [`NoopRecorder`] makes every emission a
//!    no-op behind a single `enabled()` branch, so hot paths pay nothing
//!    when observability is off;
//! 2. an in-memory [`MemRecorder`] that stores everything in `BTreeMap`s
//!    so export order never depends on insertion order;
//! 3. a [`RunReport`] exporter: canonical JSON plus a human-readable table.
//!
//! # Determinism contract
//!
//! The canonical report ([`RunReport::to_json`]) must be **byte-identical**
//! across repetitions and across `workers` values for the same seed. Two
//! rules make that hold:
//!
//! - *canonical* metrics record facts about the emulated world (frames
//!   sent, BGP updates received, faults injected, per-device route churn).
//!   The parallel executor replays the exact serial schedule, so these
//!   merge to identical values whichever shard recorded them. Shard
//!   recorders are created with [`Recorder::fork`] and merged back with
//!   [`Recorder::absorb`]: counters add, gauges max, histograms append and
//!   are sorted before summarizing — all order-independent operations;
//! - *diagnostic* metrics record facts about the execution itself
//!   (events executed per shard, conservative windows, lock-step rounds,
//!   interner hit rate). These legitimately differ run-to-run, so they are
//!   excluded from the canonical export and only appear in
//!   [`RunReport::to_json_full`].
//!
//! Spans and events are only emitted from serial orchestrator code (the
//! mockup/settle/fault paths), never from inside shard workers, so their
//! emission order is deterministic by construction.

use crystalnet_sim::metrics::percentile_f64;
use crystalnet_sim::{EventId, SimDuration, SimTime};
use serde::{Serialize, Value};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

pub mod profile;
pub mod testutil;

pub use profile::{
    BlameBreakdown, BlameKind, CowStats, CriticalLink, DeviceMem, DeviceMemTotals, InternerMem,
    MemorySection, Profile, ProfileEntry, QueueMem, ScalingDiagnosis, ShardLoad,
};
pub use testutil::{assert_same_key_structure, json_deep_structure, json_key_structure};

/// A typed field value attached to an event or report metadata.
///
/// Events carry structured key/value pairs instead of preformatted strings
/// so reports can be diffed, filtered, and asserted on.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (must not be NaN; reports compare bytes).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short text (labels, kinds — not log prose).
    Str(String),
    /// A virtual-time instant; serializes as nanoseconds.
    Time(SimTime),
    /// A virtual-time duration; serializes as nanoseconds.
    Dur(SimDuration),
}

impl Serialize for FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::Uint(*v),
            FieldValue::I64(v) => Value::Int(*v),
            FieldValue::F64(v) => Value::Float(*v),
            FieldValue::Bool(v) => Value::Bool(*v),
            FieldValue::Str(v) => Value::Str(v.clone()),
            FieldValue::Time(t) => Value::Uint(t.as_nanos()),
            FieldValue::Dur(d) => Value::Uint(d.as_nanos()),
        }
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Time(t) => write!(f, "{t}"),
            FieldValue::Dur(d) => write!(f, "{d}"),
        }
    }
}

/// A completed span: a named phase of the run over a virtual-time interval,
/// optionally scoped to one device (`convergence` spans).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (`mockup`, `boot`, `settle`, `recovery`, `convergence`).
    pub name: String,
    /// Device scope for per-device spans; `None` for run-wide phases.
    pub device: Option<u32>,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time.
    pub end: SimTime,
}

impl SpanRecord {
    /// The span's virtual duration.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

impl Serialize for SpanRecord {
    fn to_value(&self) -> Value {
        let mut obj = vec![("name".to_string(), Value::Str(self.name.clone()))];
        if let Some(dev) = self.device {
            obj.push(("device".to_string(), Value::Uint(u64::from(dev))));
        }
        obj.push(("start_ns".to_string(), Value::Uint(self.start.as_nanos())));
        obj.push(("end_ns".to_string(), Value::Uint(self.end.as_nanos())));
        obj.push((
            "duration_ns".to_string(),
            Value::Uint(self.duration().as_nanos()),
        ));
        Value::Object(obj)
    }
}

/// A point event with typed fields, stamped with virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// When the event happened, in virtual time.
    pub at: SimTime,
    /// Event name (e.g. `fault_injected`, `reboot_attempt`).
    pub name: String,
    /// Typed key/value payload, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl EventRecord {
    /// Builds an event from static field names.
    #[must_use]
    pub fn new(at: SimTime, name: &str, fields: Vec<(&str, FieldValue)>) -> Self {
        EventRecord {
            at,
            name: name.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Looks up a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

impl Serialize for EventRecord {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("at_ns".to_string(), Value::Uint(self.at.as_nanos())),
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "fields".to_string(),
                Value::Object(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Order-independent summary of a histogram's samples.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 99th percentile (linear interpolation).
    pub p99: f64,
}

impl HistogramSummary {
    /// Summarizes `samples`; sorts internally so the result is independent
    /// of recording/merge order. Returns `None` if empty.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("histogram samples must not be NaN"));
        let sum: f64 = sorted.iter().sum();
        Some(HistogramSummary {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: sum / sorted.len() as f64,
            p50: percentile_f64(&sorted, 50.0).expect("non-empty"),
            p99: percentile_f64(&sorted, 99.0).expect("non-empty"),
        })
    }
}

impl Serialize for HistogramSummary {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), Value::Uint(self.count as u64)),
            ("min".to_string(), Value::Float(self.min)),
            ("max".to_string(), Value::Float(self.max)),
            ("mean".to_string(), Value::Float(self.mean)),
            ("p50".to_string(), Value::Float(self.p50)),
            ("p99".to_string(), Value::Float(self.p99)),
        ])
    }
}

/// One causal trace record: something the emulated world did, stamped
/// with the stable id of the event that did it and a link to the event
/// that caused that one.
///
/// Records are device-scoped world facts (a frame delivered, a FIB entry
/// installed, a link transition observed by an endpoint), so the sharded
/// executor emits each exactly once — on the shard owning the device —
/// and the merged, sorted stream is byte-identical to a serial run's.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the record.
    pub at: SimTime,
    /// Stable id of the event this record was emitted under.
    pub id: EventId,
    /// Ordinal among records emitted under the same `(event id, device)`
    /// pair. Assigned by the sink at push time (one device's records for
    /// one event are pushed consecutively on the single shard owning that
    /// device, so the numbering is deterministic even when an event —
    /// e.g. a link transition — touches devices on different shards);
    /// used only as a sort tiebreak and never exported.
    pub sub: u32,
    /// Id of the causal parent event, if known.
    pub cause: Option<EventId>,
    /// Record kind (`bgp_rx`, `fib_install`, `link_state`, ...).
    pub name: &'static str,
    /// Device scope, if the record belongs to one device.
    pub device: Option<u32>,
    /// Typed payload, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceRecord {
    /// Builds a record; `sub` starts at 0 and is reassigned by the sink.
    #[must_use]
    pub fn new(
        at: SimTime,
        id: EventId,
        cause: Option<EventId>,
        name: &'static str,
        device: Option<u32>,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Self {
        TraceRecord {
            at,
            id,
            sub: 0,
            cause,
            name,
            device,
            fields,
        }
    }

    /// The deterministic global sort rank: `(time, event key, device,
    /// ordinal)`. Device-less records sort before device-scoped ones
    /// within the same event.
    #[must_use]
    pub fn rank(&self) -> (u64, u64, u64, u32) {
        (
            self.id.time_ns,
            self.id.key,
            self.device.map_or(0, |d| u64::from(d) + 1),
            self.sub,
        )
    }

    fn jsonl_value(&self) -> Value {
        let mut obj = vec![
            ("at_ns".to_string(), Value::Uint(self.at.as_nanos())),
            ("id".to_string(), event_id_value(self.id)),
            (
                "cause".to_string(),
                match self.cause {
                    Some(c) => event_id_value(c),
                    None => Value::Null,
                },
            ),
            ("name".to_string(), Value::Str(self.name.to_string())),
        ];
        if let Some(dev) = self.device {
            obj.push(("device".to_string(), Value::Uint(u64::from(dev))));
        }
        obj.push((
            "fields".to_string(),
            Value::Object(
                self.fields
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), v.to_value()))
                    .collect(),
            ),
        ));
        Value::Object(obj)
    }

    fn chrome_value(&self) -> Value {
        // Chrome trace-event format: an instant event ("ph": "i") with
        // thread scope. `ts` is in microseconds; the exact nanosecond
        // timestamp and the causal ids ride in `args` so nothing is lost
        // to the unit conversion.
        let mut args = vec![
            ("time_ns".to_string(), Value::Uint(self.at.as_nanos())),
            ("id_key".to_string(), Value::Uint(self.id.key)),
        ];
        if let Some(c) = self.cause {
            args.push(("cause_time_ns".to_string(), Value::Uint(c.time_ns)));
            args.push(("cause_key".to_string(), Value::Uint(c.key)));
        }
        for (k, v) in &self.fields {
            args.push(((*k).to_string(), v.to_value()));
        }
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.to_string())),
            ("ph".to_string(), Value::Str("i".to_string())),
            ("s".to_string(), Value::Str("t".to_string())),
            ("pid".to_string(), Value::Uint(1)),
            (
                "tid".to_string(),
                Value::Uint(self.device.map_or(0, u64::from)),
            ),
            ("ts".to_string(), Value::Uint(self.at.as_nanos() / 1_000)),
            ("args".to_string(), Value::Object(args)),
        ])
    }
}

fn event_id_value(id: EventId) -> Value {
    Value::Object(vec![
        ("time_ns".to_string(), Value::Uint(id.time_ns)),
        ("key".to_string(), Value::Uint(id.key)),
    ])
}

/// Renders records as stream-friendly JSONL: one object per line, in
/// rank order if the caller sorted them (the sink does).
#[must_use]
pub fn trace_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(&r.jsonl_value()).expect("trace serialization"));
        out.push('\n');
    }
    out
}

/// Renders records as Chrome trace-event JSON (the `traceEvents` object
/// form), loadable in Perfetto / `chrome://tracing`.
#[must_use]
pub fn trace_chrome_json(records: &[TraceRecord]) -> String {
    let value = Value::Object(vec![
        (
            "traceEvents".to_string(),
            Value::Array(records.iter().map(TraceRecord::chrome_value).collect()),
        ),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    let mut s = serde_json::to_string_pretty(&value).expect("trace serialization");
    s.push('\n');
    s
}

/// A bounded ring buffer of [`TraceRecord`]s.
///
/// Keeps the **newest** `capacity` records; older records are dropped and
/// counted. Because the global record stream is totally ordered by
/// [`TraceRecord::rank`] and each shard holds a contiguous-by-device
/// subset, "newest `capacity` per shard, then merge-sort and keep the
/// newest `capacity` overall" retains exactly the same set a serial run
/// would — any record in the global newest-`capacity` set is necessarily
/// within its own shard's newest `capacity`. Dropped counts therefore
/// merge deterministically too (`emitted − retained`).
#[derive(Debug, Clone)]
pub struct TraceSink {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    emitted: u64,
    last_id: EventId,
    last_dev: Option<u32>,
    last_sub: u32,
}

impl TraceSink {
    /// An empty sink bounded to `capacity` records.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceSink {
            capacity,
            records: VecDeque::new(),
            emitted: 0,
            last_id: EventId::ZERO,
            last_dev: None,
            last_sub: 0,
        }
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever pushed (including dropped ones).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Records dropped to stay within the bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.emitted - self.records.len() as u64
    }

    /// Appends a record, assigning its `sub` ordinal and evicting the
    /// oldest record if the sink is full.
    pub fn push(&mut self, mut rec: TraceRecord) {
        if rec.id == self.last_id && rec.device == self.last_dev {
            self.last_sub += 1;
        } else {
            self.last_id = rec.id;
            self.last_dev = rec.device;
            self.last_sub = 0;
        }
        rec.sub = self.last_sub;
        self.emitted += 1;
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(rec);
    }

    /// Retained records in [`TraceRecord::rank`] order.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = self.records.iter().cloned().collect();
        out.sort_by_key(TraceRecord::rank);
        out
    }

    /// Merges a shard sink back: records interleave by rank, the newest
    /// `capacity` survive, and emit counts add.
    pub fn absorb(&mut self, child: TraceSink) {
        self.emitted += child.emitted;
        self.records.extend(child.records);
        let mut all: Vec<TraceRecord> = std::mem::take(&mut self.records).into();
        all.sort_by_key(TraceRecord::rank);
        let drop = all.len().saturating_sub(self.capacity);
        self.records = all.into_iter().skip(drop).collect();
        if let Some(last) = self.records.back() {
            self.last_id = last.id;
            self.last_dev = last.device;
            self.last_sub = last.sub;
        }
    }

    /// JSONL export of the retained records.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        trace_jsonl(&self.records())
    }

    /// Chrome trace-event JSON export of the retained records.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        trace_chrome_json(&self.records())
    }
}

/// The sink instrumented code emits through.
///
/// Every method has a no-op default body, so [`NoopRecorder`] is an empty
/// impl and hot paths can guard bulk work with a single
/// `if recorder.enabled()` branch. Canonical emissions (`counter_add`,
/// `gauge_max`, the per-device variants, `histogram_record`) must describe
/// the emulated world and merge order-independently; execution-dependent
/// facts go through `diagnostic_add`/`diagnostic_max` and never reach the
/// canonical report.
pub trait Recorder: Send {
    /// Whether emissions are stored. Callers may skip preparing emission
    /// arguments when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `v` to the named canonical counter.
    fn counter_add(&mut self, _name: &'static str, _v: u64) {}

    /// Raises the named canonical gauge to at least `v`.
    fn gauge_max(&mut self, _name: &'static str, _v: u64) {}

    /// Adds `v` to a per-device canonical counter.
    fn device_counter_add(&mut self, _name: &'static str, _device: u32, _v: u64) {}

    /// Raises a per-device canonical gauge to at least `v`.
    fn device_gauge_max(&mut self, _name: &'static str, _device: u32, _v: u64) {}

    /// Records one sample into the named histogram.
    fn histogram_record(&mut self, _name: &'static str, _v: f64) {}

    /// Adds `v` to a diagnostic (execution-dependent) counter.
    fn diagnostic_add(&mut self, _name: String, _v: u64) {}

    /// Raises a diagnostic gauge to at least `v`.
    fn diagnostic_max(&mut self, _name: String, _v: u64) {}

    /// Sets an array-valued diagnostic (e.g. one value per shard). Last
    /// write wins; like scalar diagnostics, arrays never reach the
    /// canonical export.
    fn diagnostic_array(&mut self, _name: String, _values: Vec<u64>) {}

    /// Whether wall-clock profiling is on. Instrumentation sites gate
    /// every `Instant::now()` pair behind this so a profiling-off run
    /// pays nothing but the branch.
    fn profiling_enabled(&self) -> bool {
        false
    }

    /// Adds `wall_ns` of wall-clock time under a [`profile::keys`] key.
    /// Only meaningful when [`Recorder::profiling_enabled`] is true.
    fn profile_add(&mut self, _key: &'static str, _wall_ns: u64) {}

    /// Stores the parallel executor's scaling diagnosis for this run.
    /// Last write wins (each converge replaces the previous diagnosis).
    fn scaling_diagnosis(&mut self, _d: ScalingDiagnosis) {}

    /// Records a completed span. Only call from serial orchestrator code.
    fn span(&mut self, _name: &'static str, _device: Option<u32>, _start: SimTime, _end: SimTime) {}

    /// Records a typed event. Only call from serial orchestrator code.
    fn event(
        &mut self,
        _at: SimTime,
        _name: &'static str,
        _fields: Vec<(&'static str, FieldValue)>,
    ) {
    }

    /// Whether causal trace records are stored. Like [`Recorder::enabled`]
    /// this gates argument preparation: emitting a trace record means
    /// formatting fields, so hot paths must check first.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Appends one causal trace record to the bounded sink.
    fn trace(&mut self, _rec: TraceRecord) {}

    /// Creates an empty recorder of the same kind for a shard worker.
    fn fork(&self) -> Box<dyn Recorder>;

    /// Deep-copies this recorder, history included — the telemetry fork
    /// point of an emulation fork. Unlike [`Recorder::fork`] (which
    /// starts a shard's recorder *empty* so the join can `absorb` it
    /// additively), a snapshot carries everything recorded so far: a
    /// forked emulation's report reads as "baseline plus the fork's own
    /// activity", byte-identical to a run that had performed the fork's
    /// steps directly.
    fn snapshot(&self) -> Box<dyn Recorder>;

    /// Merges a forked recorder back: counters add, gauges max, histograms
    /// append. Shard merge order must not affect the canonical report.
    fn absorb(&mut self, _child: Box<dyn Recorder>) {}

    /// Downcast support for readers ([`MemRecorder::from_recorder`]).
    fn as_any(&self) -> &dyn Any;

    /// Downcast support for [`Recorder::absorb`].
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The zero-cost default: every emission is a no-op and `enabled()` is
/// `false`, so instrumented hot paths skip argument preparation entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn fork(&self) -> Box<dyn Recorder> {
        Box::new(NoopRecorder)
    }

    fn snapshot(&self) -> Box<dyn Recorder> {
        Box::new(NoopRecorder)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// In-memory recorder. All keyed storage is `BTreeMap`-backed so export
/// order is a function of the keys alone, never of insertion order.
#[derive(Debug, Clone, Default)]
pub struct MemRecorder {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    dev_counters: BTreeMap<&'static str, BTreeMap<u32, u64>>,
    dev_gauges: BTreeMap<&'static str, BTreeMap<u32, u64>>,
    histograms: BTreeMap<&'static str, Vec<f64>>,
    diag_counters: BTreeMap<String, u64>,
    diag_gauges: BTreeMap<String, u64>,
    diag_arrays: BTreeMap<String, Vec<u64>>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    trace: Option<TraceSink>,
    profiling: bool,
    profile: BTreeMap<&'static str, (u64, u64)>,
    scaling: Option<ScalingDiagnosis>,
}

impl MemRecorder {
    /// An empty enabled recorder, with causal tracing off.
    #[must_use]
    pub fn new() -> Self {
        MemRecorder::default()
    }

    /// An empty enabled recorder with a bounded causal-trace sink.
    /// `capacity == 0` leaves tracing off.
    #[must_use]
    pub fn with_trace_capacity(capacity: usize) -> Self {
        MemRecorder {
            trace: (capacity > 0).then(|| TraceSink::new(capacity)),
            ..MemRecorder::default()
        }
    }

    /// Turns wall-clock profiling on (builder-style). Profiled runs emit
    /// a [`Profile`] and [`ScalingDiagnosis`] section in the full export.
    #[must_use]
    pub fn with_profiling(mut self) -> Self {
        self.profiling = true;
        self
    }

    /// The causal-trace sink, if tracing is on.
    #[must_use]
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Downcasts a `dyn Recorder` to `MemRecorder` for reading; `None` for
    /// the no-op (or any foreign) recorder.
    #[must_use]
    pub fn from_recorder(r: &dyn Recorder) -> Option<&MemRecorder> {
        r.as_any().downcast_ref::<MemRecorder>()
    }

    /// Current value of a canonical counter (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a canonical gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Per-device values of a canonical counter, keyed by device id.
    #[must_use]
    pub fn device_counter(&self, name: &str) -> Option<&BTreeMap<u32, u64>> {
        self.dev_counters.get(name)
    }

    /// Per-device values of a canonical gauge, keyed by device id.
    #[must_use]
    pub fn device_gauge(&self, name: &str) -> Option<&BTreeMap<u32, u64>> {
        self.dev_gauges.get(name)
    }

    /// All spans in emission order.
    #[must_use]
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// All events in emission order.
    #[must_use]
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Builds the report skeleton from everything recorded so far. The
    /// caller (the Emulation API) adds metadata and the journal section.
    #[must_use]
    pub fn report(&self) -> RunReport {
        let mut per_device = BTreeMap::new();
        for (name, devs) in &self.dev_counters {
            per_device.insert((*name).to_string(), devs.clone());
        }
        for (name, devs) in &self.dev_gauges {
            per_device.insert((*name).to_string(), devs.clone());
        }
        let mut histograms = BTreeMap::new();
        for (name, samples) in &self.histograms {
            if let Some(summary) = HistogramSummary::from_samples(samples) {
                histograms.insert((*name).to_string(), summary);
            }
        }
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (name, v) in &self.counters {
            counters.insert((*name).to_string(), *v);
        }
        for (name, v) in &self.gauges {
            counters.insert((*name).to_string(), *v);
        }
        if let Some(sink) = &self.trace {
            // Emit/retain/drop counts are world facts (each record is
            // emitted exactly once whatever the worker count), so they
            // belong in the canonical section.
            counters.insert("telemetry.trace_emitted".to_string(), sink.emitted());
            counters.insert("telemetry.trace_retained".to_string(), sink.len() as u64);
            counters.insert("telemetry.trace_dropped".to_string(), sink.dropped());
        }
        let mut diagnostics = self.diag_counters.clone();
        for (name, v) in &self.diag_gauges {
            diagnostics.insert(name.clone(), *v);
        }
        RunReport {
            enabled: true,
            meta: Vec::new(),
            spans: self.spans.clone(),
            counters,
            per_device,
            histograms,
            events: self.events.clone(),
            journal: Vec::new(),
            diagnostics,
            diagnostic_arrays: self.diag_arrays.clone(),
            profile: self
                .profiling
                .then(|| Profile::from_recorded(&self.profile)),
            scaling: self.profiling.then(|| {
                self.scaling
                    .clone()
                    .unwrap_or_else(ScalingDiagnosis::serial)
            }),
            memory: None,
        }
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    fn gauge_max(&mut self, name: &'static str, v: u64) {
        let g = self.gauges.entry(name).or_insert(0);
        *g = (*g).max(v);
    }

    fn device_counter_add(&mut self, name: &'static str, device: u32, v: u64) {
        *self
            .dev_counters
            .entry(name)
            .or_default()
            .entry(device)
            .or_insert(0) += v;
    }

    fn device_gauge_max(&mut self, name: &'static str, device: u32, v: u64) {
        let g = self
            .dev_gauges
            .entry(name)
            .or_default()
            .entry(device)
            .or_insert(0);
        *g = (*g).max(v);
    }

    fn histogram_record(&mut self, name: &'static str, v: f64) {
        self.histograms.entry(name).or_default().push(v);
    }

    fn diagnostic_add(&mut self, name: String, v: u64) {
        *self.diag_counters.entry(name).or_insert(0) += v;
    }

    fn diagnostic_max(&mut self, name: String, v: u64) {
        let g = self.diag_gauges.entry(name).or_insert(0);
        *g = (*g).max(v);
    }

    fn diagnostic_array(&mut self, name: String, values: Vec<u64>) {
        self.diag_arrays.insert(name, values);
    }

    fn profiling_enabled(&self) -> bool {
        self.profiling
    }

    fn profile_add(&mut self, key: &'static str, wall_ns: u64) {
        let e = self.profile.entry(key).or_insert((0, 0));
        e.0 += wall_ns;
        e.1 += 1;
    }

    fn scaling_diagnosis(&mut self, d: ScalingDiagnosis) {
        self.scaling = Some(d);
    }

    fn span(&mut self, name: &'static str, device: Option<u32>, start: SimTime, end: SimTime) {
        self.spans.push(SpanRecord {
            name: name.to_string(),
            device,
            start,
            end,
        });
    }

    fn event(&mut self, at: SimTime, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        self.events.push(EventRecord::new(at, name, fields));
    }

    fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    fn trace(&mut self, rec: TraceRecord) {
        if let Some(sink) = &mut self.trace {
            sink.push(rec);
        }
    }

    fn fork(&self) -> Box<dyn Recorder> {
        // Shard sinks share the parent's bound so the post-merge
        // newest-`capacity` set matches a serial run's (see [`TraceSink`]).
        let mut child = match &self.trace {
            Some(sink) => MemRecorder::with_trace_capacity(sink.capacity()),
            None => MemRecorder::new(),
        };
        child.profiling = self.profiling;
        Box::new(child)
    }

    fn snapshot(&self) -> Box<dyn Recorder> {
        Box::new(self.clone())
    }

    fn absorb(&mut self, child: Box<dyn Recorder>) {
        let child = child
            .into_any()
            .downcast::<MemRecorder>()
            .expect("absorb requires a recorder forked from MemRecorder");
        for (name, v) in child.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in child.gauges {
            let g = self.gauges.entry(name).or_insert(0);
            *g = (*g).max(v);
        }
        for (name, devs) in child.dev_counters {
            let mine = self.dev_counters.entry(name).or_default();
            for (dev, v) in devs {
                *mine.entry(dev).or_insert(0) += v;
            }
        }
        for (name, devs) in child.dev_gauges {
            let mine = self.dev_gauges.entry(name).or_default();
            for (dev, v) in devs {
                let g = mine.entry(dev).or_insert(0);
                *g = (*g).max(v);
            }
        }
        for (name, samples) in child.histograms {
            self.histograms.entry(name).or_default().extend(samples);
        }
        for (name, v) in child.diag_counters {
            *self.diag_counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in child.diag_gauges {
            let g = self.diag_gauges.entry(name).or_insert(0);
            *g = (*g).max(v);
        }
        for (name, values) in child.diag_arrays {
            self.diag_arrays.insert(name, values);
        }
        for (key, (wall, count)) in child.profile {
            let e = self.profile.entry(key).or_insert((0, 0));
            e.0 += wall;
            e.1 += count;
        }
        if let Some(scaling) = child.scaling {
            self.scaling = Some(scaling);
        }
        self.spans.extend(child.spans);
        self.events.extend(child.events);
        if let (Some(mine), Some(theirs)) = (self.trace.as_mut(), child.trace) {
            mine.absorb(theirs);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The exportable snapshot of everything observed during a run.
///
/// Returned by the Emulation API's `pull_report()`. The canonical export
/// ([`RunReport::to_json`]) is bit-identical across repetitions and across
/// `workers` values for the same seed; [`RunReport::to_json_full`] appends
/// the execution-dependent `diagnostics` section on top.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Whether telemetry was enabled for this run. Disabled runs export an
    /// empty (but schema-complete) report.
    pub enabled: bool,
    /// Run metadata (seed, device/VM counts, convergence parameters), in
    /// insertion order. Must not contain execution-dependent values such
    /// as worker counts or wall-clock times.
    pub meta: Vec<(String, FieldValue)>,
    /// Completed spans in emission order.
    pub spans: Vec<SpanRecord>,
    /// Canonical counters and gauges, merged and key-sorted.
    pub counters: BTreeMap<String, u64>,
    /// Per-device canonical metrics, keyed by metric name then device id.
    pub per_device: BTreeMap<String, BTreeMap<u32, u64>>,
    /// Histogram summaries, key-sorted.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Typed events in emission order.
    pub events: Vec<EventRecord>,
    /// The recovery journal rendered as typed events, time-sorted.
    pub journal: Vec<EventRecord>,
    /// Execution-dependent metrics — excluded from the canonical export.
    pub diagnostics: BTreeMap<String, u64>,
    /// Array-valued execution-dependent metrics (e.g. one value per
    /// shard), merged into the `diagnostics` object of the full export.
    pub diagnostic_arrays: BTreeMap<String, Vec<u64>>,
    /// Wall-clock profile; `Some` when the run had profiling enabled.
    /// Exported only by [`RunReport::to_json_full`].
    pub profile: Option<Profile>,
    /// Parallel-executor scaling diagnosis; `Some` when profiling was
    /// enabled (a serial run reports [`ScalingDiagnosis::serial`]).
    /// Exported only by [`RunReport::to_json_full`].
    pub scaling: Option<ScalingDiagnosis>,
    /// Memory accounting; `Some` when profiling was enabled. Exported
    /// only by [`RunReport::to_json_full`].
    pub memory: Option<MemorySection>,
}

impl RunReport {
    /// The empty report a telemetry-disabled run returns.
    #[must_use]
    pub fn disabled() -> Self {
        RunReport::default()
    }

    /// Whether anything was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.per_device.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
            && self.journal.is_empty()
    }

    /// Appends one metadata entry (builder-style).
    #[must_use]
    pub fn with_meta(mut self, key: &str, value: FieldValue) -> Self {
        self.meta.push((key.to_string(), value));
        self
    }

    fn canonical_value(&self) -> Value {
        Value::Object(vec![
            ("enabled".to_string(), Value::Bool(self.enabled)),
            (
                "meta".to_string(),
                Value::Object(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
            (
                "spans".to_string(),
                Value::Array(self.spans.iter().map(Serialize::to_value).collect()),
            ),
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Uint(*v)))
                        .collect(),
                ),
            ),
            (
                "per_device".to_string(),
                Value::Object(
                    self.per_device
                        .iter()
                        .map(|(k, devs)| {
                            (
                                k.clone(),
                                Value::Object(
                                    devs.iter()
                                        .map(|(dev, v)| (dev.to_string(), Value::Uint(*v)))
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
            (
                "events".to_string(),
                Value::Array(self.events.iter().map(Serialize::to_value).collect()),
            ),
            (
                "journal".to_string(),
                Value::Array(self.journal.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }

    /// Canonical JSON export: bit-identical across reps and worker counts
    /// for the same seed. Ends with a newline (artifact-friendly).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.canonical_value())
            .expect("report serialization is infallible");
        s.push('\n');
        s
    }

    /// Full JSON export: the canonical sections plus the
    /// execution-dependent `diagnostics` section (scalar and array-valued
    /// keys interleaved in one sorted object) and — when profiling was on
    /// — the `profile`, `scaling_diagnosis`, and `memory` sections. Not
    /// stable across worker counts — for humans and perf investigations,
    /// never for diffing.
    #[must_use]
    pub fn to_json_full(&self) -> String {
        let Value::Object(mut obj) = self.canonical_value() else {
            unreachable!("canonical report is always an object");
        };
        let mut diag: BTreeMap<String, Value> = self
            .diagnostics
            .iter()
            .map(|(k, v)| (k.clone(), Value::Uint(*v)))
            .collect();
        for (k, values) in &self.diagnostic_arrays {
            diag.insert(
                k.clone(),
                Value::Array(values.iter().map(|&v| Value::Uint(v)).collect()),
            );
        }
        obj.push((
            "diagnostics".to_string(),
            Value::Object(diag.into_iter().collect()),
        ));
        if let Some(profile) = &self.profile {
            obj.push(("profile".to_string(), profile.to_value()));
        }
        if let Some(scaling) = &self.scaling {
            obj.push(("scaling_diagnosis".to_string(), scaling.to_value()));
        }
        if let Some(memory) = &self.memory {
            obj.push(("memory".to_string(), memory.to_value()));
        }
        let mut s = serde_json::to_string_pretty(&Value::Object(obj))
            .expect("report serialization is infallible");
        s.push('\n');
        s
    }

    /// Expands array-valued per-shard diagnostics back into the flat
    /// per-shard keys older tooling consumed: an array entry
    /// `sim.parallel.shard.idle_ns = [a, b]` yields
    /// `sim.parallel.shard0.idle_ns = a` and
    /// `sim.parallel.shard1.idle_ns = b`. The data is identical to what
    /// the pre-array reports carried; only the representation moved.
    #[must_use]
    pub fn legacy_shard_diagnostics(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (key, values) in &self.diagnostic_arrays {
            let Some(pos) = key.find(".shard.") else {
                continue;
            };
            let (prefix, field) = (&key[..pos], &key[pos + ".shard.".len()..]);
            for (shard, &v) in values.iter().enumerate() {
                out.insert(format!("{prefix}.shard{shard}.{field}"), v);
            }
        }
        out
    }

    /// Compact JSON of just the canonical counter section — what the
    /// benches splice into their `BENCH_*.json` rows.
    #[must_use]
    pub fn counters_json(&self) -> String {
        serde_json::to_string(&Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::Uint(*v)))
                .collect(),
        ))
        .expect("counter serialization is infallible")
    }

    /// Human-readable table summary for terminals.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.enabled {
            out.push_str("run report: telemetry disabled\n");
            return out;
        }
        out.push_str("run report\n");
        if !self.meta.is_empty() {
            let line = self
                .meta
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join("  ");
            let _ = writeln!(out, "  {line}");
        }
        if !self.spans.is_empty() {
            out.push_str("  spans:\n");
            for s in &self.spans {
                let scope = match s.device {
                    Some(dev) => format!("{}[{dev}]", s.name),
                    None => s.name.clone(),
                };
                let _ = writeln!(
                    out,
                    "    {scope:<24} {start} .. {end}  ({dur})",
                    start = s.start,
                    end = s.end,
                    dur = s.duration()
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "    {name:<40} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {name:<40} n={} p50={:.0} p99={:.0} max={:.0}",
                    h.count, h.p50, h.p99, h.max
                );
            }
        }
        let _ = writeln!(out, "  journal: {} event(s)", self.journal.len());
        if !self.diagnostics.is_empty() {
            out.push_str("  diagnostics (execution-dependent, non-canonical):\n");
            for (name, v) in &self.diagnostics {
                let _ = writeln!(out, "    {name:<40} {v}");
            }
            for (name, values) in &self.diagnostic_arrays {
                let _ = writeln!(out, "    {name:<40} {values:?}");
            }
        }
        if let Some(profile) = &self.profile {
            out.push_str("  profile (wall-clock, non-canonical):\n");
            for (name, e) in &profile.entries {
                if e.count > 0 {
                    let _ = writeln!(
                        out,
                        "    {name:<40} {:>10.3}ms self {:>10.3}ms  n={}",
                        e.wall_ns as f64 / 1e6,
                        e.self_ns as f64 / 1e6,
                        e.count
                    );
                }
            }
        }
        if let Some(scaling) = &self.scaling {
            let _ = writeln!(
                out,
                "  scaling: {} shard(s), {} grant(s), blame \
                 lookahead {:.3}ms / work {:.3}ms / merge {:.3}ms",
                scaling.shards,
                scaling.grants,
                scaling.blame.lookahead_starved_ns as f64 / 1e6,
                scaling.blame.work_bound_ns as f64 / 1e6,
                scaling.blame.merge_bound_ns as f64 / 1e6,
            );
        }
        if let Some(memory) = &self.memory {
            let d = &memory.devices;
            let _ = writeln!(
                out,
                "  memory: {} device(s), rib {:.1} KiB ({} entries), \
                 fib {:.1} KiB ({} prefixes), interner {:.1} KiB, \
                 queue residue {:.1} KiB ({} events)",
                d.devices,
                d.rib_bytes as f64 / 1024.0,
                d.rib_entries,
                d.fib_bytes as f64 / 1024.0,
                d.fib_prefixes,
                memory.interner.table_bytes as f64 / 1024.0,
                memory.event_queue.residue_bytes as f64 / 1024.0,
                memory.event_queue.pending_events,
            );
            if let Some(cow) = &memory.fork_cow {
                let _ = writeln!(
                    out,
                    "  fork_cow: shared {:.1} KiB / copied {:.1} KiB \
                     ({:.0}% shared)",
                    cow.shared_bytes as f64 / 1024.0,
                    cow.copied_bytes as f64 / 1024.0,
                    cow.sharing_ratio() * 100.0,
                );
            }
        }
        out
    }
}

impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        self.canonical_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.counter_add("x", 5);
        r.span("mockup", None, SimTime(0), SimTime(10));
        let forked = r.fork();
        assert!(!forked.enabled());
        r.absorb(forked);
        assert!(MemRecorder::from_recorder(&r).is_none());
    }

    #[test]
    fn mem_recorder_accumulates() {
        let mut r = MemRecorder::new();
        assert!(r.enabled());
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.gauge_max("g", 7);
        r.gauge_max("g", 4);
        r.device_counter_add("dc", 1, 10);
        r.device_counter_add("dc", 1, 1);
        r.device_gauge_max("dg", 2, 5);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(7));
        assert_eq!(r.device_counter("dc").unwrap()[&1], 11);
        assert_eq!(r.device_gauge("dg").unwrap()[&2], 5);
    }

    #[test]
    fn absorb_merges_order_independently() {
        // Two shard recorders merged in either order give the same report.
        let build = |order: [usize; 2]| {
            let mut root = MemRecorder::new();
            root.counter_add("frames", 1);
            let mut shards: Vec<MemRecorder> = Vec::new();
            for base in [10u64, 20u64] {
                let mut s = MemRecorder::new();
                s.counter_add("frames", base);
                s.gauge_max("high", base * 2);
                s.device_counter_add("churn", base as u32, base);
                s.histogram_record("lat", base as f64);
                shards.push(s);
            }
            let mut shards: Vec<Option<MemRecorder>> = shards.into_iter().map(Some).collect();
            for i in order {
                root.absorb(Box::new(shards[i].take().unwrap()));
            }
            root.report()
        };
        let a = build([0, 1]);
        let b = build([1, 0]);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.counters["frames"], 31);
        assert_eq!(a.counters["high"], 40);
    }

    #[test]
    fn histogram_summary_sorts() {
        let h = HistogramSummary::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.p50, 2.0);
        assert_eq!(h.mean, 2.0);
        assert!(HistogramSummary::from_samples(&[]).is_none());
        let fwd = HistogramSummary::from_samples(&[1.0, 2.0, 9.0]).unwrap();
        let rev = HistogramSummary::from_samples(&[9.0, 2.0, 1.0]).unwrap();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn report_json_has_schema_sections_even_when_empty() {
        let json = RunReport::disabled().to_json();
        for key in ["\"spans\"", "\"counters\"", "\"journal\"", "\"meta\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let parsed = serde_json::from_str(&json).expect("valid JSON");
        let Value::Object(obj) = parsed else {
            panic!("report must be an object")
        };
        assert!(obj.iter().any(|(k, _)| k == "events"));
    }

    #[test]
    fn diagnostics_excluded_from_canonical_json() {
        let mut r = MemRecorder::new();
        r.counter_add("visible", 1);
        r.diagnostic_add("sim.parallel.windows".to_string(), 9);
        let report = r.report();
        assert!(!report.to_json().contains("sim.parallel.windows"));
        assert!(report.to_json_full().contains("sim.parallel.windows"));
        assert!(report.to_json().contains("visible"));
    }

    #[test]
    fn profile_and_scaling_excluded_from_canonical_json() {
        let mut r = MemRecorder::new().with_profiling();
        assert!(r.profiling_enabled());
        r.counter_add("visible", 1);
        r.profile_add(profile::keys::MOCKUP, 1234);
        r.scaling_diagnosis(ScalingDiagnosis {
            shards: 2,
            grants: 5,
            ..ScalingDiagnosis::default()
        });
        let report = r.report();
        let canonical = report.to_json();
        assert!(!canonical.contains("profile"));
        assert!(!canonical.contains("scaling_diagnosis"));
        let full = report.to_json_full();
        assert!(full.contains("\"profile\""));
        assert!(full.contains("\"scaling_diagnosis\""));
        assert!(full.contains(profile::keys::MOCKUP));
        assert_eq!(
            report.profile.as_ref().unwrap().wall_ns("core.mockup"),
            1234
        );
        assert_eq!(report.scaling.as_ref().unwrap().shards, 2);
    }

    #[test]
    fn profiling_off_recorder_reports_no_profile_sections() {
        let mut r = MemRecorder::new();
        assert!(!r.profiling_enabled());
        r.counter_add("visible", 1);
        let report = r.report();
        assert!(report.profile.is_none() && report.scaling.is_none());
        assert!(!report.to_json_full().contains("scaling_diagnosis"));
    }

    #[test]
    fn serial_profiled_report_defaults_to_a_serial_diagnosis() {
        let r = MemRecorder::new().with_profiling();
        let report = r.report();
        let scaling = report.scaling.as_ref().expect("diagnosis present");
        assert_eq!(scaling.shards, 1);
        assert!(scaling.critical_path.is_empty());
        // Every registry key is present even though none was recorded.
        let profile = report.profile.as_ref().expect("profile present");
        assert_eq!(profile.entries.len(), profile::keys::ALL.len());
    }

    #[test]
    fn diagnostic_arrays_export_in_full_json_only() {
        let mut r = MemRecorder::new();
        r.diagnostic_array("sim.parallel.shard.idle_ns".to_string(), vec![5, 9]);
        r.diagnostic_add("sim.parallel.windows".to_string(), 3);
        let report = r.report();
        assert!(!report.to_json().contains("shard.idle_ns"));
        let full = report.to_json_full();
        assert!(full.contains("\"sim.parallel.shard.idle_ns\": [\n"));
        // Arrays and scalars share one sorted diagnostics object.
        let legacy = report.legacy_shard_diagnostics();
        assert_eq!(legacy["sim.parallel.shard0.idle_ns"], 5);
        assert_eq!(legacy["sim.parallel.shard1.idle_ns"], 9);
        assert_eq!(legacy.len(), 2);
    }

    #[test]
    fn shard_fork_inherits_profiling_and_absorb_merges_profile() {
        let mut root = MemRecorder::new().with_profiling();
        let mut shard = root.fork();
        assert!(shard.profiling_enabled());
        shard.profile_add(profile::keys::PARALLEL_COMPUTE, 40);
        root.profile_add(profile::keys::PARALLEL_COMPUTE, 2);
        root.absorb(shard);
        let report = root.report();
        let p = report.profile.as_ref().unwrap();
        assert_eq!(p.entries["sim.parallel.compute"].wall_ns, 42);
        assert_eq!(p.entries["sim.parallel.compute"].count, 2);
    }

    #[test]
    fn events_serialize_typed_fields() {
        let mut r = MemRecorder::new();
        r.event(
            SimTime(5),
            "fault_injected",
            vec![
                ("kind", FieldValue::Str("VmCrash".to_string())),
                ("vm", FieldValue::U64(3)),
                ("latency", FieldValue::Dur(SimDuration::from_secs(2))),
            ],
        );
        let report = r.report();
        assert_eq!(report.events.len(), 1);
        let ev = &report.events[0];
        assert_eq!(ev.field("vm"), Some(&FieldValue::U64(3)));
        let json = report.to_json();
        assert!(json.contains("\"at_ns\": 5"));
        assert!(json.contains("\"latency\": 2000000000"));
    }

    fn rec(t: u64, key: u64, name: &'static str) -> TraceRecord {
        TraceRecord::new(
            SimTime(t),
            EventId { time_ns: t, key },
            None,
            name,
            Some(1),
            vec![("n", FieldValue::U64(key))],
        )
    }

    #[test]
    fn trace_sink_assigns_sub_ordinals_and_bounds_memory() {
        let mut sink = TraceSink::new(3);
        sink.push(rec(10, 1, "a"));
        sink.push(rec(10, 1, "b")); // same event → sub 1
        sink.push(rec(20, 2, "c"));
        sink.push(rec(30, 3, "d")); // evicts the oldest ("a")
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.emitted(), 4);
        assert_eq!(sink.dropped(), 1);
        let records = sink.records();
        assert_eq!(
            records.iter().map(|r| r.name).collect::<Vec<_>>(),
            vec!["b", "c", "d"]
        );
        assert_eq!(records[0].sub, 1);
        assert_eq!(records[1].sub, 0);
    }

    #[test]
    fn trace_sink_absorb_matches_serial_retention() {
        // Serial: one sink sees everything in rank order.
        let mut serial = TraceSink::new(4);
        for (t, key) in [(10u64, 1u64), (20, 2), (30, 3), (40, 4), (50, 5), (60, 6)] {
            serial.push(rec(t, key, "x"));
        }
        // Sharded: the same records split across two sinks, merged back.
        let mut a = TraceSink::new(4);
        let mut b = TraceSink::new(4);
        for (t, key) in [(10u64, 1u64), (30, 3), (50, 5)] {
            a.push(rec(t, key, "x"));
        }
        for (t, key) in [(20u64, 2u64), (40, 4), (60, 6)] {
            b.push(rec(t, key, "x"));
        }
        let mut merged = TraceSink::new(4);
        merged.absorb(a);
        merged.absorb(b);
        assert_eq!(merged.to_jsonl(), serial.to_jsonl());
        assert_eq!(merged.dropped(), serial.dropped());
    }

    #[test]
    fn trace_exports_are_valid_json() {
        let mut sink = TraceSink::new(16);
        sink.push(TraceRecord::new(
            SimTime(5),
            EventId { time_ns: 5, key: 9 },
            Some(EventId { time_ns: 1, key: 3 }),
            "fib_install",
            Some(7),
            vec![("prefix", FieldValue::Str("10.0.0.0/24".to_string()))],
        ));
        let jsonl = sink.to_jsonl();
        for line in jsonl.lines() {
            let _: Value = serde_json::from_str(line).expect("each JSONL line parses");
        }
        assert!(jsonl.contains("\"cause\""));
        assert!(!jsonl.contains("\"sub\""), "sub ordinal must not export");
        let chrome = sink.to_chrome_json();
        let parsed = serde_json::from_str(&chrome).expect("chrome trace parses");
        let Value::Object(obj) = parsed else {
            panic!("chrome trace must be an object")
        };
        assert!(obj.iter().any(|(k, _)| k == "traceEvents"));
    }

    #[test]
    fn mem_recorder_trace_plumbs_through_fork_and_absorb() {
        let mut root = MemRecorder::with_trace_capacity(8);
        assert!(root.trace_enabled());
        assert!(!MemRecorder::new().trace_enabled());
        let mut shard = root.fork();
        assert!(shard.trace_enabled());
        shard.trace(rec(10, 1, "shard"));
        root.trace(rec(20, 2, "root"));
        root.absorb(shard);
        let sink = root.trace_sink().expect("sink present");
        assert_eq!(sink.len(), 2);
        assert_eq!(
            sink.records().iter().map(|r| r.name).collect::<Vec<_>>(),
            vec!["shard", "root"]
        );
        let report = root.report();
        assert_eq!(report.counters["telemetry.trace_emitted"], 2);
        assert_eq!(report.counters["telemetry.trace_dropped"], 0);
    }

    #[test]
    fn summary_mentions_core_sections() {
        let mut r = MemRecorder::new();
        r.counter_add("routing.bgp_updates_sent", 12);
        r.span("mockup", None, SimTime(0), SimTime(1_000_000_000));
        let report = r.report().with_meta("seed", FieldValue::U64(42));
        let s = report.summary();
        assert!(s.contains("seed=42"));
        assert!(s.contains("routing.bgp_updates_sent"));
        assert!(s.contains("mockup"));
        assert!(RunReport::disabled().summary().contains("disabled"));
    }

    #[test]
    fn summary_surfaces_memory_and_fork_cow() {
        let mut r = MemRecorder::new();
        r.counter_add("routing.bgp_updates_sent", 12);
        let mut report = r.report();
        report.memory = Some(MemorySection {
            devices: DeviceMemTotals {
                devices: 3,
                rib_entries: 20,
                rib_bytes: 2048,
                fib_prefixes: 10,
                fib_route_entries: 12,
                fib_bytes: 1024,
            },
            top_devices: Vec::new(),
            interner: InternerMem {
                entries: 4,
                table_bytes: 512,
                hits: 9,
                hit_bytes_saved: 99,
            },
            event_queue: QueueMem {
                pending_events: 7,
                residue_bytes: 3584,
            },
            fork_cow: Some(CowStats {
                shared_bytes: 3072,
                copied_bytes: 1024,
            }),
        });
        // Snapshot of the two lines the memory section renders to: the
        // format is part of the operator-facing contract.
        let s = report.summary();
        assert!(
            s.contains(
                "  memory: 3 device(s), rib 2.0 KiB (20 entries), \
                 fib 1.0 KiB (10 prefixes), interner 0.5 KiB, \
                 queue residue 3.5 KiB (7 events)"
            ),
            "memory line changed:\n{s}"
        );
        assert!(
            s.contains("  fork_cow: shared 3.0 KiB / copied 1.0 KiB (75% shared)"),
            "fork_cow line changed:\n{s}"
        );
        // A root emulation (no fork) omits only the fork_cow line.
        report.memory.as_mut().unwrap().fork_cow = None;
        let s = report.summary();
        assert!(s.contains("  memory: 3 device(s)"));
        assert!(!s.contains("fork_cow"));
    }
}
