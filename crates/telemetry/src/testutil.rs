//! Shared test comparators for deterministic exports.
//!
//! Determinism suites across the workspace (profile structure, health
//! and incident schemas) all need the same primitive: compare the *key
//! structure* of two JSON exports while letting values differ. This
//! module is compiled into the library (not `#[cfg(test)]`) so
//! downstream crates' integration tests can use it too.

use serde::Value;

/// Renders the key *structure* of a JSON value: object keys recursively,
/// arrays collapsed to `[]`, scalars to `_`. Two exports with the same
/// structure string have identical key sets at every nesting level even
/// when their values (and array lengths) differ — the comparison the
/// profile and scaling sections guarantee across worker counts.
#[must_use]
pub fn json_key_structure(v: &Value) -> String {
    match v {
        Value::Object(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{k}:{}", json_key_structure(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        Value::Array(_) => "[]".to_string(),
        _ => "_".to_string(),
    }
}

/// Like [`json_key_structure`] but descends into arrays element-wise, so
/// per-record schemas (e.g. each line of an incident JSONL export) are
/// compared too, not collapsed to `[]`.
#[must_use]
pub fn json_deep_structure(v: &Value) -> String {
    match v {
        Value::Object(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{k}:{}", json_deep_structure(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(json_deep_structure).collect();
            format!("[{}]", inner.join(","))
        }
        _ => "_".to_string(),
    }
}

/// Panics with a readable diff when two exports' key structures differ.
///
/// # Panics
///
/// Panics when the structures differ; `what` names the export in the
/// message.
pub fn assert_same_key_structure(what: &str, a: &Value, b: &Value) {
    let sa = json_key_structure(a);
    let sb = json_key_structure(b);
    assert_eq!(sa, sb, "{what}: key structure diverged");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_ignores_values_but_not_keys() {
        let a = Value::Object(vec![
            ("x".to_string(), Value::Uint(1)),
            ("y".to_string(), Value::Array(vec![Value::Uint(2)])),
        ]);
        let b = Value::Object(vec![
            ("x".to_string(), Value::Uint(9)),
            ("y".to_string(), Value::Array(vec![])),
        ]);
        assert_eq!(json_key_structure(&a), json_key_structure(&b));
        assert_same_key_structure("ab", &a, &b);
        let c = Value::Object(vec![("x".to_string(), Value::Uint(1))]);
        assert_ne!(json_key_structure(&a), json_key_structure(&c));
    }

    #[test]
    fn deep_structure_descends_into_arrays() {
        let a = Value::Array(vec![Value::Object(vec![("k".to_string(), Value::Uint(1))])]);
        let b = Value::Array(vec![Value::Object(vec![("k".to_string(), Value::Uint(7))])]);
        let c = Value::Array(vec![Value::Object(vec![(
            "other".to_string(),
            Value::Uint(1),
        )])]);
        assert_eq!(json_deep_structure(&a), json_deep_structure(&b));
        assert_ne!(json_deep_structure(&a), json_deep_structure(&c));
        // The shallow comparator cannot tell these apart.
        assert_eq!(json_key_structure(&a), json_key_structure(&c));
    }
}
