//! Property tests for the virtual-network substrate.

use crystalnet_sim::SimTime;
use crystalnet_vnet::{
    Cloud,
    CloudParams,
    ContainerEngine,
    ContainerKind,
    LinkSpan,
    VirtualLink,
    VmId,
    VmSku,
    VniAllocator, //
};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// VNIs are never reused on any VM while allocated, for arbitrary
    /// allocate/release interleavings.
    #[test]
    fn vni_allocator_never_collides(
        ops in prop::collection::vec((0u32..6, 0u32..6, any::<bool>()), 1..200),
    ) {
        let mut alloc = VniAllocator::new();
        let mut live: Vec<(VmId, VmId, u32)> = Vec::new();
        for (a, b, release) in ops {
            let (a, b) = (VmId(a), VmId(b));
            if release && !live.is_empty() {
                let (a, b, vni) = live.swap_remove(0);
                alloc.release(a, b, vni);
            } else {
                let vni = alloc.allocate(a, b);
                live.push((a, b, vni));
            }
            // Invariant: no VM sees the same live VNI twice.
            let mut per_vm: std::collections::HashMap<VmId, HashSet<u32>> = Default::default();
            for &(a, b, vni) in &live {
                prop_assert!(per_vm.entry(a).or_default().insert(vni));
                if b != a {
                    prop_assert!(per_vm.entry(b).or_default().insert(vni));
                }
            }
        }
    }

    /// Link provisioning classifies spans correctly and only tunnels
    /// inter-VM links.
    #[test]
    fn link_spans_are_classified(pairs in prop::collection::vec((0u32..4, 0u32..4), 1..64)) {
        let mut vnis = VniAllocator::new();
        for (i, (a, b)) in pairs.into_iter().enumerate() {
            let l = VirtualLink::provision(
                crystalnet_net::LinkId(i as u32),
                VmId(a),
                VmId(b),
                false,
                &mut vnis,
            );
            if a == b {
                prop_assert_eq!(l.span, LinkSpan::IntraVm);
                prop_assert_eq!(l.vni, None);
            } else {
                prop_assert_eq!(l.span, LinkSpan::InterVm);
                prop_assert!(l.vni.is_some());
            }
        }
    }

    /// Cloud cost accounting is linear in fleet size and time.
    #[test]
    fn cloud_cost_is_linear(vms in 1u32..50, minutes in 1u64..300) {
        let mut cloud = Cloud::new(CloudParams::default(), 1);
        for _ in 0..vms {
            let (id, _) = cloud.provision(VmSku::standard_4c8g(), SimTime::ZERO);
            cloud.mark_running(id, SimTime::ZERO);
        }
        let until = SimTime::ZERO + crystalnet_sim::SimDuration::from_mins(minutes);
        let cost = cloud.cost_usd(until);
        let expect = f64::from(vms) * 0.20 * (minutes as f64 / 60.0);
        prop_assert!((cost - expect).abs() < 1e-6, "cost {cost} != {expect}");
    }

    /// Container RAM accounting equals the sum of non-stopped sandboxes.
    #[test]
    fn engine_ram_accounting(kinds in prop::collection::vec(0u8..3, 1..40), stop_mask in any::<u64>()) {
        let mut eng = ContainerEngine::new();
        let mut expected = 0u32;
        let mut ids = Vec::new();
        for (i, k) in kinds.iter().enumerate() {
            let phynet = eng.create(ContainerKind::PhyNet, None);
            eng.start(phynet);
            let kind = match k {
                0 => ContainerKind::DeviceContainer(crystalnet_net::Vendor::CtnrA),
                1 => ContainerKind::DeviceVm(crystalnet_net::Vendor::VmA),
                _ => ContainerKind::Speaker,
            };
            let c = eng.create(kind, Some(phynet));
            eng.start(c);
            let stopped = stop_mask & (1 << (i % 64)) != 0;
            if stopped {
                eng.stop(c);
            } else {
                expected += kind.ram_mb();
            }
            expected += ContainerKind::PhyNet.ram_mb();
            ids.push(c);
        }
        prop_assert_eq!(eng.ram_committed_mb(), expected);
    }
}
