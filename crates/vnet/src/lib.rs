//! Virtual network substrate for the CrystalNet reproduction: the
//! simulated public cloud, container sandboxes with the PhyNet layer,
//! veth/bridge/VXLAN virtual links, NAT traversal, and the management
//! overlay.
//!
//! This crate is the "physical mockup" half of the paper (§4): everything
//! below the device firmware. It deliberately knows nothing about routing
//! — device sandboxes are opaque payloads — so the same substrate carries
//! BGP routers, OSPF routers, speakers, or (in the paper) real hardware
//! behind a fanout switch.

pub mod cloud;
pub mod container;
pub mod links;
pub mod mgmt;
pub mod nat;

pub use cloud::{Cloud, CloudParams, Vm, VmId, VmSku, VmState};
pub use container::{Container, ContainerEngine, ContainerId, ContainerKind, ContainerState};
pub use links::{BridgeImpl, LinkSpan, VirtualLink, VniAllocator};
pub use mgmt::{ManagementOverlay, MgmtError, MgmtNode};
pub use nat::{punch, NatEndpoint, NatKind, PunchOutcome};
