//! NAT traversal for cross-cloud and on-premise links (§4.2).
//!
//! VXLAN's UDP outer header is what lets CrystalNet's virtual links cross
//! "any IP network, including the wide area Internet ... even NATs and
//! load balancers, since most of them support UDP", using "standard UDP
//! hole punching techniques". This module models the punching handshake:
//! endpoint NAT types, a rendezvous exchange of observed addresses, and
//! the resulting (or failing) bidirectional UDP path.

use crystalnet_net::Ipv4Addr;
use serde::{Deserialize, Serialize};

/// NAT behaviour classes relevant to UDP hole punching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NatKind {
    /// Public address, no NAT.
    None,
    /// Endpoint-independent mapping (full cone / restricted): punchable.
    EndpointIndependent,
    /// Endpoint-dependent mapping (symmetric): not punchable against
    /// another symmetric NAT.
    Symmetric,
}

/// One endpoint of a would-be tunnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NatEndpoint {
    /// Private (inside) address.
    pub inside: Ipv4Addr,
    /// Public (observed) address after NAT.
    pub observed: Ipv4Addr,
    /// NAT class in front of it.
    pub nat: NatKind,
}

/// The outcome of a hole-punching attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PunchOutcome {
    /// Direct path established between the observed addresses.
    Direct(Ipv4Addr, Ipv4Addr),
    /// Both sides behind symmetric NAT: requires a relay, which
    /// CrystalNet provisions as a cloud VM.
    NeedsRelay,
}

/// Attempts UDP hole punching between two endpoints after a rendezvous
/// exchange of observed addresses.
#[must_use]
pub fn punch(a: NatEndpoint, b: NatEndpoint) -> PunchOutcome {
    match (a.nat, b.nat) {
        (NatKind::Symmetric, NatKind::Symmetric) => PunchOutcome::NeedsRelay,
        _ => PunchOutcome::Direct(a.observed, b.observed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(n: u32, nat: NatKind) -> NatEndpoint {
        NatEndpoint {
            inside: Ipv4Addr(0x0a00_0000 + n),
            observed: Ipv4Addr(0xcb00_0000 + n),
            nat,
        }
    }

    #[test]
    fn cone_nats_punch_directly() {
        for (na, nb) in [
            (NatKind::None, NatKind::None),
            (NatKind::None, NatKind::Symmetric),
            (NatKind::EndpointIndependent, NatKind::EndpointIndependent),
            (NatKind::EndpointIndependent, NatKind::Symmetric),
        ] {
            let a = ep(1, na);
            let b = ep(2, nb);
            assert_eq!(punch(a, b), PunchOutcome::Direct(a.observed, b.observed));
        }
    }

    #[test]
    fn symmetric_pairs_need_a_relay() {
        let a = ep(1, NatKind::Symmetric);
        let b = ep(2, NatKind::Symmetric);
        assert_eq!(punch(a, b), PunchOutcome::NeedsRelay);
    }
}
