//! The management-plane overlay (§4.2, Figure 6).
//!
//! Operators' tools reach devices by IP over an out-of-band management
//! network. CrystalNet builds it as a *tree*, not a full L2 mesh — "this
//! would cause the notorious L2 storm in such an overlay": each VM runs a
//! management bridge VXLAN-tunneled to a Linux jumpbox, every local
//! device's `ma` interface hangs off the VM bridge, other jumpboxes join
//! by VPN, and the jumpbox serves DNS for device management names.

use crate::cloud::VmId;
use crystalnet_net::Ipv4Addr;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A node in the management overlay graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MgmtNode {
    /// The central Linux jumpbox.
    LinuxJumpbox,
    /// An auxiliary jumpbox (e.g. Windows) attached via VPN.
    AuxJumpbox(String),
    /// The management bridge on one VM.
    VmBridge(VmId),
    /// One device's management interface.
    Device(String),
}

/// The management overlay: topology + DNS.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ManagementOverlay {
    /// Undirected edges (kept as ordered pairs).
    edges: Vec<(MgmtNode, MgmtNode)>,
    /// DNS: device name → management IP.
    dns: HashMap<String, Ipv4Addr>,
    /// Reverse: management IP → device name.
    rdns: HashMap<Ipv4Addr, String>,
}

/// Errors while building the overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MgmtError {
    /// The device name is already registered.
    DuplicateDevice(String),
    /// The management IP is already assigned.
    DuplicateAddress(Ipv4Addr),
}

impl std::fmt::Display for MgmtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MgmtError::DuplicateDevice(n) => write!(f, "duplicate device `{n}`"),
            MgmtError::DuplicateAddress(a) => write!(f, "duplicate management IP {a}"),
        }
    }
}

impl std::error::Error for MgmtError {}

impl ManagementOverlay {
    /// An overlay containing just the Linux jumpbox.
    #[must_use]
    pub fn new() -> Self {
        ManagementOverlay::default()
    }

    /// Attaches a VM's management bridge to the jumpbox (one VXLAN
    /// tunnel).
    pub fn attach_vm(&mut self, vm: VmId) {
        self.edges
            .push((MgmtNode::LinuxJumpbox, MgmtNode::VmBridge(vm)));
    }

    /// Attaches an auxiliary jumpbox by VPN.
    pub fn attach_aux_jumpbox(&mut self, name: &str) {
        self.edges.push((
            MgmtNode::LinuxJumpbox,
            MgmtNode::AuxJumpbox(name.to_string()),
        ));
    }

    /// Registers a device on a VM's bridge with its management address.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and duplicate addresses.
    pub fn register_device(
        &mut self,
        vm: VmId,
        name: &str,
        addr: Ipv4Addr,
    ) -> Result<(), MgmtError> {
        if self.dns.contains_key(name) {
            return Err(MgmtError::DuplicateDevice(name.to_string()));
        }
        if self.rdns.contains_key(&addr) {
            return Err(MgmtError::DuplicateAddress(addr));
        }
        self.edges
            .push((MgmtNode::VmBridge(vm), MgmtNode::Device(name.to_string())));
        self.dns.insert(name.to_string(), addr);
        self.rdns.insert(addr, name.to_string());
        Ok(())
    }

    /// DNS lookup: device name → management IP.
    #[must_use]
    pub fn resolve(&self, name: &str) -> Option<Ipv4Addr> {
        self.dns.get(name).copied()
    }

    /// Reverse lookup: management IP → device name.
    #[must_use]
    pub fn reverse(&self, addr: Ipv4Addr) -> Option<&str> {
        self.rdns.get(&addr).map(String::as_str)
    }

    /// Number of registered devices.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.dns.len()
    }

    /// Whether the overlay is a tree (connected, acyclic) — the property
    /// that rules out L2 storms. An empty overlay counts as a tree.
    #[must_use]
    pub fn is_tree(&self) -> bool {
        if self.edges.is_empty() {
            return true;
        }
        // Union-find over nodes; a cycle appears iff an edge joins two
        // already-connected nodes.
        let mut ids: HashMap<&MgmtNode, usize> = HashMap::new();
        for (a, b) in &self.edges {
            let n = ids.len();
            ids.entry(a).or_insert(n);
            let n = ids.len();
            ids.entry(b).or_insert(n);
        }
        let mut parent: Vec<usize> = (0..ids.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (a, b) in &self.edges {
            let (ra, rb) = (find(&mut parent, ids[a]), find(&mut parent, ids[b]));
            if ra == rb {
                return false; // cycle
            }
            parent[ra] = rb;
        }
        // Acyclic with edges = nodes - 1 components merging: connected iff
        // one root.
        let roots: std::collections::HashSet<usize> =
            (0..parent.len()).map(|i| find(&mut parent, i)).collect();
        roots.len() == 1
    }

    /// The number of hops a management packet takes from the Linux
    /// jumpbox to a device (jumpbox → VM bridge → device = 2).
    #[must_use]
    pub fn hops_to(&self, name: &str) -> Option<usize> {
        // BFS from the jumpbox.
        let target = MgmtNode::Device(name.to_string());
        let mut adj: HashMap<&MgmtNode, Vec<&MgmtNode>> = HashMap::new();
        for (a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        let start = MgmtNode::LinuxJumpbox;
        let mut dist: HashMap<&MgmtNode, usize> = HashMap::new();
        dist.insert(&start, 0);
        let mut queue = std::collections::VecDeque::from([&start]);
        while let Some(node) = queue.pop_front() {
            let d = dist[node];
            if *node == target {
                return Some(d);
            }
            for next in adj.get(node).into_iter().flatten() {
                if !dist.contains_key(*next) {
                    dist.insert(next, d + 1);
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(n: u32) -> Ipv4Addr {
        Ipv4Addr(0xc0a8_0000 + n)
    }

    #[test]
    fn overlay_is_a_tree_and_resolves_names() {
        let mut m = ManagementOverlay::new();
        for vm in 0..5 {
            m.attach_vm(VmId(vm));
            for d in 0..10 {
                m.register_device(VmId(vm), &format!("dev-{vm}-{d}"), ip(vm * 100 + d))
                    .unwrap();
            }
        }
        m.attach_aux_jumpbox("windows-jb");
        assert!(m.is_tree(), "management overlay must be loop-free");
        assert_eq!(m.device_count(), 50);
        assert_eq!(m.resolve("dev-3-7"), Some(ip(307)));
        assert_eq!(m.reverse(ip(307)), Some("dev-3-7"));
        assert_eq!(m.resolve("nope"), None);
        // Jumpbox -> VM bridge -> device.
        assert_eq!(m.hops_to("dev-3-7"), Some(2));
    }

    #[test]
    fn duplicate_registrations_rejected() {
        let mut m = ManagementOverlay::new();
        m.attach_vm(VmId(0));
        m.register_device(VmId(0), "a", ip(1)).unwrap();
        assert_eq!(
            m.register_device(VmId(0), "a", ip(2)),
            Err(MgmtError::DuplicateDevice("a".into()))
        );
        assert_eq!(
            m.register_device(VmId(0), "b", ip(1)),
            Err(MgmtError::DuplicateAddress(ip(1)))
        );
    }

    #[test]
    fn full_mesh_would_not_be_a_tree() {
        // The design §4.2 explicitly avoids: bridges meshed together.
        let mut m = ManagementOverlay::new();
        m.attach_vm(VmId(0));
        m.attach_vm(VmId(1));
        // Manually mesh the two VM bridges (what the paper avoids).
        m.edges
            .push((MgmtNode::VmBridge(VmId(0)), MgmtNode::VmBridge(VmId(1))));
        assert!(!m.is_tree(), "a meshed overlay has an L2 loop");
    }

    #[test]
    fn empty_overlay_is_trivially_a_tree() {
        assert!(ManagementOverlay::new().is_tree());
    }
}
