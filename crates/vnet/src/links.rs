//! Virtual data-plane links: veth pairs, bridges and VXLAN tunnels (§4.2).
//!
//! Each emulated interface is one side of a veth pair whose other side
//! plugs into a per-link bridge; when the remote end lives on another VM
//! the bridge also holds a VXLAN tunnel interface. Every virtual link gets
//! a unique VXLAN ID *per VM* for isolation. The same construction crosses
//! NATs and the public Internet (UDP outer header + hole punching), which
//! is what lets one emulation span clouds and on-premise hardware.

use crate::cloud::VmId;
use bytes::Bytes;
use crystalnet_dataplane::{EthernetFrame, Ipv4Packet, UdpDatagram, VxlanPacket, VXLAN_PORT};
use crystalnet_net::{Ipv4Addr, LinkId};
use crystalnet_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Which bridge implementation wires the link (§6.2's design choice:
/// "Linux bridge or OVS?" — CrystalNet prefers the former because it only
/// needs dumb forwarding and sets up much faster at O(1000) tunnels/VM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BridgeImpl {
    /// Plain Linux bridge, iptables and STP disabled.
    LinuxBridge,
    /// Open vSwitch.
    Ovs,
}

impl BridgeImpl {
    /// Host-CPU time to set up one veth+bridge(+tunnel) assembly.
    #[must_use]
    pub fn setup_cpu(self) -> SimDuration {
        match self {
            BridgeImpl::LinuxBridge => SimDuration::from_millis(12),
            BridgeImpl::Ovs => SimDuration::from_millis(55),
        }
    }

    /// Host-CPU time to tear one down.
    #[must_use]
    pub fn teardown_cpu(self) -> SimDuration {
        match self {
            BridgeImpl::LinuxBridge => SimDuration::from_millis(4),
            BridgeImpl::Ovs => SimDuration::from_millis(18),
        }
    }
}

/// Where the two ends of a virtual link live relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkSpan {
    /// Both device sandboxes on the same VM: veth + local bridge only.
    IntraVm,
    /// Different VMs in one cloud: VXLAN over the provider network.
    InterVm,
    /// Different clouds / on-premise: VXLAN over the Internet, through
    /// NAT (UDP hole punching, §4.2).
    CrossCloud,
}

impl LinkSpan {
    /// One-way frame latency over this span.
    #[must_use]
    pub fn latency(self) -> SimDuration {
        match self {
            LinkSpan::IntraVm => SimDuration::from_micros(30),
            LinkSpan::InterVm => SimDuration::from_micros(250),
            LinkSpan::CrossCloud => SimDuration::from_millis(30),
        }
    }

    /// Host-CPU cost of pushing one frame through the link's stack
    /// (bridge copy; plus VXLAN encap/decap when leaving the VM).
    #[must_use]
    pub fn frame_cpu(self) -> SimDuration {
        match self {
            LinkSpan::IntraVm => SimDuration::from_micros(4),
            LinkSpan::InterVm => SimDuration::from_micros(9),
            LinkSpan::CrossCloud => SimDuration::from_micros(9),
        }
    }
}

/// Allocates per-VM-unique VXLAN IDs ("Orchestrator ensures that there is
/// no ID collision on the same VM", §4.2).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct VniAllocator {
    next: u32,
    used_per_vm: HashMap<VmId, HashSet<u32>>,
}

impl VniAllocator {
    /// An empty allocator.
    #[must_use]
    pub fn new() -> Self {
        VniAllocator::default()
    }

    /// Allocates a VNI valid on both `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the 24-bit VNI space is exhausted.
    pub fn allocate(&mut self, a: VmId, b: VmId) -> u32 {
        loop {
            let vni = self.next;
            self.next += 1;
            assert!(vni < (1 << 24), "VXLAN ID space exhausted");
            let free_a = !self.used_per_vm.get(&a).is_some_and(|s| s.contains(&vni));
            let free_b = !self.used_per_vm.get(&b).is_some_and(|s| s.contains(&vni));
            if free_a && free_b {
                self.used_per_vm.entry(a).or_default().insert(vni);
                self.used_per_vm.entry(b).or_default().insert(vni);
                return vni;
            }
        }
    }

    /// Releases a VNI on both VMs.
    pub fn release(&mut self, a: VmId, b: VmId, vni: u32) {
        if let Some(s) = self.used_per_vm.get_mut(&a) {
            s.remove(&vni);
        }
        if let Some(s) = self.used_per_vm.get_mut(&b) {
            s.remove(&vni);
        }
    }

    /// VNIs in use on one VM.
    #[must_use]
    pub fn in_use(&self, vm: VmId) -> usize {
        self.used_per_vm.get(&vm).map_or(0, HashSet::len)
    }
}

/// A provisioned virtual link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirtualLink {
    /// The production link this emulates.
    pub link: LinkId,
    /// Host VM of end A's sandbox.
    pub vm_a: VmId,
    /// Host VM of end B's sandbox.
    pub vm_b: VmId,
    /// Span class.
    pub span: LinkSpan,
    /// VXLAN ID (only for inter-VM/cross-cloud spans).
    pub vni: Option<u32>,
    /// Administratively up.
    pub up: bool,
}

impl VirtualLink {
    /// Builds a link between sandboxes on `vm_a`/`vm_b`, allocating a
    /// VNI when the ends live on different VMs.
    pub fn provision(
        link: LinkId,
        vm_a: VmId,
        vm_b: VmId,
        cross_cloud: bool,
        vnis: &mut VniAllocator,
    ) -> VirtualLink {
        let span = if vm_a == vm_b {
            LinkSpan::IntraVm
        } else if cross_cloud {
            LinkSpan::CrossCloud
        } else {
            LinkSpan::InterVm
        };
        let vni = (span != LinkSpan::IntraVm).then(|| vnis.allocate(vm_a, vm_b));
        VirtualLink {
            link,
            vm_a,
            vm_b,
            span,
            vni,
            up: true,
        }
    }

    /// Encapsulates a device frame for the underlay (inter-VM spans).
    ///
    /// Returns the raw underlay IPv4 packet bytes, exactly what would hit
    /// the provider network.
    ///
    /// # Panics
    ///
    /// Panics on intra-VM links (nothing to encapsulate).
    #[must_use]
    pub fn encapsulate(
        &self,
        frame: &EthernetFrame,
        src_vtep: Ipv4Addr,
        dst_vtep: Ipv4Addr,
    ) -> Bytes {
        let vni = self.vni.expect("intra-VM links are not encapsulated");
        let vxlan = VxlanPacket {
            vni,
            inner: frame.encode(),
        };
        let udp = UdpDatagram {
            src_port: 49152 + (vni & 0x3fff) as u16,
            dst_port: VXLAN_PORT,
            payload: vxlan.encode(),
        };
        Ipv4Packet {
            src: src_vtep,
            dst: dst_vtep,
            protocol: crystalnet_dataplane::ipproto::UDP,
            ttl: 64,
            identification: 0,
            payload: udp.encode(),
        }
        .encode()
    }

    /// Decapsulates an underlay packet back to the device frame,
    /// verifying the VNI matches this link.
    ///
    /// Returns `None` for foreign VNIs (isolation) or malformed packets.
    #[must_use]
    pub fn decapsulate(&self, wire: Bytes) -> Option<EthernetFrame> {
        let ip = Ipv4Packet::decode(wire).ok()?;
        let udp = UdpDatagram::decode(ip.payload).ok()?;
        if udp.dst_port != VXLAN_PORT {
            return None;
        }
        let vxlan = VxlanPacket::decode(udp.payload).ok()?;
        if Some(vxlan.vni) != self.vni {
            return None;
        }
        EthernetFrame::decode(vxlan.inner).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystalnet_net::MacAddr;

    #[test]
    fn vni_uniqueness_per_vm() {
        let mut a = VniAllocator::new();
        let mut seen = HashSet::new();
        for i in 0..100 {
            let vni = a.allocate(VmId(0), VmId(1 + i % 3));
            assert!(seen.insert(vni), "vni {vni} reused on vm0");
        }
        assert_eq!(a.in_use(VmId(0)), 100);
        let vni = *seen.iter().next().unwrap();
        a.release(VmId(0), VmId(1), vni);
        assert_eq!(a.in_use(VmId(0)), 99);
    }

    #[test]
    fn intra_vm_links_need_no_vni() {
        let mut vnis = VniAllocator::new();
        let l = VirtualLink::provision(LinkId(0), VmId(3), VmId(3), false, &mut vnis);
        assert_eq!(l.span, LinkSpan::IntraVm);
        assert_eq!(l.vni, None);
    }

    #[test]
    fn spans_latency_ordering() {
        assert!(LinkSpan::IntraVm.latency() < LinkSpan::InterVm.latency());
        assert!(LinkSpan::InterVm.latency() < LinkSpan::CrossCloud.latency());
    }

    #[test]
    fn linux_bridge_is_cheaper_than_ovs() {
        assert!(BridgeImpl::LinuxBridge.setup_cpu() < BridgeImpl::Ovs.setup_cpu());
        assert!(BridgeImpl::LinuxBridge.teardown_cpu() < BridgeImpl::Ovs.teardown_cpu());
    }

    #[test]
    fn encap_decap_round_trip() {
        let mut vnis = VniAllocator::new();
        let l = VirtualLink::provision(LinkId(7), VmId(0), VmId(1), false, &mut vnis);
        let frame = EthernetFrame {
            dst: MacAddr::from_id(1),
            src: MacAddr::from_id(2),
            ethertype: crystalnet_dataplane::ethertype::IPV4,
            payload: Bytes::from_static(b"bgp update bytes"),
        };
        let wire = l.encapsulate(
            &frame,
            Ipv4Addr::new(10, 0, 0, 4),
            Ipv4Addr::new(10, 0, 0, 5),
        );
        let back = l.decapsulate(wire).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn decap_rejects_foreign_vni() {
        let mut vnis = VniAllocator::new();
        let l1 = VirtualLink::provision(LinkId(1), VmId(0), VmId(1), false, &mut vnis);
        let l2 = VirtualLink::provision(LinkId(2), VmId(0), VmId(1), false, &mut vnis);
        let frame = EthernetFrame {
            dst: MacAddr::from_id(1),
            src: MacAddr::from_id(2),
            ethertype: 0x0800,
            payload: Bytes::new(),
        };
        let wire = l1.encapsulate(&frame, Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2));
        assert!(l2.decapsulate(wire).is_none(), "links are isolated by VNI");
    }

    #[test]
    fn cross_cloud_links_are_marked() {
        let mut vnis = VniAllocator::new();
        let l = VirtualLink::provision(LinkId(3), VmId(0), VmId(9), true, &mut vnis);
        assert_eq!(l.span, LinkSpan::CrossCloud);
        assert!(l.vni.is_some());
    }
}
