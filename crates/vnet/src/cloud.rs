//! The simulated public cloud: VM SKUs, provisioning, failure and cost.
//!
//! CrystalNet "is designed to run from ground-up in public cloud" (§3.1):
//! emulations are built from fleets of small VMs (typically 4-core/8GB,
//! §6.1), whose retail price gives the paper's headline "$100/hour for a
//! 5,000-device emulation". This module models that substrate: SKUs with
//! nested-virtualization capability flags (required for VM-image vendors,
//! §4.1), provisioning latency, unannounced failures/reboots, per-VM CPU
//! servers (Figure 9's measurement points), and dollar cost accounting.

use crystalnet_sim::{CpuServer, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A VM size offered by the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmSku {
    /// CPU cores.
    pub cores: u32,
    /// RAM in GiB.
    pub ram_gb: u32,
    /// Whether nested virtualization is available (required to run
    /// VM-image device sandboxes inside containers, §4.1). Azure offers
    /// this "for only certain VM SKUs" (§6.1).
    pub nested_virt: bool,
    /// Retail price in USD per hour.
    pub usd_per_hour: f64,
}

impl VmSku {
    /// The paper's workhorse: 4-core, 8GB, $0.20/hour.
    #[must_use]
    pub fn standard_4c8g() -> VmSku {
        VmSku {
            cores: 4,
            ram_gb: 8,
            nested_virt: false,
            usd_per_hour: 0.20,
        }
    }

    /// The nested-virtualization-capable variant used for VM-image
    /// vendors (4-core, 16GB).
    #[must_use]
    pub fn nested_4c16g() -> VmSku {
        VmSku {
            cores: 4,
            ram_gb: 16,
            nested_virt: true,
            usd_per_hour: 0.40,
        }
    }
}

/// VM lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmState {
    /// Being provisioned by the cloud.
    Provisioning,
    /// Up and serving.
    Running,
    /// Crashed / rebooted by the cloud without warning.
    Failed,
}

/// A handle to a provisioned VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl VmId {
    /// Array index behind the handle.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One emulation VM.
#[derive(Debug, Clone)]
pub struct Vm {
    /// Handle.
    pub id: VmId,
    /// Size.
    pub sku: VmSku,
    /// Lifecycle state.
    pub state: VmState,
    /// When it became `Running` (cost accounting starts here).
    pub running_since: Option<SimTime>,
    /// The VM's CPU (all container/device work queues here).
    pub cpu: CpuServer,
    /// RAM currently committed to sandboxes, in MiB.
    pub ram_used_mb: u32,
    /// Unexpected failures observed so far.
    pub failures: u32,
}

impl Vm {
    /// Remaining RAM in MiB.
    #[must_use]
    pub fn ram_free_mb(&self) -> u32 {
        (self.sku.ram_gb * 1024).saturating_sub(self.ram_used_mb)
    }
}

/// Cloud-level tunables.
#[derive(Debug, Clone)]
pub struct CloudParams {
    /// Mean VM provisioning latency.
    pub provision_time: SimDuration,
    /// Jitter fraction on provisioning.
    pub provision_jitter: f64,
    /// CPU utilization histogram bucket width.
    pub cpu_bucket: SimDuration,
}

impl Default for CloudParams {
    fn default() -> Self {
        CloudParams {
            provision_time: SimDuration::from_secs(45),
            provision_jitter: 0.3,
            cpu_bucket: SimDuration::from_secs(30),
        }
    }
}

/// The simulated cloud: a fleet of VMs.
///
/// `Clone` deep-copies the fleet (CPU servers, RNG position, RAM
/// accounting included), which is what lets an emulation fork carry its
/// own cloud: child work accounting can never leak into the parent's.
#[derive(Clone)]
pub struct Cloud {
    params: CloudParams,
    rng: SimRng,
    vms: Vec<Vm>,
}

impl Cloud {
    /// An empty cloud seeded for reproducible jitter/failures.
    #[must_use]
    pub fn new(params: CloudParams, seed: u64) -> Self {
        Cloud {
            params,
            rng: SimRng::for_component(seed, "cloud"),
            vms: Vec::new(),
        }
    }

    /// Requests a VM; returns the handle and the time it will be
    /// `Running` (the caller marks it so via [`Self::mark_running`]).
    pub fn provision(&mut self, sku: VmSku, now: SimTime) -> (VmId, SimTime) {
        let id = VmId(self.vms.len() as u32);
        let ready = now
            + self
                .rng
                .jitter(self.params.provision_time, self.params.provision_jitter);
        self.vms.push(Vm {
            id,
            sku,
            state: VmState::Provisioning,
            running_since: None,
            cpu: CpuServer::new(sku.cores, self.params.cpu_bucket),
            ram_used_mb: 0,
            failures: 0,
        });
        (id, ready)
    }

    /// Marks a VM running at `now`.
    pub fn mark_running(&mut self, id: VmId, now: SimTime) {
        let vm = &mut self.vms[id.index()];
        vm.state = VmState::Running;
        if vm.running_since.is_none() {
            vm.running_since = Some(now);
        }
    }

    /// Kills a VM without warning (failure injection for the health
    /// monitor / §8.3 recovery experiments).
    pub fn fail_vm(&mut self, id: VmId) {
        let vm = &mut self.vms[id.index()];
        vm.state = VmState::Failed;
        vm.failures += 1;
        vm.ram_used_mb = 0;
    }

    /// Reboots a failed VM; returns when it is running again.
    pub fn reboot(&mut self, id: VmId, now: SimTime) -> SimTime {
        let ready = now
            + self
                .rng
                .jitter(self.params.provision_time, self.params.provision_jitter);
        self.vms[id.index()].state = VmState::Provisioning;
        ready
    }

    /// Resets a VM's CPU accounting after a reboot.
    pub fn reset_cpu(&mut self, id: VmId, now: SimTime) {
        self.vms[id.index()].cpu.reset(now);
    }

    /// The VM behind a handle.
    #[must_use]
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[id.index()]
    }

    /// Mutable VM access.
    pub fn vm_mut(&mut self, id: VmId) -> &mut Vm {
        &mut self.vms[id.index()]
    }

    /// All VMs.
    #[must_use]
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Fleet size.
    #[must_use]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Total cost in USD if all VMs ran from their start until `until`
    /// (the paper's "$100/hour for 500 VMs" accounting).
    #[must_use]
    pub fn cost_usd(&self, until: SimTime) -> f64 {
        self.vms
            .iter()
            .filter_map(|vm| {
                let since = vm.running_since?;
                let hours = until.since(since).as_secs_f64() / 3600.0;
                Some(hours * vm.sku.usd_per_hour)
            })
            .sum()
    }

    /// Hourly burn rate of the running fleet in USD.
    #[must_use]
    pub fn hourly_rate_usd(&self) -> f64 {
        self.vms
            .iter()
            .filter(|vm| vm.state == VmState::Running)
            .map(|vm| vm.sku.usd_per_hour)
            .sum()
    }

    /// Releases everything (the `Destroy` API).
    pub fn destroy_all(&mut self) {
        self.vms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Cloud {
        Cloud::new(CloudParams::default(), 42)
    }

    #[test]
    fn provision_then_run() {
        let mut c = cloud();
        let (id, ready) = c.provision(VmSku::standard_4c8g(), SimTime::ZERO);
        assert_eq!(c.vm(id).state, VmState::Provisioning);
        assert!(ready > SimTime::ZERO);
        c.mark_running(id, ready);
        assert_eq!(c.vm(id).state, VmState::Running);
        assert_eq!(c.vm(id).running_since, Some(ready));
    }

    #[test]
    fn provisioning_latency_is_jittered_but_bounded() {
        let mut c = cloud();
        let base = CloudParams::default().provision_time;
        for _ in 0..50 {
            let (_, ready) = c.provision(VmSku::standard_4c8g(), SimTime::ZERO);
            let d = ready.since(SimTime::ZERO);
            assert!(d >= base.mul_f64(0.7) && d <= base.mul_f64(1.3));
        }
    }

    #[test]
    fn failure_and_reboot_cycle() {
        let mut c = cloud();
        let (id, ready) = c.provision(VmSku::standard_4c8g(), SimTime::ZERO);
        c.mark_running(id, ready);
        c.vm_mut(id).ram_used_mb = 4000;
        c.fail_vm(id);
        assert_eq!(c.vm(id).state, VmState::Failed);
        assert_eq!(c.vm(id).failures, 1);
        assert_eq!(c.vm(id).ram_used_mb, 0, "sandboxes die with the VM");
        let back = c.reboot(id, ready + SimDuration::from_mins(5));
        c.mark_running(id, back);
        assert_eq!(c.vm(id).state, VmState::Running);
        // Cost keeps accruing from first start.
        assert_eq!(c.vm(id).running_since, Some(ready));
    }

    #[test]
    fn cost_matches_paper_headline() {
        // 500 standard VMs for one hour ≈ $100 (§1).
        let mut c = cloud();
        for _ in 0..500 {
            let (id, _) = c.provision(VmSku::standard_4c8g(), SimTime::ZERO);
            c.mark_running(id, SimTime::ZERO);
        }
        let cost = c.cost_usd(SimTime::ZERO + SimDuration::from_mins(60));
        assert!((cost - 100.0).abs() < 1e-6, "cost {cost}");
        assert!((c.hourly_rate_usd() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn ram_accounting() {
        let mut c = cloud();
        let (id, _) = c.provision(VmSku::standard_4c8g(), SimTime::ZERO);
        assert_eq!(c.vm(id).ram_free_mb(), 8192);
        c.vm_mut(id).ram_used_mb = 8000;
        assert_eq!(c.vm(id).ram_free_mb(), 192);
        c.vm_mut(id).ram_used_mb = 9000;
        assert_eq!(c.vm(id).ram_free_mb(), 0);
    }

    #[test]
    fn nested_skus_differ() {
        assert!(!VmSku::standard_4c8g().nested_virt);
        assert!(VmSku::nested_4c16g().nested_virt);
        assert!(VmSku::nested_4c16g().usd_per_hour > VmSku::standard_4c8g().usd_per_hour);
    }

    #[test]
    fn destroy_clears_fleet() {
        let mut c = cloud();
        c.provision(VmSku::standard_4c8g(), SimTime::ZERO);
        c.destroy_all();
        assert_eq!(c.vm_count(), 0);
    }
}
