//! Container sandboxes and the PhyNet layer (§4.1).
//!
//! CrystalNet isolates every device in a container, but the decisive
//! design move is the *two-layer* split: a **PhyNet container** owns the
//! network namespace — virtual interfaces, links, tcpdump/injection tools
//! — while the heterogeneous device software (vendor container, nested VM,
//! or even real hardware via a fanout switch) runs *on top of* that
//! namespace. The firmware "starts with the physical interfaces already
//! existing", and when it reboots or crashes, the interfaces and links
//! remain — which is why Reload takes 3 seconds instead of ≥15 (§8.3).

use crystalnet_net::Vendor;
use crystalnet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// What runs inside a sandbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerKind {
    /// The PhyNet layer: owns the namespace, interfaces and tooling.
    PhyNet,
    /// A containerized device image sharing a PhyNet namespace.
    DeviceContainer(Vendor),
    /// A VM device image wrapped in a container with a KVM hypervisor
    /// (requires a nested-virtualization SKU).
    DeviceVm(Vendor),
    /// A lightweight static speaker agent (ExaBGP-like).
    Speaker,
    /// The bridge container for a real hardware switch attached through a
    /// fanout switch (§4.1).
    HardwareProxy,
}

impl ContainerKind {
    /// Whether this sandbox needs nested virtualization on its host VM.
    #[must_use]
    pub fn needs_nested_virt(self) -> bool {
        matches!(self, ContainerKind::DeviceVm(_))
    }

    /// RAM the sandbox commits on its host VM, in MiB. VM-based devices
    /// "require more memory", containers "more CPU" (§6.1).
    #[must_use]
    pub fn ram_mb(self) -> u32 {
        match self {
            ContainerKind::PhyNet => 64,
            ContainerKind::DeviceContainer(_) => 768,
            ContainerKind::DeviceVm(_) => 3072,
            ContainerKind::Speaker => 96,
            ContainerKind::HardwareProxy => 128,
        }
    }

    /// CPU time consumed on the host VM to start the sandbox.
    #[must_use]
    pub fn start_cpu(self) -> SimDuration {
        match self {
            ContainerKind::PhyNet => SimDuration::from_millis(350),
            ContainerKind::DeviceContainer(_) => SimDuration::from_millis(2_500),
            ContainerKind::DeviceVm(_) => SimDuration::from_millis(9_000),
            ContainerKind::Speaker => SimDuration::from_millis(150),
            ContainerKind::HardwareProxy => SimDuration::from_millis(500),
        }
    }
}

/// Sandbox lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerState {
    /// Created, namespace not yet populated.
    Created,
    /// Running.
    Running,
    /// Stopped (device software down; PhyNet namespace survives).
    Stopped,
}

/// A handle to a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId(pub u32);

/// A sandbox instance on some VM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Container {
    /// Handle.
    pub id: ContainerId,
    /// What runs inside.
    pub kind: ContainerKind,
    /// Lifecycle state.
    pub state: ContainerState,
    /// The PhyNet container whose namespace this sandbox shares
    /// (`None` for PhyNet containers themselves).
    pub phynet: Option<ContainerId>,
    /// Number of virtual interfaces held (PhyNet only).
    pub iface_count: u32,
    /// Times the device software was (re)started without touching the
    /// namespace — the §8.3 two-layer reload counter.
    pub restarts: u32,
}

/// The container engine on one VM (a Docker stand-in).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ContainerEngine {
    containers: Vec<Container>,
}

impl ContainerEngine {
    /// An empty engine.
    #[must_use]
    pub fn new() -> Self {
        ContainerEngine::default()
    }

    /// Creates a sandbox.
    ///
    /// # Panics
    ///
    /// Panics if a non-PhyNet sandbox references a nonexistent or
    /// non-PhyNet namespace holder — that wiring is an orchestrator bug.
    pub fn create(&mut self, kind: ContainerKind, phynet: Option<ContainerId>) -> ContainerId {
        if kind != ContainerKind::PhyNet {
            let holder = phynet.expect("device sandboxes must share a PhyNet namespace");
            assert!(
                matches!(
                    self.get(holder).map(|c| c.kind),
                    Some(ContainerKind::PhyNet)
                ),
                "namespace holder must be a PhyNet container"
            );
        }
        let id = ContainerId(self.containers.len() as u32);
        self.containers.push(Container {
            id,
            kind,
            state: ContainerState::Created,
            phynet,
            iface_count: 0,
            restarts: 0,
        });
        id
    }

    /// Marks a sandbox running.
    pub fn start(&mut self, id: ContainerId) {
        let c = &mut self.containers[id.0 as usize];
        if c.state == ContainerState::Stopped {
            c.restarts += 1;
        }
        c.state = ContainerState::Running;
    }

    /// Stops a sandbox. Stopping a device sandbox leaves its PhyNet
    /// namespace (and thus all interfaces/links) intact.
    pub fn stop(&mut self, id: ContainerId) {
        self.containers[id.0 as usize].state = ContainerState::Stopped;
    }

    /// Adds virtual interfaces to a PhyNet container.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-PhyNet sandbox.
    pub fn add_ifaces(&mut self, id: ContainerId, n: u32) {
        let c = &mut self.containers[id.0 as usize];
        assert_eq!(c.kind, ContainerKind::PhyNet, "interfaces live in PhyNet");
        c.iface_count += n;
    }

    /// Looks up a sandbox.
    #[must_use]
    pub fn get(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(id.0 as usize)
    }

    /// All sandboxes.
    #[must_use]
    pub fn containers(&self) -> &[Container] {
        &self.containers
    }

    /// Total RAM committed by non-stopped sandboxes, in MiB.
    #[must_use]
    pub fn ram_committed_mb(&self) -> u32 {
        self.containers
            .iter()
            .filter(|c| c.state != ContainerState::Stopped)
            .map(|c| c.kind.ram_mb())
            .sum()
    }

    /// Destroys everything (VM `Clear`).
    pub fn clear(&mut self) {
        self.containers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phynet_holds_interfaces_for_device_sandboxes() {
        let mut eng = ContainerEngine::new();
        let phynet = eng.create(ContainerKind::PhyNet, None);
        eng.add_ifaces(phynet, 32);
        let dev = eng.create(ContainerKind::DeviceContainer(Vendor::CtnrA), Some(phynet));
        eng.start(phynet);
        eng.start(dev);
        assert_eq!(eng.get(phynet).unwrap().iface_count, 32);
        assert_eq!(eng.get(dev).unwrap().phynet, Some(phynet));
    }

    #[test]
    fn device_restart_preserves_namespace() {
        // The §8.3 property: stop/start the device software; the PhyNet
        // interfaces survive untouched.
        let mut eng = ContainerEngine::new();
        let phynet = eng.create(ContainerKind::PhyNet, None);
        eng.add_ifaces(phynet, 8);
        let dev = eng.create(ContainerKind::DeviceContainer(Vendor::CtnrB), Some(phynet));
        eng.start(phynet);
        eng.start(dev);
        eng.stop(dev);
        assert_eq!(eng.get(phynet).unwrap().state, ContainerState::Running);
        assert_eq!(eng.get(phynet).unwrap().iface_count, 8);
        eng.start(dev);
        assert_eq!(eng.get(dev).unwrap().restarts, 1);
    }

    #[test]
    #[should_panic(expected = "PhyNet namespace")]
    fn device_sandbox_requires_namespace() {
        let mut eng = ContainerEngine::new();
        eng.create(ContainerKind::DeviceContainer(Vendor::CtnrA), None);
    }

    #[test]
    #[should_panic(expected = "must be a PhyNet container")]
    fn namespace_holder_must_be_phynet() {
        let mut eng = ContainerEngine::new();
        let phynet = eng.create(ContainerKind::PhyNet, None);
        let dev = eng.create(ContainerKind::DeviceContainer(Vendor::CtnrA), Some(phynet));
        eng.create(ContainerKind::Speaker, Some(dev));
    }

    #[test]
    fn vm_images_need_nested_virt_and_more_ram() {
        assert!(ContainerKind::DeviceVm(Vendor::VmA).needs_nested_virt());
        assert!(!ContainerKind::DeviceContainer(Vendor::CtnrA).needs_nested_virt());
        assert!(
            ContainerKind::DeviceVm(Vendor::VmA).ram_mb()
                > ContainerKind::DeviceContainer(Vendor::CtnrA).ram_mb()
        );
        // Speakers are lightweight: ≥50 fit in a standard VM's RAM (§8.4).
        assert!(8192 / ContainerKind::Speaker.ram_mb() >= 50);
    }

    #[test]
    fn ram_committed_ignores_stopped() {
        let mut eng = ContainerEngine::new();
        let phynet = eng.create(ContainerKind::PhyNet, None);
        let dev = eng.create(ContainerKind::DeviceContainer(Vendor::CtnrA), Some(phynet));
        eng.start(phynet);
        eng.start(dev);
        let before = eng.ram_committed_mb();
        eng.stop(dev);
        assert!(eng.ram_committed_mb() < before);
        eng.clear();
        assert_eq!(eng.ram_committed_mb(), 0);
    }
}
