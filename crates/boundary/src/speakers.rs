//! Speaker synthesis: turning a recorded production routing snapshot into
//! static speaker programs (§5.1, §6.2).
//!
//! During `Prepare`, CrystalNet records "the routing messages to be sent
//! by each boundary device['s neighbor]" — concretely, what each boundary
//! device heard from each to-be-replaced neighbor in production. Here the
//! "production network" is a fully emulated run (every device real), and
//! the snapshot is each boundary device's Adj-RIB-In on the interfaces
//! facing speaker devices.

use crate::classify::Classification;
use crystalnet_net::{DeviceId, EmulationClass, Topology};
use crystalnet_routing::{ControlPlaneSim, SpeakerOs, SpeakerScript};

/// The announcement program for every speaker device of a boundary.
#[derive(Debug, Default)]
pub struct SpeakerPlan {
    /// Per speaker device: `(speaker, [(speaker-iface, script)])`.
    pub scripts: Vec<(DeviceId, Vec<(u32, SpeakerScript)>)>,
}

impl SpeakerPlan {
    /// Total routes across all scripts.
    #[must_use]
    pub fn route_count(&self) -> usize {
        self.scripts
            .iter()
            .flat_map(|(_, per_iface)| per_iface.iter())
            .map(|(_, s)| s.routes.len())
            .sum()
    }

    /// Builds the `SpeakerOs` for one planned speaker.
    #[must_use]
    pub fn build_os(&self, topo: &Topology, speaker: DeviceId) -> Option<SpeakerOs> {
        let (_, per_iface) = self.scripts.iter().find(|(d, _)| *d == speaker)?;
        let dev = topo.device(speaker);
        let mut os = SpeakerOs::new(dev.name.clone(), dev.asn, dev.loopback);
        for (iface, script) in per_iface {
            os.set_script(*iface, script.clone());
        }
        Some(os)
    }
}

/// Synthesizes speaker scripts for `class`'s speaker devices from the
/// converged `production` emulation.
///
/// For every link between a speaker `s` and an emulated device `b`, the
/// script on `s`'s interface replays exactly the routes `b` received from
/// `s` in production (`b`'s Adj-RIB-In on that interface).
#[must_use]
pub fn synthesize_speakers(
    topo: &Topology,
    class: &Classification,
    production: &ControlPlaneSim,
) -> SpeakerPlan {
    let mut plan = SpeakerPlan::default();
    for speaker in class.speakers() {
        let mut per_iface: Vec<(u32, SpeakerScript)> = Vec::new();
        for (_, local, remote) in topo.neighbors(speaker) {
            let peer_class = class.class(remote.device);
            if !matches!(
                peer_class,
                EmulationClass::Boundary | EmulationClass::Internal
            ) {
                continue;
            }
            let Some(b_os) = production.os(remote.device) else {
                continue;
            };
            let routes = b_os.adj_rib_in(remote.iface);
            per_iface.push((local.iface, SpeakerScript { routes }));
        }
        plan.scripts.push((speaker, per_iface));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::emulated_set;
    use crystalnet_net::fixtures::fig7;
    use crystalnet_routing::harness::build_full_bgp_sim;
    use crystalnet_routing::UniformWorkModel;
    use crystalnet_sim::{SimDuration, SimTime};

    #[test]
    fn scripts_replay_what_boundaries_heard() {
        let f = fig7();
        // Production: everything emulated, converged.
        let mut prod = build_full_bgp_sim(
            &f.topo,
            Box::new(UniformWorkModel {
                boot: SimDuration::from_secs(1),
                ..UniformWorkModel::default()
            }),
        );
        prod.boot_all(SimTime::ZERO);
        prod.run_until_quiet(
            SimDuration::from_secs(5),
            SimTime::ZERO + SimDuration::from_mins(60),
        )
        .unwrap();

        // Figure 7b boundary: speakers are L5, L6.
        let emulated = emulated_set(
            &f.spines
                .iter()
                .chain(&f.leaves[..4])
                .chain(&f.tors[..4])
                .copied()
                .collect::<Vec<_>>(),
        );
        let class = Classification::new(&f.topo, &emulated);
        let plan = synthesize_speakers(&f.topo, &class, &prod);

        assert_eq!(plan.scripts.len(), 2, "one plan per speaker (L5, L6)");
        // Each speaker faces both spines.
        for (speaker, per_iface) in &plan.scripts {
            assert!([f.leaves[4], f.leaves[5]].contains(speaker));
            assert_eq!(per_iface.len(), 2);
            for (_, script) in per_iface {
                // In production, L5/L6 announced their ToRs' subnets and
                // loopbacks up to the spines.
                assert!(
                    !script.routes.is_empty(),
                    "speakers must replay recorded announcements"
                );
                assert!(
                    script.routes.iter().any(|(p, _)| p.len() == 24),
                    "ToR subnets present"
                );
            }
        }
        assert!(plan.route_count() > 0);
        // The built OS carries the device identity.
        let os = plan.build_os(&f.topo, f.leaves[4]).unwrap();
        assert_eq!(os.asn(), f.topo.device(f.leaves[4]).asn);
        assert!(plan.build_os(&f.topo, f.tors[0]).is_none());
    }
}
