//! Runtime provenance audit: Lemma 5.1 checked against a converged run.
//!
//! [`check_lemma_5_1`](crate::check_lemma_5_1) proves a boundary safe
//! *statically*, by enumerating feasible propagation paths over the
//! topology. This module is its runtime companion: once an emulation has
//! converged, every installed route carries an interned
//! [`Provenance`] chain, and the lemma's condition becomes directly
//! observable — a route that crossed the boundary must have *originated*
//! at a speaker (the legal single crossing), and no route may have
//! *passed through* a speaker mid-chain (that would be a second
//! crossing, exactly the update the lemma forbids).
//!
//! The audit is exact for the routes that actually propagated, so it
//! catches boundary bugs the static check cannot see (a mis-synthesized
//! speaker script, a speaker that re-announces learned state) and
//! vice versa serves as an end-to-end regression for the static result.

use crystalnet_net::{DeviceId, Ipv4Addr, Ipv4Prefix};
use crystalnet_routing::{OriginKind, Provenance};
use std::collections::BTreeSet;

/// How a route's provenance chain violates the boundary contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditViolation {
    /// The chain originates at a speaker loopback but is not labelled
    /// [`OriginKind::Speaker`] — an emulated device fabricated a route
    /// in the speakers' address space.
    MislabelledOrigin,
    /// The chain is labelled [`OriginKind::Speaker`] but its origin
    /// router is not a known speaker — a forged boundary injection.
    ForgedSpeakerOrigin,
    /// A speaker appears mid-chain: the route left the emulated region
    /// and re-entered it. This is the Lemma 5.1 unsafe condition.
    ReentryThroughSpeaker,
}

impl AuditViolation {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AuditViolation::MislabelledOrigin => "mislabelled-origin",
            AuditViolation::ForgedSpeakerOrigin => "forged-speaker-origin",
            AuditViolation::ReentryThroughSpeaker => "reentry-through-speaker",
        }
    }
}

/// A route whose provenance fails the audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceWitness {
    /// The device holding the offending route.
    pub device: DeviceId,
    /// The offending prefix.
    pub prefix: Ipv4Prefix,
    /// What the chain did wrong.
    pub violation: AuditViolation,
    /// The router (origin or mid-chain speaker) that triggered it.
    pub router: Ipv4Addr,
}

/// Audits one provenance chain against the speaker set. Returns the
/// first violation in chain order, or `None` when the chain is clean.
#[must_use]
pub fn audit_chain(
    prov: &Provenance,
    speakers: &BTreeSet<Ipv4Addr>,
) -> Option<(AuditViolation, Ipv4Addr)> {
    let origin_is_speaker = speakers.contains(&prov.origin_router);
    if origin_is_speaker && prov.origin_kind != OriginKind::Speaker {
        return Some((AuditViolation::MislabelledOrigin, prov.origin_router));
    }
    if prov.origin_kind == OriginKind::Speaker && !origin_is_speaker {
        return Some((AuditViolation::ForgedSpeakerOrigin, prov.origin_router));
    }
    for hop in &prov.hops {
        if speakers.contains(&hop.router_id) {
            return Some((AuditViolation::ReentryThroughSpeaker, hop.router_id));
        }
    }
    None
}

/// Audits every supplied route. `routes` yields `(holder, prefix,
/// provenance)` triples — feed it each emulated device's
/// [`routes_with_detail`](crystalnet_routing::DeviceOs::routes_with_detail)
/// output; `speakers` is the set of speaker loopbacks (router ids).
///
/// # Errors
///
/// The first offending route, in iteration order (deterministic when the
/// caller iterates devices and prefixes in sorted order).
pub fn audit_provenance<'a>(
    routes: impl IntoIterator<Item = (DeviceId, Ipv4Prefix, &'a Provenance)>,
    speakers: &BTreeSet<Ipv4Addr>,
) -> Result<(), ProvenanceWitness> {
    for (device, prefix, prov) in routes {
        if let Some((violation, router)) = audit_chain(prov, speakers) {
            return Err(ProvenanceWitness {
                device,
                prefix,
                violation,
                router,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystalnet_sim::EventId;

    fn ev(t: u64, k: u64) -> EventId {
        EventId { time_ns: t, key: k }
    }

    fn speakers() -> BTreeSet<Ipv4Addr> {
        [Ipv4Addr(0x0a00_0001)].into_iter().collect()
    }

    #[test]
    fn speaker_origin_is_the_legal_crossing() {
        let prov = Provenance::originated(OriginKind::Speaker, Ipv4Addr(0x0a00_0001), ev(1, 1))
            .extended(Ipv4Addr(0x0a00_0002), ev(2, 2));
        assert_eq!(audit_chain(&prov, &speakers()), None);
    }

    #[test]
    fn internal_origin_is_clean() {
        let prov = Provenance::originated(OriginKind::Network, Ipv4Addr(0x0a00_0003), ev(1, 1));
        assert_eq!(audit_chain(&prov, &speakers()), None);
    }

    #[test]
    fn speaker_loopback_with_network_kind_is_mislabelled() {
        let prov = Provenance::originated(OriginKind::Network, Ipv4Addr(0x0a00_0001), ev(1, 1));
        assert_eq!(
            audit_chain(&prov, &speakers()),
            Some((AuditViolation::MislabelledOrigin, Ipv4Addr(0x0a00_0001)))
        );
    }

    #[test]
    fn speaker_kind_from_unknown_router_is_forged() {
        let prov = Provenance::originated(OriginKind::Speaker, Ipv4Addr(0x0a00_0009), ev(1, 1));
        assert_eq!(
            audit_chain(&prov, &speakers()),
            Some((AuditViolation::ForgedSpeakerOrigin, Ipv4Addr(0x0a00_0009)))
        );
    }

    #[test]
    fn mid_chain_speaker_is_a_reentry() {
        // Originated inside, re-announced by the speaker, held inside:
        // the update crossed the boundary twice.
        let prov = Provenance::originated(OriginKind::Network, Ipv4Addr(0x0a00_0002), ev(1, 1))
            .extended(Ipv4Addr(0x0a00_0001), ev(2, 2))
            .extended(Ipv4Addr(0x0a00_0003), ev(3, 3));
        assert_eq!(
            audit_chain(&prov, &speakers()),
            Some((AuditViolation::ReentryThroughSpeaker, Ipv4Addr(0x0a00_0001)))
        );
    }

    #[test]
    fn audit_reports_the_holder_and_prefix() {
        let bad = Provenance::originated(OriginKind::Speaker, Ipv4Addr(0x0a00_0009), ev(1, 1));
        let good = Provenance::originated(OriginKind::Network, Ipv4Addr(0x0a00_0002), ev(1, 1));
        let p1 = Ipv4Prefix::new(Ipv4Addr(0x0a07_0100), 24);
        let p2 = Ipv4Prefix::new(Ipv4Addr(0x0a07_0200), 24);
        let routes = vec![(DeviceId(4), p1, &*good), (DeviceId(5), p2, &*bad)];
        let w = audit_provenance(routes, &speakers()).unwrap_err();
        assert_eq!(w.device, DeviceId(5));
        assert_eq!(w.prefix, p2);
        assert_eq!(w.violation, AuditViolation::ForgedSpeakerOrigin);
    }
}
