//! Emulation-boundary classification (§5.1).
//!
//! Given the set of devices to emulate, every device in the production
//! topology falls into one of four classes: *internal* (emulated, all
//! neighbors emulated), *boundary* (emulated, with at least one
//! non-emulated neighbor), *speaker* (not emulated but adjacent to a
//! boundary device — replaced by a static agent), or *external*
//! (irrelevant to the emulation).

use crystalnet_net::{DeviceId, EmulationClass, Topology};
use std::collections::{BTreeSet, HashMap};

/// The classification of every device for one emulation.
#[derive(Debug, Clone)]
pub struct Classification {
    classes: HashMap<DeviceId, EmulationClass>,
}

impl Classification {
    /// Classifies all devices of `topo` given the emulated set.
    #[must_use]
    pub fn new(topo: &Topology, emulated: &BTreeSet<DeviceId>) -> Self {
        let mut classes = HashMap::new();
        for (id, _) in topo.devices() {
            classes.insert(id, Self::classify_one(topo, emulated, id));
        }
        Classification { classes }
    }

    /// The class of one device.
    #[must_use]
    pub fn class(&self, id: DeviceId) -> EmulationClass {
        self.classes[&id]
    }

    /// All devices of a class, sorted.
    #[must_use]
    pub fn of(&self, class: EmulationClass) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .classes
            .iter()
            .filter(|(_, c)| **c == class)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Boundary devices.
    #[must_use]
    pub fn boundary(&self) -> Vec<DeviceId> {
        self.of(EmulationClass::Boundary)
    }

    /// Speaker devices.
    #[must_use]
    pub fn speakers(&self) -> Vec<DeviceId> {
        self.of(EmulationClass::Speaker)
    }

    /// Devices to actually run (internal + boundary).
    #[must_use]
    pub fn emulated(&self) -> Vec<DeviceId> {
        let mut v = self.of(EmulationClass::Internal);
        v.extend(self.of(EmulationClass::Boundary));
        v.sort_unstable();
        v
    }

    /// Incrementally re-classifies after `removed` left the emulated set
    /// (a device decommission), touching only the removed device and its
    /// topological neighborhood — boundary-safety *memoization*: the rest
    /// of the cached classification stays valid because a device's class
    /// depends only on itself and its direct neighbors.
    ///
    /// `emulated` must already reflect the removal.
    pub fn remove_device(
        &mut self,
        topo: &Topology,
        emulated: &BTreeSet<DeviceId>,
        removed: DeviceId,
    ) {
        let mut affected: Vec<DeviceId> = vec![removed];
        affected.extend(topo.neighbor_devices(removed));
        for id in affected {
            self.classes
                .insert(id, Self::classify_one(topo, emulated, id));
        }
    }

    /// Checks that the memoized classes for `region` still match a fresh
    /// classification — the cheap audit `apply_change` runs instead of
    /// re-running Algorithm 1 over the whole topology. Returns the first
    /// mismatching device, or `None` when the memo is consistent.
    #[must_use]
    pub fn validate_region<'a>(
        &self,
        topo: &Topology,
        emulated: &BTreeSet<DeviceId>,
        region: impl IntoIterator<Item = &'a DeviceId>,
    ) -> Option<DeviceId> {
        region
            .into_iter()
            .copied()
            .find(|&id| self.classes.get(&id) != Some(&Self::classify_one(topo, emulated, id)))
    }

    fn classify_one(
        topo: &Topology,
        emulated: &BTreeSet<DeviceId>,
        id: DeviceId,
    ) -> EmulationClass {
        if emulated.contains(&id) {
            if topo.neighbor_devices(id).all(|n| emulated.contains(&n)) {
                EmulationClass::Internal
            } else {
                EmulationClass::Boundary
            }
        } else if topo.neighbor_devices(id).any(|n| emulated.contains(&n)) {
            EmulationClass::Speaker
        } else {
            EmulationClass::External
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystalnet_net::fixtures::fig7;

    #[test]
    fn fig7b_classification() {
        // Figure 7b: emulate S1,S2,T1-4,L1-4; speakers are L5,L6.
        let f = fig7();
        let emulated: BTreeSet<DeviceId> = f
            .spines
            .iter()
            .chain(&f.leaves[..4])
            .chain(&f.tors[..4])
            .copied()
            .collect();
        let c = Classification::new(&f.topo, &emulated);
        // T1-4 and L1-4 are internal; S1,S2 are boundary (they touch
        // L5,L6).
        for &t in &f.tors[..4] {
            assert_eq!(c.class(t), EmulationClass::Internal);
        }
        for &l in &f.leaves[..4] {
            assert_eq!(c.class(l), EmulationClass::Internal);
        }
        assert_eq!(c.boundary(), vec![f.spines[0], f.spines[1]]);
        // L5,L6 touch the spines: speakers. T5,T6 do not: external.
        assert_eq!(c.speakers(), vec![f.leaves[4], f.leaves[5]]);
        assert_eq!(c.class(f.tors[4]), EmulationClass::External);
        assert_eq!(c.class(f.tors[5]), EmulationClass::External);
        assert_eq!(c.emulated().len(), 10);
    }

    #[test]
    fn fig7a_classification() {
        // Figure 7a: emulate only T1-4, L1-4; S1,S2 become speakers.
        let f = fig7();
        let emulated: BTreeSet<DeviceId> =
            f.leaves[..4].iter().chain(&f.tors[..4]).copied().collect();
        let c = Classification::new(&f.topo, &emulated);
        assert_eq!(c.speakers(), vec![f.spines[0], f.spines[1]]);
        assert_eq!(c.boundary(), f.leaves[..4].to_vec());
        for &t in &f.tors[..4] {
            assert_eq!(c.class(t), EmulationClass::Internal);
        }
    }

    #[test]
    fn incremental_removal_matches_fresh_classification() {
        let f = fig7();
        let mut emulated: BTreeSet<DeviceId> = f
            .spines
            .iter()
            .chain(&f.leaves[..4])
            .chain(&f.tors[..4])
            .copied()
            .collect();
        let mut c = Classification::new(&f.topo, &emulated);
        assert!(c
            .validate_region(&f.topo, &emulated, emulated.iter())
            .is_none());
        // Decommission T1: its leaves' classes may change; the memoized
        // patch must agree with a from-scratch classification.
        let removed = f.tors[0];
        emulated.remove(&removed);
        c.remove_device(&f.topo, &emulated, removed);
        let fresh = Classification::new(&f.topo, &emulated);
        for (id, _) in f.topo.devices() {
            assert_eq!(c.class(id), fresh.class(id), "device {id:?}");
        }
        // A deliberately stale memo is caught by the audit.
        let stale = Classification::new(&f.topo, &f.topo.devices().map(|(id, _)| id).collect());
        assert!(stale
            .validate_region(&f.topo, &emulated, [removed].iter())
            .is_some());
    }

    #[test]
    fn everything_emulated_means_no_boundary() {
        let f = fig7();
        let emulated: BTreeSet<DeviceId> = f.topo.devices().map(|(id, _)| id).collect();
        let c = Classification::new(&f.topo, &emulated);
        assert!(c.boundary().is_empty());
        assert!(c.speakers().is_empty());
        assert_eq!(c.emulated().len(), 14);
    }
}
