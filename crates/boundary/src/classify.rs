//! Emulation-boundary classification (§5.1).
//!
//! Given the set of devices to emulate, every device in the production
//! topology falls into one of four classes: *internal* (emulated, all
//! neighbors emulated), *boundary* (emulated, with at least one
//! non-emulated neighbor), *speaker* (not emulated but adjacent to a
//! boundary device — replaced by a static agent), or *external*
//! (irrelevant to the emulation).

use crystalnet_net::{DeviceId, EmulationClass, Topology};
use std::collections::{BTreeSet, HashMap};

/// The classification of every device for one emulation.
#[derive(Debug, Clone)]
pub struct Classification {
    classes: HashMap<DeviceId, EmulationClass>,
}

impl Classification {
    /// Classifies all devices of `topo` given the emulated set.
    #[must_use]
    pub fn new(topo: &Topology, emulated: &BTreeSet<DeviceId>) -> Self {
        let mut classes = HashMap::new();
        for (id, _) in topo.devices() {
            let class = if emulated.contains(&id) {
                let all_in = topo.neighbor_devices(id).all(|n| emulated.contains(&n));
                if all_in {
                    EmulationClass::Internal
                } else {
                    EmulationClass::Boundary
                }
            } else {
                let touches = topo.neighbor_devices(id).any(|n| emulated.contains(&n));
                if touches {
                    EmulationClass::Speaker
                } else {
                    EmulationClass::External
                }
            };
            classes.insert(id, class);
        }
        Classification { classes }
    }

    /// The class of one device.
    #[must_use]
    pub fn class(&self, id: DeviceId) -> EmulationClass {
        self.classes[&id]
    }

    /// All devices of a class, sorted.
    #[must_use]
    pub fn of(&self, class: EmulationClass) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .classes
            .iter()
            .filter(|(_, c)| **c == class)
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Boundary devices.
    #[must_use]
    pub fn boundary(&self) -> Vec<DeviceId> {
        self.of(EmulationClass::Boundary)
    }

    /// Speaker devices.
    #[must_use]
    pub fn speakers(&self) -> Vec<DeviceId> {
        self.of(EmulationClass::Speaker)
    }

    /// Devices to actually run (internal + boundary).
    #[must_use]
    pub fn emulated(&self) -> Vec<DeviceId> {
        let mut v = self.of(EmulationClass::Internal);
        v.extend(self.of(EmulationClass::Boundary));
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystalnet_net::fixtures::fig7;

    #[test]
    fn fig7b_classification() {
        // Figure 7b: emulate S1,S2,T1-4,L1-4; speakers are L5,L6.
        let f = fig7();
        let emulated: BTreeSet<DeviceId> = f
            .spines
            .iter()
            .chain(&f.leaves[..4])
            .chain(&f.tors[..4])
            .copied()
            .collect();
        let c = Classification::new(&f.topo, &emulated);
        // T1-4 and L1-4 are internal; S1,S2 are boundary (they touch
        // L5,L6).
        for &t in &f.tors[..4] {
            assert_eq!(c.class(t), EmulationClass::Internal);
        }
        for &l in &f.leaves[..4] {
            assert_eq!(c.class(l), EmulationClass::Internal);
        }
        assert_eq!(c.boundary(), vec![f.spines[0], f.spines[1]]);
        // L5,L6 touch the spines: speakers. T5,T6 do not: external.
        assert_eq!(c.speakers(), vec![f.leaves[4], f.leaves[5]]);
        assert_eq!(c.class(f.tors[4]), EmulationClass::External);
        assert_eq!(c.class(f.tors[5]), EmulationClass::External);
        assert_eq!(c.emulated().len(), 10);
    }

    #[test]
    fn fig7a_classification() {
        // Figure 7a: emulate only T1-4, L1-4; S1,S2 become speakers.
        let f = fig7();
        let emulated: BTreeSet<DeviceId> =
            f.leaves[..4].iter().chain(&f.tors[..4]).copied().collect();
        let c = Classification::new(&f.topo, &emulated);
        assert_eq!(c.speakers(), vec![f.spines[0], f.spines[1]]);
        assert_eq!(c.boundary(), f.leaves[..4].to_vec());
        for &t in &f.tors[..4] {
            assert_eq!(c.class(t), EmulationClass::Internal);
        }
    }

    #[test]
    fn everything_emulated_means_no_boundary() {
        let f = fig7();
        let emulated: BTreeSet<DeviceId> = f.topo.devices().map(|(id, _)| id).collect();
        let c = Classification::new(&f.topo, &emulated);
        assert!(c.boundary().is_empty());
        assert!(c.speakers().is_empty());
        assert_eq!(c.emulated().len(), 14);
    }
}
