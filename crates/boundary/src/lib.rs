//! Safe static emulation boundaries — the CrystalNet paper's §5.
//!
//! An emulation cannot include the whole Internet, so its edge is faked
//! by *static speakers* that replay recorded announcements and never
//! react. That is only correct if nothing the operator does inside the
//! emulation would, in the real network, provoke a reaction from the
//! replaced devices. This crate implements the full §5 machinery:
//!
//! * [`Classification`] — internal/boundary/speaker/external (§5.1),
//! * [`check_lemma_5_1`] — the exact iff condition, as an exhaustive
//!   oracle for small networks,
//! * [`check_prop_5_2`] / [`check_prop_5_3`] / [`check_prop_5_4`] — the
//!   efficient sufficient conditions for BGP and OSPF,
//! * [`find_safe_dc_boundary`] — Algorithm 1's upward BFS for Clos
//!   datacenters,
//! * [`synthesize_speakers`] — building speaker scripts from a recorded
//!   production routing snapshot,
//! * [`differential`] — validating a boundary empirically by running the
//!   same change against a full emulation and a boundary emulation and
//!   comparing must-have FIBs,
//! * [`audit_provenance`] — the runtime companion to Lemma 5.1: checks
//!   every converged route's provenance chain originates at a speaker
//!   when it crossed the boundary, and never passed through one.

pub mod audit;
pub mod classify;
pub mod differential;
pub mod lemma;
pub mod props;
pub mod search;
pub mod speakers;

pub use audit::{audit_chain, audit_provenance, AuditViolation, ProvenanceWitness};
pub use classify::Classification;
pub use differential::{differential_validate, DifferentialReport};
pub use lemma::{check_lemma_5_1, UnsafeWitness};
pub use props::{
    check_prop_5_2,
    check_prop_5_3,
    check_prop_5_4,
    emulated_set,
    OspfBoundaryInputs,
    PropViolation, //
};
pub use search::{find_safe_dc_boundary, is_highest_layer};
pub use speakers::{synthesize_speakers, SpeakerPlan};
