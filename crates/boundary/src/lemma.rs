//! The exact safety condition: Lemma 5.1.
//!
//! "In an emulated BGP network, a boundary is safe if and only if no route
//! update originated in an emulated device passes through the boundary
//! more than once."
//!
//! This module implements the condition directly: it enumerates every
//! feasible BGP propagation path of an update originated inside the
//! emulation — feasibility means eBGP loop prevention holds, i.e. a path
//! never enters an AS it already carries — and reports any path that
//! leaves the emulated region and later re-enters it. Exponential in the
//! number of ASes, so it serves as the *oracle* for the efficient
//! sufficient conditions (Propositions 5.2/5.3) and for Algorithm 1's
//! output, on fixture-sized and property-test-sized networks.

use crystalnet_net::{Asn, DeviceId, Topology};
use std::collections::BTreeSet;

/// A witness that a boundary is unsafe: a feasible update path that exits
/// and re-enters the emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeWitness {
    /// The device path of the offending update.
    pub path: Vec<DeviceId>,
    /// The hop index at which the update left the emulated region.
    pub exit_at: usize,
    /// The hop index at which it re-entered.
    pub reentry_at: usize,
}

/// Checks Lemma 5.1 exhaustively. Returns `Ok(())` when every feasible
/// update path crosses the boundary at most once, otherwise the first
/// witness found (deterministic order).
///
/// Paths follow BGP semantics: each device stamps its AS; a device never
/// accepts an update whose AS path already contains its own AS. Updates
/// originate at every emulated device.
///
/// # Errors
///
/// Returns an [`UnsafeWitness`] describing the violating propagation path.
pub fn check_lemma_5_1(
    topo: &Topology,
    emulated: &BTreeSet<DeviceId>,
) -> Result<(), UnsafeWitness> {
    let mut origins: Vec<DeviceId> = emulated.iter().copied().collect();
    origins.sort_unstable();
    for origin in origins {
        let mut path = vec![origin];
        let mut ases: Vec<Asn> = vec![topo.device(origin).asn];
        dfs(topo, emulated, &mut path, &mut ases, false)?
    }
    Ok(())
}

/// DFS continuation. `exited` records whether the current path has left
/// the emulated region at some earlier hop.
fn dfs(
    topo: &Topology,
    emulated: &BTreeSet<DeviceId>,
    path: &mut Vec<DeviceId>,
    ases: &mut Vec<Asn>,
    exited: bool,
) -> Result<(), UnsafeWitness> {
    let current = *path.last().expect("path is never empty");
    let mut neighbors: Vec<DeviceId> = topo.neighbor_devices(current).collect();
    neighbors.sort_unstable();
    neighbors.dedup();
    for next in neighbors {
        let next_as = topo.device(next).asn;
        // eBGP loop prevention: the receiver rejects its own AS.
        if ases.contains(&next_as) {
            continue;
        }
        let next_emulated = emulated.contains(&next);
        let now_exited = exited || !next_emulated;
        if exited && next_emulated {
            // Left earlier, re-entering now: the boundary is crossed a
            // second time — unsafe.
            let exit_at = path
                .iter()
                .position(|d| !emulated.contains(d))
                .expect("an exit hop exists when `exited`");
            let mut witness_path = path.clone();
            witness_path.push(next);
            return Err(UnsafeWitness {
                reentry_at: witness_path.len() - 1,
                path: witness_path,
                exit_at,
            });
        }
        path.push(next);
        ases.push(next_as);
        let r = dfs(topo, emulated, path, ases, now_exited);
        path.pop();
        ases.pop();
        r?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crystalnet_net::fixtures::fig7;

    fn set(ids: &[DeviceId]) -> BTreeSet<DeviceId> {
        ids.iter().copied().collect()
    }

    #[test]
    fn fig7a_boundary_is_unsafe() {
        // Emulate T1-4, L1-4 with S1,S2 as speakers: a new prefix on T4
        // would, in production, travel T4 -> L3 -> S1 -> L1 — exiting at
        // S1 and re-entering at L1.
        let f = fig7();
        let emulated: BTreeSet<DeviceId> =
            f.leaves[..4].iter().chain(&f.tors[..4]).copied().collect();
        let w = check_lemma_5_1(&f.topo, &emulated).unwrap_err();
        assert!(w.exit_at < w.reentry_at);
        // The exit hop is a spine; the re-entry is an emulated device.
        assert!(f.spines.contains(&w.path[w.exit_at]));
        assert!(emulated.contains(&w.path[w.reentry_at]));
    }

    #[test]
    fn fig7b_boundary_is_safe() {
        // Emulate S1,S2,T1-4,L1-4: updates exiting via L5/L6 carry AS100
        // (the spines) and AS200/300, so they can never re-enter — L5/L6
        // only connect back through the spines' AS.
        let f = fig7();
        let emulated: BTreeSet<DeviceId> = f
            .spines
            .iter()
            .chain(&f.leaves[..4])
            .chain(&f.tors[..4])
            .copied()
            .collect();
        assert_eq!(check_lemma_5_1(&f.topo, &emulated), Ok(()));
    }

    #[test]
    fn fig7c_boundary_is_safe() {
        // Emulate S1,S2,L1-4 (speakers: T1-4, L5,L6).
        let f = fig7();
        let emulated: BTreeSet<DeviceId> = f.spines.iter().chain(&f.leaves[..4]).copied().collect();
        assert_eq!(check_lemma_5_1(&f.topo, &emulated), Ok(()));
    }

    #[test]
    fn full_emulation_is_trivially_safe() {
        let f = fig7();
        let emulated: BTreeSet<DeviceId> = f.topo.devices().map(|(id, _)| id).collect();
        assert_eq!(check_lemma_5_1(&f.topo, &emulated), Ok(()));
    }

    #[test]
    fn single_device_in_a_pair_pod_is_safe_by_loop_prevention() {
        // Emulating only L1: updates exit via T1 but T1's other neighbor
        // is L2 (same AS as L1) — rejected; via S1/S2, re-entry into L1's
        // AS is likewise rejected. But S1 -> L3/L4 -> T3... never reaches
        // L1 again without repeating AS100 or AS200.
        let f = fig7();
        assert_eq!(check_lemma_5_1(&f.topo, &set(&[f.leaves[0]])), Ok(()));
    }

    #[test]
    fn two_routers_same_as_split_apart_is_unsafe() {
        // Emulating T1 and T3 (distinct pods, distinct ASes): an update
        // from T1 travels L1 -> S1 -> L3 -> T3: exits at L1, re-enters at
        // T3. Unsafe.
        let f = fig7();
        let w = check_lemma_5_1(&f.topo, &set(&[f.tors[0], f.tors[2]])).unwrap_err();
        assert_eq!(w.path[0], f.tors[0]);
        assert_eq!(*w.path.last().unwrap(), f.tors[2]);
    }
}
