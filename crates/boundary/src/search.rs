//! Algorithm 1: `FindSafeDCBoundary` — searching a safe boundary in a
//! Clos datacenter running BGP (§5.2).
//!
//! "Our idea is to treat the topology as a multi-root tree with border
//! switches being the roots. Starting from each input device, we add all
//! its parents, grandparents and so on until the border switches into the
//! emulated device set. This is essentially a BFS on a directional graph."
//!
//! Safety of the output follows from the Clos properties: the topology is
//! layered, valley routing is disallowed (here enforced by the shared
//! per-layer AS plan plus BGP loop prevention), and the border layer
//! shares a single AS — so every update exiting the emulated set either
//! descends (and can never climb back past a shared-AS layer) or leaves
//! through the single-AS border roots (Proposition 5.2).

use crystalnet_net::{DeviceId, Role, Topology};
use std::collections::{BTreeSet, VecDeque};

/// Whether `dev` sits on the highest layer of the fabric (no upward
/// neighbors inside the administrative domain).
#[must_use]
pub fn is_highest_layer(topo: &Topology, dev: DeviceId) -> bool {
    let my_layer = topo.device(dev).role.layer();
    !topo.neighbor_devices(dev).any(|n| {
        let d = topo.device(n);
        d.role != Role::External && d.role.layer() > my_layer
    })
}

/// Algorithm 1: expands the operator's must-have devices into an emulated
/// set with a safe static boundary by climbing to the fabric roots.
#[must_use]
pub fn find_safe_dc_boundary(topo: &Topology, must_have: &[DeviceId]) -> BTreeSet<DeviceId> {
    let mut out: BTreeSet<DeviceId> = BTreeSet::new();
    let mut queue: VecDeque<DeviceId> = must_have.iter().copied().collect();
    while let Some(d) = queue.pop_front() {
        if !out.insert(d) {
            continue;
        }
        if is_highest_layer(topo, d) {
            continue;
        }
        let my_layer = topo.device(d).role.layer();
        for upper in topo.neighbor_devices(d) {
            let dev = topo.device(upper);
            if dev.role == Role::External {
                continue;
            }
            if dev.role.layer() > my_layer && !out.contains(&upper) {
                queue.push_back(upper);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classification;
    use crate::lemma::check_lemma_5_1;
    use crystalnet_net::fixtures::fig7;
    use crystalnet_net::ClosParams;

    #[test]
    fn fig7_from_one_tor_climbs_to_spines() {
        let f = fig7();
        let out = find_safe_dc_boundary(&f.topo, &[f.tors[0]]);
        // T1 -> L1,L2 -> S1,S2.
        let expect: BTreeSet<DeviceId> = [
            f.tors[0],
            f.leaves[0],
            f.leaves[1],
            f.spines[0],
            f.spines[1],
        ]
        .into_iter()
        .collect();
        assert_eq!(out, expect);
        assert!(
            check_lemma_5_1(&f.topo, &out).is_ok(),
            "output must be safe"
        );
    }

    #[test]
    fn output_is_upward_closed() {
        // Algorithm 1's invariant: every upward neighbor of an emulated
        // device is emulated. This is what makes updates unable to exit
        // upward into a speaker and descend back elsewhere — the
        // structural core of the (omitted) safety proof.
        let dc = ClosParams::s_dc().build();
        let must = vec![dc.pods[2].tors[3]];
        let out = find_safe_dc_boundary(&dc.topo, &must);
        for &d in &out {
            let layer = dc.topo.device(d).role.layer();
            for n in dc.topo.neighbor_devices(d) {
                let nd = dc.topo.device(n);
                if nd.role != Role::External && nd.role.layer() > layer {
                    assert!(out.contains(&n), "upward neighbor not emulated");
                }
            }
        }
        // And the exact oracle agrees on a tiny Clos with the same shape.
        let tiny = ClosParams {
            name: "tiny".into(),
            borders: 2,
            spine_groups: 2,
            spines_per_group: 1,
            pods: 3,
            leaves_per_pod: 2,
            tors_per_pod: 1,
            groups_per_pod: 2,
            ext_peers_per_border: 1,
            ext_prefixes_per_peer: 1,
        }
        .build();
        let out = find_safe_dc_boundary(&tiny.topo, &[tiny.pods[0].tors[0]]);
        assert!(check_lemma_5_1(&tiny.topo, &out).is_ok());
        // Control: punching the spines out of the middle is unsafe — an
        // update exiting at a (now external) spine re-enters through the
        // still-emulated borders. (Dropping only the *borders* would stay
        // safe: the shared spine AS forms a valid boundary by itself.)
        let truncated: BTreeSet<DeviceId> = out
            .iter()
            .copied()
            .filter(|&d| tiny.topo.device(d).role != Role::Spine)
            .collect();
        assert!(check_lemma_5_1(&tiny.topo, &truncated).is_err());
        let no_borders: BTreeSet<DeviceId> = out
            .iter()
            .copied()
            .filter(|&d| tiny.topo.device(d).role != Role::Border)
            .collect();
        assert!(check_lemma_5_1(&tiny.topo, &no_borders).is_ok());
    }

    #[test]
    fn one_pod_case_shape_in_l_dc_geometry() {
        // Table 4 Case-1: one pod in L-DC → 4 leaves + 16 ToRs + the
        // pod's spine groups + their home borders.
        let dc = ClosParams::l_dc().scaled_pods(0.05).build();
        let pod = &dc.pods[3];
        let must: Vec<DeviceId> = pod.tors.iter().chain(&pod.leaves).copied().collect();
        let out = find_safe_dc_boundary(&dc.topo, &must);
        let mut counts = (0, 0, 0, 0); // borders, spines, leaves, tors
        for &d in &out {
            match dc.topo.device(d).role {
                Role::Border => counts.0 += 1,
                Role::Spine => counts.1 += 1,
                Role::Leaf => counts.2 += 1,
                Role::Tor => counts.3 += 1,
                _ => {}
            }
        }
        assert_eq!(counts.2, 4, "exactly the pod's leaves");
        assert_eq!(counts.3, 16, "exactly the pod's ToRs");
        // 4 spine groups x 14 spines, each group homed to one border.
        assert_eq!(counts.1, 4 * 14);
        assert_eq!(counts.0, 4);
        // Prop 5.3 holds: the boundary ASes (spine AS, border AS) have no
        // external path to each other — external leaves only climb back
        // into the shared spine AS, and external peers are stubs.
        let class = Classification::new(&dc.topo, &out);
        assert!(crate::props::check_prop_5_3(&dc.topo, &class).is_ok());
    }

    #[test]
    fn all_spines_case_adds_no_leaves() {
        // Table 4 Case-2: emulating the whole spine layer pulls in all
        // borders and nothing below.
        let dc = ClosParams::l_dc().scaled_pods(0.02).build();
        let must = dc.spines();
        let out = find_safe_dc_boundary(&dc.topo, &must);
        let mut leaves = 0;
        let mut borders = 0;
        for &d in &out {
            match dc.topo.device(d).role {
                Role::Leaf | Role::Tor => leaves += 1,
                Role::Border => borders += 1,
                _ => {}
            }
        }
        assert_eq!(leaves, 0);
        assert_eq!(borders, dc.borders.len());
        assert_eq!(out.len(), dc.spines().len() + dc.borders.len());
    }

    #[test]
    fn must_haves_always_contained_and_idempotent() {
        let dc = ClosParams::s_dc().build();
        let must = vec![dc.pods[0].tors[0], dc.pods[4].leaves[2]];
        let out = find_safe_dc_boundary(&dc.topo, &must);
        for m in &must {
            assert!(out.contains(m));
        }
        let again = find_safe_dc_boundary(&dc.topo, &out.iter().copied().collect::<Vec<_>>());
        assert_eq!(
            out, again,
            "running Algorithm 1 on its output is a fixpoint"
        );
    }

    #[test]
    fn external_peers_are_never_pulled_in() {
        let dc = ClosParams::s_dc().build();
        let out = find_safe_dc_boundary(&dc.topo, &[dc.pods[0].tors[0]]);
        for &d in &out {
            assert_ne!(dc.topo.device(d).role, Role::External);
        }
    }
}
