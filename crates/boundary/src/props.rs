//! The efficient sufficient conditions: Propositions 5.2, 5.3 and 5.4.
//!
//! Checking Lemma 5.1 directly "may not be feasible" on production
//! networks, so the paper gives conditions that imply it and are cheap to
//! evaluate: all boundary devices in one AS with speakers in distinct
//! ASes (5.2); boundary-device ASes mutually unreachable through the
//! external residual network (5.3); and for OSPF networks, unchanged
//! boundary links plus emulated DR/BDR (5.4).

use crate::classify::Classification;
use crystalnet_net::{Asn, DeviceId, EmulationClass, Ipv4Addr, Topology};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Why a proposition's condition fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropViolation {
    /// Boundary devices span more than one AS (5.2).
    BoundaryAsesDiffer(Vec<Asn>),
    /// Two speaker devices share an AS (5.2).
    SpeakersShareAs(Asn),
    /// Two boundary ASes can reach each other through external devices
    /// (5.3); carries one witnessing external path.
    ExternallyReachable {
        /// AS of the path's starting boundary device.
        from_as: Asn,
        /// AS of the boundary device reached.
        to_as: Asn,
        /// The device path through the external region.
        via: Vec<DeviceId>,
    },
    /// A DR or BDR of the OSPF area is not emulated (5.4).
    DrNotEmulated(Ipv4Addr),
    /// A boundary-adjacent link is slated to change (5.4).
    BoundaryLinkChanges(DeviceId, DeviceId),
}

/// Checks Proposition 5.2: boundary devices within a single AS, speakers
/// all in different ASes.
///
/// # Errors
///
/// Returns the violated condition.
pub fn check_prop_5_2(topo: &Topology, class: &Classification) -> Result<(), PropViolation> {
    let boundary = class.boundary();
    let mut ases: Vec<Asn> = boundary.iter().map(|&d| topo.device(d).asn).collect();
    ases.sort_unstable();
    ases.dedup();
    if ases.len() > 1 {
        return Err(PropViolation::BoundaryAsesDiffer(ases));
    }
    let mut seen = HashSet::new();
    for d in class.speakers() {
        let asn = topo.device(d).asn;
        if !seen.insert(asn) {
            return Err(PropViolation::SpeakersShareAs(asn));
        }
    }
    Ok(())
}

/// Checks Proposition 5.3: boundary devices live in ASes that cannot
/// reach each other through the external (non-emulated) network.
///
/// # Errors
///
/// Returns a witnessing external path when two boundary ASes connect.
pub fn check_prop_5_3(topo: &Topology, class: &Classification) -> Result<(), PropViolation> {
    let boundary = class.boundary();
    // Group boundary devices by AS.
    let mut by_as: HashMap<Asn, Vec<DeviceId>> = HashMap::new();
    for &d in &boundary {
        by_as.entry(topo.device(d).asn).or_default().push(d);
    }
    if by_as.len() <= 1 {
        return Ok(());
    }
    let emulated: HashSet<DeviceId> = class.emulated().into_iter().collect();

    // BFS from each boundary device through non-emulated devices only;
    // reaching a boundary device of a *different* AS violates 5.3.
    let mut sorted_as: Vec<Asn> = by_as.keys().copied().collect();
    sorted_as.sort_unstable();
    for &from_as in &sorted_as {
        // Seed with the *external* neighbors of this AS's boundary
        // devices — reachability must go via the external network, not
        // over internal emulated links.
        let mut visited: HashSet<DeviceId> = HashSet::new();
        let mut prev: HashMap<DeviceId, DeviceId> = HashMap::new();
        let mut queue = VecDeque::new();
        for &b in &by_as[&from_as] {
            for n in topo.neighbor_devices(b) {
                if !emulated.contains(&n) && visited.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        while let Some(d) = queue.pop_front() {
            for n in topo.neighbor_devices(d) {
                if emulated.contains(&n) {
                    let to_as = topo.device(n).asn;
                    if boundary.contains(&n) && to_as != from_as {
                        // Reconstruct the external path.
                        let mut via = vec![n, d];
                        let mut cur = d;
                        while let Some(&p) = prev.get(&cur) {
                            via.push(p);
                            cur = p;
                        }
                        via.reverse();
                        return Err(PropViolation::ExternallyReachable {
                            from_as,
                            to_as,
                            via,
                        });
                    }
                    continue; // do not traverse through emulated devices
                }
                if visited.insert(n) {
                    prev.insert(n, d);
                    queue.push_back(n);
                }
            }
        }
    }
    Ok(())
}

/// Inputs for the OSPF condition (5.4).
#[derive(Debug, Clone, Default)]
pub struct OspfBoundaryInputs {
    /// Router ids of the area's DR and BDR, with the owning device.
    pub dr_bdr: Vec<(Ipv4Addr, DeviceId)>,
    /// Links `(a, b)` the planned change will touch.
    pub changing_links: Vec<(DeviceId, DeviceId)>,
}

/// Checks Proposition 5.4 for an OSPF area: the links between boundary
/// and speaker devices must not be among the planned changes, and the
/// DR(s)/BDR(s) must be emulated.
///
/// # Errors
///
/// Returns the violated condition.
pub fn check_prop_5_4(
    topo: &Topology,
    class: &Classification,
    inputs: &OspfBoundaryInputs,
) -> Result<(), PropViolation> {
    let emulated: HashSet<DeviceId> = class.emulated().into_iter().collect();
    for &(rid, dev) in &inputs.dr_bdr {
        if !emulated.contains(&dev) {
            return Err(PropViolation::DrNotEmulated(rid));
        }
    }
    for &(a, b) in &inputs.changing_links {
        let a_class = class.class(a);
        let b_class = class.class(b);
        let crosses = matches!(
            (a_class, b_class),
            (EmulationClass::Boundary, EmulationClass::Speaker)
                | (EmulationClass::Speaker, EmulationClass::Boundary)
        );
        if crosses {
            return Err(PropViolation::BoundaryLinkChanges(a, b));
        }
    }
    let _ = topo;
    Ok(())
}

/// Convenience: the emulated set as a `BTreeSet` from a slice.
#[must_use]
pub fn emulated_set(ids: &[DeviceId]) -> BTreeSet<DeviceId> {
    ids.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classification;
    use crystalnet_net::fixtures::fig7;

    #[test]
    fn fig7b_satisfies_prop_5_2() {
        let f = fig7();
        let emulated = emulated_set(
            &f.spines
                .iter()
                .chain(&f.leaves[..4])
                .chain(&f.tors[..4])
                .copied()
                .collect::<Vec<_>>(),
        );
        let c = Classification::new(&f.topo, &emulated);
        // Boundary = S1,S2 (both AS100); speakers = L5,L6 — but they
        // share AS400! Prop 5.2 requires distinct speaker ASes; the pair
        // violates the letter of 5.2...
        let r = check_prop_5_2(&f.topo, &c);
        assert_eq!(
            r,
            Err(PropViolation::SpeakersShareAs(crystalnet_net::Asn(400)))
        );
        // ...while Lemma 5.1 still holds (5.2 is sufficient, not
        // necessary). The exact checker agrees the boundary is safe.
        assert!(crate::lemma::check_lemma_5_1(&f.topo, &emulated).is_ok());
    }

    #[test]
    fn fig7a_violates_prop_5_2_on_boundary_ases() {
        let f = fig7();
        let emulated = emulated_set(
            &f.leaves[..4]
                .iter()
                .chain(&f.tors[..4])
                .copied()
                .collect::<Vec<_>>(),
        );
        let c = Classification::new(&f.topo, &emulated);
        match check_prop_5_2(&f.topo, &c) {
            Err(PropViolation::BoundaryAsesDiffer(ases)) => {
                assert_eq!(ases.len(), 2); // AS200 and AS300
            }
            other => panic!("expected boundary-AS violation, got {other:?}"),
        }
    }

    #[test]
    fn fig7c_satisfies_prop_5_3() {
        // Emulate S1,S2,L1-4: boundary ASes are 100, 200, 300. The
        // external region (T1-4, L5-6, T5-6) gives no path between them:
        // T1/T2 only touch L1,L2; T3/T4 only touch L3,L4; L5/L6 connect
        // the spines to T5/T6 (dead end).
        let f = fig7();
        let emulated = emulated_set(
            &f.spines
                .iter()
                .chain(&f.leaves[..4])
                .copied()
                .collect::<Vec<_>>(),
        );
        let c = Classification::new(&f.topo, &emulated);
        assert_eq!(check_prop_5_3(&f.topo, &c), Ok(()));
        assert!(crate::lemma::check_lemma_5_1(&f.topo, &emulated).is_ok());
    }

    #[test]
    fn fig7a_violates_prop_5_3_with_witness_path() {
        // Boundary = L1-4 (AS200, AS300); the speakers S1,S2 connect them
        // externally.
        let f = fig7();
        let emulated = emulated_set(
            &f.leaves[..4]
                .iter()
                .chain(&f.tors[..4])
                .copied()
                .collect::<Vec<_>>(),
        );
        let c = Classification::new(&f.topo, &emulated);
        match check_prop_5_3(&f.topo, &c) {
            Err(PropViolation::ExternallyReachable {
                from_as,
                to_as,
                via,
            }) => {
                assert_ne!(from_as, to_as);
                // The witness passes through a spine.
                assert!(via.iter().any(|d| f.spines.contains(d)));
            }
            other => panic!("expected external-reachability violation, got {other:?}"),
        }
    }

    #[test]
    fn prop_5_4_checks_dr_and_links() {
        let f = fig7();
        let emulated = emulated_set(
            &f.spines
                .iter()
                .chain(&f.leaves[..4])
                .copied()
                .collect::<Vec<_>>(),
        );
        let c = Classification::new(&f.topo, &emulated);
        // DR on an emulated spine: fine.
        let ok = OspfBoundaryInputs {
            dr_bdr: vec![(f.topo.device(f.spines[0]).loopback, f.spines[0])],
            changing_links: vec![(f.spines[0], f.leaves[0])], // both emulated
        };
        assert_eq!(check_prop_5_4(&f.topo, &c, &ok), Ok(()));
        // DR on a speaker: violation.
        let bad_dr = OspfBoundaryInputs {
            dr_bdr: vec![(f.topo.device(f.tors[0]).loopback, f.tors[0])],
            changing_links: vec![],
        };
        assert!(matches!(
            check_prop_5_4(&f.topo, &c, &bad_dr),
            Err(PropViolation::DrNotEmulated(_))
        ));
        // Changing a boundary-speaker link: violation.
        let bad_link = OspfBoundaryInputs {
            dr_bdr: vec![],
            changing_links: vec![(f.leaves[0], f.tors[0])],
        };
        assert!(matches!(
            check_prop_5_4(&f.topo, &c, &bad_link),
            Err(PropViolation::BoundaryLinkChanges(_, _))
        ));
    }
}
